//! An anti-SWATting watchlist (paper §7.2).
//!
//! SWATting amplifies a dox: with just an address, an attacker can send an
//! armed response to a victim's door. The paper proposes sharing a
//! watchlist of addresses and phone numbers that recently appeared in dox
//! files with police departments, so a report of violence at a listed
//! address gets a second look before force is dispatched.
//!
//! This example builds that watchlist from the pipeline's detections and
//! then simulates a police dispatcher querying it for incoming emergency
//! reports.
//!
//! ```text
//! cargo run --release --example swat_watchlist
//! ```

use doxing_repro::core::pipeline::Pipeline;
use doxing_repro::core::training::DoxClassifier;
use doxing_repro::geo::alloc::{AllocConfig, Allocation};
use doxing_repro::geo::model::{World, WorldConfig};
use doxing_repro::obs::redact;
use doxing_repro::osn::clock::{SimDuration, SimTime};
use doxing_repro::sites::collect::Collector;
use doxing_repro::synth::config::SynthConfig;
use doxing_repro::synth::corpus::CorpusGenerator;
use std::collections::HashMap;

/// A watchlist entry: when the identifier was seen in a dox.
#[derive(Debug, Clone, Copy)]
struct Entry {
    seen_at: SimTime,
}

/// The address/phone watchlist with an expiry horizon.
struct SwatWatchlist {
    /// Normalized zip → latest dox sighting.
    by_zip: HashMap<u32, Entry>,
    /// Canonical 10-digit phone → latest dox sighting.
    by_phone: HashMap<String, Entry>,
    /// Entries older than this no longer raise flags.
    ttl: SimDuration,
}

impl SwatWatchlist {
    fn new(ttl_days: u64) -> Self {
        Self {
            by_zip: HashMap::new(),
            by_phone: HashMap::new(),
            ttl: SimDuration::from_days(ttl_days),
        }
    }

    fn ingest(&mut self, detection: &doxing_repro::core::pipeline::DetectedDox) {
        let entry = Entry {
            seen_at: detection.observed_at,
        };
        if let Some(zip) = detection.extracted.fields.zip {
            self.by_zip.insert(zip, entry);
        }
        for phone in &detection.extracted.fields.phones {
            self.by_phone.insert(phone.clone(), entry);
        }
    }

    /// Dispatcher query: has this zip appeared in a recent dox?
    fn flag_zip(&self, zip: u32, now: SimTime) -> bool {
        self.by_zip
            .get(&zip)
            .is_some_and(|e| now.since(e.seen_at) <= self.ttl)
    }

    /// Dispatcher query for a caller-provided callback number.
    fn flag_phone(&self, phone: &str, now: SimTime) -> bool {
        self.by_phone
            .get(phone)
            .is_some_and(|e| now.since(e.seen_at) <= self.ttl)
    }
}

fn main() {
    let world = World::generate(&WorldConfig::default(), 11);
    let alloc = Allocation::generate(&world, &AllocConfig::default(), 11);
    let mut generator = CorpusGenerator::new(&world, &alloc, SynthConfig::at_scale(0.01));

    let (texts, labels) = generator.training_sets();
    let (classifier, _) = DoxClassifier::train(&texts, &labels, 11);
    let mut pipeline = Pipeline::new(classifier);
    let mut collector = Collector::new(11);
    for period in [1u8, 2] {
        let _ = collector.collect_period(&mut generator, period, &mut |c| {
            pipeline.process(&c, period);
            std::ops::ControlFlow::Continue(())
        });
    }

    // Build the watchlist from every detection (duplicates included — a
    // re-post refreshes the entry, which is what a TTL wants).
    let mut watchlist = SwatWatchlist::new(60);
    for detection in pipeline.detected() {
        watchlist.ingest(detection);
    }
    println!(
        "watchlist: {} zip codes, {} phone numbers (60-day TTL)",
        watchlist.by_zip.len(),
        watchlist.by_phone.len()
    );

    // Simulate dispatcher queries at the end of period 2: one report from
    // a doxed victim's address, one from a random un-doxed address.
    let now = SimTime::from_days(200);
    let doxed_zip = pipeline
        .detected()
        .iter()
        .rev()
        .find_map(|d| d.extracted.fields.zip)
        .expect("some detection carries a zip at this scale");
    let undoxed_zip = 99_999;

    for (label, zip) in [("doxed victim", doxed_zip), ("unrelated home", undoxed_zip)] {
        let flagged = watchlist.flag_zip(zip, now);
        println!(
            "dispatch query: report of violence at zip {zip} ({label}) -> {}",
            if flagged {
                "FLAG: address appeared in a recent dox — verify before dispatching force"
            } else {
                "no dox history"
            }
        );
    }

    // Old sightings expire.
    let much_later = now + SimDuration::from_days(365);
    assert!(
        !watchlist.flag_zip(doxed_zip, much_later),
        "TTL must expire"
    );
    println!("one year later, the same zip no longer flags (TTL expired).");

    // Phone-side check.
    if let Some(phone) = pipeline
        .detected()
        .iter()
        .rev()
        .find_map(|d| d.extracted.fields.phones.first().cloned())
    {
        println!(
            "dispatch query: callback number {} -> {}",
            redact(&phone),
            if watchlist.flag_phone(&phone, now) {
                "FLAG: number appeared in a recent dox"
            } else {
                "no dox history"
            }
        );
    }
}
