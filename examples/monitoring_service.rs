//! A "have-I-been-doxed" notification service (paper §7.1).
//!
//! The paper proposes a public service, in the spirit of
//! have-i-been-pwned, where users register an identifier (an OSN handle)
//! and get notified when it appears in a detected dox file — without the
//! service revealing what else was shared.
//!
//! This example runs the detection pipeline over a scaled synthetic stream
//! and drives such a service: a handful of users subscribe handles, the
//! pipeline feeds detections in, and subscribers receive privacy-
//! preserving notifications (only *that* their handle appeared and where).
//!
//! ```text
//! cargo run --release --example monitoring_service
//! ```

use doxing_repro::core::pipeline::Pipeline;
use doxing_repro::core::training::DoxClassifier;
use doxing_repro::geo::alloc::{AllocConfig, Allocation};
use doxing_repro::geo::model::{World, WorldConfig};
use doxing_repro::osn::network::Network;
use doxing_repro::sites::collect::Collector;
use doxing_repro::synth::config::SynthConfig;
use doxing_repro::synth::corpus::CorpusGenerator;
use std::collections::HashMap;

/// The notification service: registered identifiers and delivered alerts.
struct DoxAlertService {
    /// Lowercased `(network, handle)` → subscriber email.
    subscriptions: HashMap<(Network, String), String>,
    /// Notifications delivered: `(subscriber, source, doc id)`.
    alerts: Vec<(String, String, u64)>,
}

impl DoxAlertService {
    fn new() -> Self {
        Self {
            subscriptions: HashMap::new(),
            alerts: Vec::new(),
        }
    }

    fn subscribe(&mut self, email: &str, network: Network, handle: &str) {
        self.subscriptions
            .insert((network, handle.to_lowercase()), email.to_string());
    }

    /// Check one detection against the subscription table. Like
    /// have-i-been-pwned, the alert reveals only *that* and *where* the
    /// identifier appeared — never the dox contents.
    fn check(&mut self, detection: &doxing_repro::core::pipeline::DetectedDox) {
        for r in &detection.extracted.osn {
            if let Some(email) = self.subscriptions.get(&(r.network, r.handle.clone())) {
                self.alerts.push((
                    email.clone(),
                    detection.source.name().to_string(),
                    detection.doc_id,
                ));
            }
        }
    }
}

fn main() {
    let world = World::generate(&WorldConfig::default(), 7);
    let alloc = Allocation::generate(&world, &AllocConfig::default(), 7);
    let mut generator = CorpusGenerator::new(&world, &alloc, SynthConfig::at_scale(0.01));

    // Train and deploy the detection pipeline.
    let (texts, labels) = generator.training_sets();
    let (classifier, _) = DoxClassifier::train(&texts, &labels, 7);
    let mut pipeline = Pipeline::new(classifier);
    let mut collector = Collector::new(7);
    for period in [1u8, 2] {
        let _ = collector.collect_period(&mut generator, period, &mut |c| {
            pipeline.process(&c, period);
            std::ops::ControlFlow::Continue(())
        });
    }
    println!(
        "pipeline: {} documents, {} detected doxes",
        pipeline.counters().total,
        pipeline.counters().classified_dox
    );

    // A third of all internet users in the simulation signed up for the
    // service before any doxing happened, registering every account they
    // own (the generator's persona store covers victims and non-victims
    // alike, so most subscribers are never doxed — as in reality).
    let mut service = DoxAlertService::new();
    let mut subscribers = 0;
    for persona in generator.personas().iter().filter(|p| p.id % 3 == 0) {
        subscribers += 1;
        for (network, handle) in &persona.accounts {
            service.subscribe(
                &format!("user{}@inbox.example", persona.id),
                *network,
                handle,
            );
        }
    }
    println!(
        "service: {subscribers} subscribers, {} identifiers registered",
        service.subscriptions.len()
    );

    // Feed the detections through the alerting path.
    for detection in pipeline.detected() {
        service.check(detection);
    }

    println!("service: {} alerts delivered", service.alerts.len());
    for (email, source, doc) in service.alerts.iter().take(10) {
        println!("  ALERT -> {email}: your identifier appeared in document {doc} on {source}");
    }
    if service.alerts.len() > 10 {
        println!("  … and {} more", service.alerts.len() - 10);
    }
    assert!(
        !service.alerts.is_empty(),
        "with a third of users subscribed, some alerts fire at this scale"
    );
}
