//! Quickstart: train the dox classifier, classify two documents, and
//! extract the structured record from the positive one.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use doxing_repro::core::training::DoxClassifier;
use doxing_repro::extract::record::extract;
use doxing_repro::geo::alloc::{AllocConfig, Allocation};
use doxing_repro::geo::model::{World, WorldConfig};
use doxing_repro::obs::redact;
use doxing_repro::synth::config::SynthConfig;
use doxing_repro::synth::corpus::CorpusGenerator;

fn main() {
    // 1. Build the synthetic world and a labeled training corpus —
    //    proof-of-work dox positives plus random-crawl negatives
    //    (the paper's §3.1.2 training data).
    let world = World::generate(&WorldConfig::default(), 42);
    let alloc = Allocation::generate(&world, &AllocConfig::default(), 42);
    let mut generator = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
    let (texts, labels) = generator.training_sets();

    // 2. Train the TF-IDF + SGD classifier and print its held-out quality
    //    (the paper's Table 1 protocol: 2/3 train, 1/3 evaluate).
    let (classifier, summary) = DoxClassifier::train(&texts, &labels, 42);
    println!("Classifier evaluation (Table 1 protocol):");
    println!("{}", summary.report.to_table());

    // 3. Classify two documents.
    let dox = "\
Name: Jaren Thornvik
Age: 19
Address: 1210 Maple Street, Brackford, NK 10234
Phone: (312) 555-0188
IP: 73.54.12.9
Facebook: https://facebook.com/jaren.thornvik4
twitter: @jaren_t4
dropped by NullFang_3 and @HexMancer_8, thanks to ByteCrow_1 for the SSN info";
    let paste = "fn main() { println!(\"just some rust code\"); } // build script";

    println!(
        "dox-looking text  -> classified dox? {}",
        classifier.is_dox(dox)
    );
    println!(
        "code-looking text -> classified dox? {}",
        classifier.is_dox(paste)
    );

    // 4. Extract the structured record from the dox (§3.1.3).
    let record = extract(dox);
    // Extracted values are PII: even a demo prints them through
    // redact() — length + fingerprint, never the content (the pii-taint
    // lint holds examples to the same bar as the pipeline).
    println!("\nExtraction record:");
    println!(
        "  name : {} {}",
        redact(record.fields.first_name.as_deref().unwrap_or("-")),
        redact(record.fields.last_name.as_deref().unwrap_or("-"))
    );
    println!("  age  : {:?}", record.fields.age);
    println!("  phone: {}", redact(record.fields.phones.join(", ")));
    println!(
        "  ip   : {}",
        redact(
            record
                .fields
                .ips
                .iter()
                .map(|ip| ip.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    );
    println!(
        "  zip  : {}",
        redact(
            record
                .fields
                .zip
                .map_or_else(|| "-".to_string(), |z| z.to_string())
        )
    );
    for osn in &record.osn {
        println!("  account: {} -> {}", osn.network, redact(&osn.handle));
    }
    for credit in &record.credits {
        println!(
            "  credited doxer: {} (twitter: {:?})",
            credit.alias, credit.twitter
        );
    }

    // 5. The most dox-indicative vocabulary the model learned.
    println!("\nTop dox-indicative terms:");
    for (term, weight) in classifier.top_dox_terms(8) {
        println!("  {term:<12} {weight:+.3}");
    }
}
