//! Chaos run: the full study under a deterministic fault plan, twice —
//! once straight through, once killed mid-ingest and resumed from a
//! checkpoint — proving the two reports are byte-identical and that the
//! only difference adverse weather can make is an *explicit* coverage
//! gap, never a silent drop.
//!
//! ```text
//! cargo run --release --example chaos_run
//! ```

use doxing_repro::core::study::{Study, StudyConfig};
use doxing_repro::core::Error;
use doxing_repro::fault::{FaultDomain, FaultPlanConfig, OutageWindow};
use doxing_repro::obs::Registry;

fn main() {
    // A stormy but survivable plan: ~8% of fetches time out (each
    // recovering within two retries), probes hit simulated 429s, pastebin
    // goes dark for a simulated hour, and every twentieth engine chunk
    // runs on a slow worker. Every fault recovers, so the report must be
    // byte-identical to a fault-free run.
    let plan = FaultPlanConfig {
        seed: 0xC4A05,
        transient_ppm: 80_000,
        max_transient_failures: 2,
        outages: vec![OutageWindow {
            domain: FaultDomain::Collect,
            target: "pastebin.com".into(),
            from: 3_000,
            until: 3_060,
        }],
        slow_chunk_ppm: 50_000,
        ..FaultPlanConfig::default()
    };

    let base = StudyConfig::builder().seed(7).scale(0.005);

    println!("fault-free run…");
    let clean = Study::with_registry(base.clone().build(), Registry::new())
        .run()
        .expect("clean run");
    let clean_json = doxing_repro::core::report::to_json(&clean).expect("serializes");

    println!("stormy run (same seed, fault plan injected)…");
    let stormy_cfg = base.clone().faults(plan.clone()).build();
    let stormy = Study::with_registry(stormy_cfg, Registry::new())
        .run()
        .expect("stormy run");
    let stormy_json = doxing_repro::core::report::to_json(&stormy).expect("serializes");
    assert_eq!(
        clean_json, stormy_json,
        "recovered faults must not change a byte of the report"
    );
    println!(
        "  identical: {} bytes of report, coverage gaps = {}",
        stormy_json.len(),
        stormy.coverage.total()
    );

    // Now the kill switch: die after 2,000 documents, checkpointing every
    // 500, then resume — still byte-identical.
    let dir = std::env::temp_dir().join(format!("chaos_run_{}", std::process::id()));
    let killed_plan = FaultPlanConfig {
        kill_after_docs: Some(2_000),
        ..plan.clone()
    };
    println!("killed run (simulated SIGKILL after 2,000 docs)…");
    let killed_cfg = base
        .clone()
        .faults(killed_plan)
        .checkpoint_dir(&dir)
        .checkpoint_every(500)
        .build();
    match Study::with_registry(killed_cfg, Registry::new()).run() {
        Err(Error::Halted { docs_ingested }) => {
            println!("  halted after {docs_ingested} documents (as planned)");
        }
        other => panic!("expected a halt, got {other:?}"),
    }

    println!("resumed run…");
    let resumed_cfg = base
        .faults(plan)
        .checkpoint_dir(&dir)
        .checkpoint_every(500)
        .resume(true)
        .build();
    let resumed = Study::with_registry(resumed_cfg, Registry::new())
        .run()
        .expect("resumed run");
    let resumed_json = doxing_repro::core::report::to_json(&resumed).expect("serializes");
    assert_eq!(
        clean_json, resumed_json,
        "kill + resume must re-emit the exact bytes of the uninterrupted run"
    );
    println!("  identical: kill/resume reproduced the report byte for byte");
    let _ = std::fs::remove_dir_all(&dir);
}
