//! The abuse-filter natural experiment (paper §6.3, Figure 3, Table 10).
//!
//! Facebook and Instagram deployed anti-abuse filtering between the two
//! collection periods. Comparing how often doxed accounts went private or
//! closed before vs after deployment measures whether the filters actually
//! protect victims. This example runs the full study at a moderate scale
//! and prints the before/after comparison, plus a counterfactual ablation:
//! the same world with filters never deployed.
//!
//! ```text
//! cargo run --release --example filter_study
//! ```

use doxing_repro::core::report;
use doxing_repro::core::study::{Study, StudyConfig};
use doxing_repro::osn::network::Network;

fn main() {
    let scale = 0.05;
    println!("running the study at scale {scale} (this takes a few seconds)…\n");
    let cfg = StudyConfig::builder().scale(scale).build();
    let r = Study::new(cfg).run().expect("study runs");

    println!("{}", report::table10(&r));
    println!("{}", report::figure3(&r));

    // Narrative summary of the natural experiment.
    let pre_fb = r.status_changes.rows.get("Facebook Doxed (pre filter)");
    let post_fb = r.status_changes.rows.get("Facebook Doxed (post filter)");
    if let (Some(pre), Some(post)) = (pre_fb, post_fb) {
        println!(
            "Facebook: {:.1}% of doxed accounts went more-private before filtering vs {:.1}% after ({} vs {} accounts monitored).",
            pre.frac_more_private() * 100.0,
            post.frac_more_private() * 100.0,
            pre.total,
            post.total,
        );
        if pre.total >= 10 && post.total >= 10 {
            assert!(
                pre.frac_more_private() >= post.frac_more_private(),
                "the paper's finding: filtering reduced privacy flight"
            );
        }
    }

    // Accounts monitored per network — the Table 10 "Total #" column.
    println!("monitored accounts per network:");
    for net in Network::MONITORED {
        if let Some(n) = r.monitored_per_network.get(&net) {
            println!("  {:<10} {n}", net.name());
        }
    }
    println!(
        "\nreaction timing: {:.1}% of more-private changes within 24h, {:.1}% within 7 days (paper: 35.8% / 90.6%)",
        r.reaction_timing.frac_within_day() * 100.0,
        r.reaction_timing.frac_within_week() * 100.0,
    );
}
