#!/usr/bin/env bash
# Local quality gate: formatting, lints, build and the tier-1 test suite.
# Fully offline — every dependency is a vendored path crate, so no step
# touches the network. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
if command -v rustfmt >/dev/null 2>&1; then
    cargo fmt --all -- --check
else
    echo "rustfmt not installed; skipping"
fi

step "cargo clippy --workspace -- -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping"
fi

step "dox-lint --workspace (project static analysis)"
# Exits nonzero on any non-baselined finding and on stale lint.toml
# baseline entries (entries matching no finding must be removed).
cargo run -p dox-lint --release -- --workspace

step "cargo test -p dox-lint -q"
cargo test -p dox-lint -q

step "cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

step "cargo build --release"
cargo build --release

step "cargo test -q (tier-1, includes the fault matrix)"
cargo test -q

step "cargo test --workspace -q"
cargo test --workspace -q

step "chaos smoke test (SIGKILL mid-ingest, resume, byte-compare)"
scripts/chaos_smoke.sh

step "serve smoke test (daemon ingest, SIGTERM drain, resume, byte-compare)"
scripts/serve_smoke.sh

step "trace overhead gate (tracing disabled within 2% of the PR 5 baseline)"
# Best-of-N timer: more samples only sharpen the min, and 7 proved too
# few to shake off ambient load on a single-hardware-thread box.
DOX_BENCH_SAMPLES=25 cargo bench -p dox-bench --bench bench_engine -- --test >/dev/null
scripts/trace_overhead_gate.sh

printf '\nAll checks passed.\n'
