#!/usr/bin/env bash
# Local quality gate: formatting, lints, build and the tier-1 test suite.
# Fully offline — every dependency is a vendored path crate, so no step
# touches the network. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
if command -v rustfmt >/dev/null 2>&1; then
    cargo fmt --all -- --check
else
    echo "rustfmt not installed; skipping"
fi

step "cargo clippy --workspace -- -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping"
fi

step "dox-lint --workspace (project static analysis)"
# Exits nonzero on any non-baselined finding and on stale lint.toml
# baseline entries (entries matching no finding must be removed).
# The JSON report is kept for CI annotators and drift diffing, and the
# run is held to a wall-clock budget: the symbol-aware analyzer walks
# every workspace file, and a pathological parse (fuel bug, fixpoint
# blowup) shows up as runtime long before it shows up as wrong output.
cargo build -q -p dox-lint --release
lint_started=$(date +%s)
target/release/dox-lint --workspace --format json > lint_findings.json
lint_elapsed=$(( $(date +%s) - lint_started ))
echo "dox-lint wrote lint_findings.json in ${lint_elapsed}s"
if [ "$lint_elapsed" -gt 10 ]; then
    echo "dox-lint took ${lint_elapsed}s (budget: 10s)" >&2
    exit 1
fi

step "dox-lint self-lint (the analyzer passes its own gate)"
# No findings — baselined or live — are tolerated in crates/lint: the
# analyzer's own code is the reference for every rule it enforces.
if grep -E '"file":"crates/lint/' lint_findings.json >/dev/null; then
    grep -E '"file":"crates/lint/' lint_findings.json >&2
    echo "dox-lint findings inside crates/lint itself" >&2
    exit 1
fi
echo "crates/lint is clean"

step "cargo test -p dox-lint -q"
cargo test -p dox-lint -q

step "cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

step "cargo build --release"
cargo build --release

step "cargo test -q (tier-1, includes the fault matrix)"
cargo test -q

step "cargo test --workspace -q"
cargo test --workspace -q

step "chaos smoke test (SIGKILL mid-ingest, resume, byte-compare)"
scripts/chaos_smoke.sh

step "serve smoke test (daemon ingest, SIGTERM drain, resume, byte-compare)"
scripts/serve_smoke.sh

step "overload gate (10x burst: shed, quota, deadline, recovery, flat RSS)"
scripts/overload_gate.sh

step "trace overhead gate (tracing disabled within 2% of the PR 5 baseline)"
# Best-of-N timer: more samples only sharpen the min, and 7 proved too
# few to shake off ambient load on a single-hardware-thread box.
DOX_BENCH_SAMPLES=25 cargo bench -p dox-bench --bench bench_engine -- --test >/dev/null
scripts/trace_overhead_gate.sh

step "store overhead gate (store-backed dedup within 10% of the plain engine)"
# Reuses the BENCH_engine.json the trace gate just regenerated.
scripts/store_overhead_gate.sh

printf '\nAll checks passed.\n'
