#!/usr/bin/env bash
# Chaos smoke test: SIGKILL the reproduction harness mid-ingest, resume
# from its checkpoint, and verify the resumed run's JSON report is
# byte-identical to an uninterrupted fault-free run.
#
# This exercises the real recovery path end to end — a separate process,
# a real `kill -9` (no atexit handlers, no Drop), checkpoint files on
# disk, and the `--resume` flag — rather than the in-process simulation
# the fault-matrix tests use.
set -euo pipefail

cd "$(dirname "$0")/.."

SCALE=0.02
SEED=99
REPRO=target/release/repro

scratch=$(mktemp -d "${TMPDIR:-/tmp}/dox_chaos_smoke.XXXXXX")
trap 'rm -rf "$scratch"' EXIT

step() { printf '\n-- %s --\n' "$*"; }

step "building the release harness"
cargo build -q --release -p dox-bench --bin repro

# A stormy but fully recoverable plan: transient fetch timeouts, 429s and
# slow engine chunks, all within the retry budget. Recovered faults must
# not change a byte, so the fault-free run below stays the baseline.
cat > "$scratch/plan.json" <<'EOF'
{"seed": 3, "transient_ppm": 80000, "slow_chunk_ppm": 50000}
EOF

step "baseline: uninterrupted fault-free run"
"$REPRO" --scale "$SCALE" --seed "$SEED" --quiet --table t1 \
    --json "$scratch/clean.json" > /dev/null

step "victim: faulty run with checkpoints, killed with SIGKILL mid-ingest"
"$REPRO" --scale "$SCALE" --seed "$SEED" --quiet --table t1 \
    --fault-plan "$scratch/plan.json" \
    --checkpoint-dir "$scratch/ckpt" --checkpoint-every 200 \
    --json "$scratch/killed.json" > /dev/null 2>&1 &
victim=$!

# Kill as soon as the first checkpoint lands on disk — mid-ingest, with
# dedup shards half-populated and reorder buffers mid-stream.
for _ in $(seq 1 600); do
    [ -f "$scratch/ckpt/study_checkpoint.json" ] && break
    kill -0 "$victim" 2> /dev/null || break
    sleep 0.05
done
if kill -9 "$victim" 2> /dev/null; then
    echo "killed pid $victim after the first checkpoint"
else
    echo "note: victim finished before the kill landed (still a valid resume test)"
fi
wait "$victim" 2> /dev/null || true

if [ ! -f "$scratch/ckpt/study_checkpoint.json" ]; then
    echo "FAIL: no checkpoint was written before the kill" >&2
    exit 1
fi

step "resume: continue from the on-disk checkpoint"
"$REPRO" --scale "$SCALE" --seed "$SEED" --quiet --table t1 \
    --fault-plan "$scratch/plan.json" \
    --checkpoint-dir "$scratch/ckpt" --resume \
    --json "$scratch/resumed.json" > /dev/null

step "verify: resumed report is byte-identical to the baseline"
if cmp -s "$scratch/clean.json" "$scratch/resumed.json"; then
    echo "identical: $(wc -c < "$scratch/clean.json") bytes"
else
    echo "FAIL: resumed report differs from the uninterrupted baseline" >&2
    cmp "$scratch/clean.json" "$scratch/resumed.json" || true
    exit 1
fi

# ---------------------------------------------------------------------
# Store phase: the same drill with durability on the segment store
# (--store): dedup shards spill to disk, the checkpoint commits inside
# the store, and recovery must also survive a *torn segment tail* we
# forge by appending garbage past the committed length — the exact
# on-disk state a crash mid-append leaves behind.
# ---------------------------------------------------------------------

step "store victim: store-backed run, killed with SIGKILL mid-ingest"
"$REPRO" --scale "$SCALE" --seed "$SEED" --quiet --table t1 \
    --fault-plan "$scratch/plan.json" \
    --checkpoint-dir "$scratch/store_ckpt" --checkpoint-every 200 \
    --store --spill-cap 64 \
    --json "$scratch/store_killed.json" > /dev/null 2>&1 &
victim=$!

# Kill as soon as the first store commit publishes its manifest.
for _ in $(seq 1 600); do
    [ -f "$scratch/store_ckpt/store/MANIFEST.json" ] && break
    kill -0 "$victim" 2> /dev/null || break
    sleep 0.05
done
if kill -9 "$victim" 2> /dev/null; then
    echo "killed pid $victim after the first store commit"
else
    echo "note: victim finished before the kill landed (still a valid resume test)"
fi
wait "$victim" 2> /dev/null || true

if [ ! -f "$scratch/store_ckpt/store/MANIFEST.json" ]; then
    echo "FAIL: no store manifest was committed before the kill" >&2
    exit 1
fi

step "store sabotage: append a torn tail past the committed segment length"
seg=$(ls -t "$scratch/store_ckpt/store"/*.seg 2> /dev/null | head -n 1)
if [ -z "$seg" ]; then
    echo "FAIL: no segment file found to sabotage" >&2
    exit 1
fi
printf 'torn tail: bytes a crash left past the committed length' >> "$seg"
echo "appended garbage to $(basename "$seg")"

step "store resume: recover the store and continue from its checkpoint"
"$REPRO" --scale "$SCALE" --seed "$SEED" --quiet --table t1 \
    --fault-plan "$scratch/plan.json" \
    --checkpoint-dir "$scratch/store_ckpt" --resume \
    --store --spill-cap 64 \
    --metrics "$scratch/store_metrics.json" \
    --json "$scratch/store_resumed.json" > /dev/null

step "verify: store-resumed report is byte-identical to the baseline"
if cmp -s "$scratch/clean.json" "$scratch/store_resumed.json"; then
    echo "identical: $(wc -c < "$scratch/clean.json") bytes"
else
    echo "FAIL: store-resumed report differs from the uninterrupted baseline" >&2
    cmp "$scratch/clean.json" "$scratch/store_resumed.json" || true
    exit 1
fi

step "verify: recovery counted the torn tail (store.recovered_truncations)"
truncations=$(sed -n 's/.*"store\.recovered_truncations": \([0-9][0-9]*\).*/\1/p' \
    "$scratch/store_metrics.json")
if [ -z "$truncations" ] || [ "$truncations" -lt 1 ]; then
    echo "FAIL: store.recovered_truncations missing or zero in the metrics snapshot" >&2
    grep -n "store\." "$scratch/store_metrics.json" >&2 || true
    exit 1
fi
echo "store.recovered_truncations = $truncations"

printf '\nChaos smoke test passed.\n'
