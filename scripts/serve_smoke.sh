#!/usr/bin/env bash
# Service-mode smoke test: run the real dox-serve daemon, ingest a
# tenant's document stream over HTTP, SIGTERM the daemon mid-corpus
# (graceful drain checkpoints the tenant), restart it with --resume,
# finish the stream, and verify `GET /v1/report` is byte-identical to
# the batch `Study::run` under the same spec-derived config.
#
# This exercises the real service path end to end — a separate daemon
# process, raw TCP clients, a real SIGTERM (the in-binary drain, not a
# test harness shim), checkpoint files on disk, and the `--resume`
# flag — rather than the in-process router the integration tests use.
set -euo pipefail

cd "$(dirname "$0")/.."

SEED=99
SCALE=0.01
TENANT=smoke
ADDR=127.0.0.1:9377
SERVE=target/release/dox-serve
LOADGEN=target/release/loadgen

scratch=$(mktemp -d "${TMPDIR:-/tmp}/dox_serve_smoke.XXXXXX")
daemon=""
cleanup() {
    [ -n "$daemon" ] && kill "$daemon" 2> /dev/null || true
    rm -rf "$scratch"
}
trap cleanup EXIT

step() { printf '\n-- %s --\n' "$*"; }

step "building the release daemon and load client"
cargo build -q --release -p dox-serve --bin dox-serve
cargo build -q --release -p dox-bench --bin loadgen

step "baseline: batch study under the identical derived config"
"$LOADGEN" batch --seed "$SEED" --scale "$SCALE" --id "$TENANT" \
    --out "$scratch/batch.json"

step "daemon up: create the tenant, ingest the first half of the stream"
"$SERVE" --quiet --addr "$ADDR" --checkpoint-dir "$scratch/ckpt" &
daemon=$!
"$LOADGEN" client --addr "$ADDR" --seed "$SEED" --scale "$SCALE" \
    --id "$TENANT" --create --half first

step "SIGTERM: graceful drain must checkpoint the tenant and exit 0"
kill -TERM "$daemon"
if wait "$daemon"; then
    daemon=""
else
    echo "FAIL: daemon exited nonzero on SIGTERM drain" >&2
    daemon=""
    exit 1
fi
# Tenant checkpoints are rows in the dox-store segment store: the
# drain commits them all in one manifest swap (DESIGN.md §12.5).
if [ ! -f "$scratch/ckpt/store/MANIFEST.json" ]; then
    echo "FAIL: drain left no tenant checkpoint store on disk" >&2
    exit 1
fi
echo "checkpoint store on disk:" \
    "$(cat "$scratch/ckpt/store"/*.seg | wc -c) segment bytes"

step "restart with --resume: finish the stream on the restored tenant"
"$SERVE" --quiet --addr "$ADDR" --checkpoint-dir "$scratch/ckpt" --resume &
daemon=$!
"$LOADGEN" client --addr "$ADDR" --seed "$SEED" --scale "$SCALE" \
    --id "$TENANT" --half second --report "$scratch/served.json"
kill -TERM "$daemon"
wait "$daemon" || true
daemon=""

step "verify: service report is byte-identical to the batch report"
if cmp -s "$scratch/batch.json" "$scratch/served.json"; then
    echo "identical: $(wc -c < "$scratch/batch.json") bytes"
else
    echo "FAIL: /v1/report differs from the batch study" >&2
    cmp "$scratch/batch.json" "$scratch/served.json" || true
    exit 1
fi

printf '\nServe smoke test passed.\n'
