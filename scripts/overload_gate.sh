#!/usr/bin/env bash
# Overload-resilience gate: drive the service through a deliberate
# overload and hold it to the DESIGN.md §13 policy. `loadgen overload`
# boots a deliberately small in-process server (2 workers, 16-slot
# backlog, 1 s deadline) behind a quota'd tenant, then fires an
# open-loop burst at ~10x the sustainable rate with slow-client and
# oversized-body adversaries mixed in on a seeded fault-plan schedule,
# plus a 64-connection slow-client wave that overflows the backlog on
# any hardware. The binary itself asserts every clause and exits
# nonzero on a violation:
#
#   * backlog overflow sheds with 503 + Retry-After, never queues
#   * per-tenant quota breaches answer 429 + Retry-After
#   * oversized Content-Length declarations are refused up front
#   * the backlog gauge never exceeds its configured bound
#   * in-quota traffic keeps landing (admitted 200s under overload)
#   * admitted p99 stays within the deadline budget
#   * every slow client is shed at the door or cut at the deadline
#   * the backlog drains to zero once the burst stops
#   * a closed-loop recovery pass returns to 100% goodput
#   * RSS stays flat across burst + recovery (sheds must not queue)
#
# The run also merges an "overload" section into BENCH_serve.json;
# the throughput rows written by the default loadgen mode survive.
set -euo pipefail

cd "$(dirname "$0")/.."

printf -- '-- building the release load client --\n'
cargo build -q --release -p dox-bench --bin loadgen

printf -- '-- overload burst + recovery --\n'
target/release/loadgen overload

printf -- '-- BENCH_serve.json has the overload section --\n'
grep -q '"overload"' BENCH_serve.json
grep -q '"recovery_goodput": 1' BENCH_serve.json
echo "overload gate passed"
