#!/usr/bin/env bash
# Store-overhead gate: the engine with dedup shards spilling to the
# crash-safe segment store and a durable checkpoint every 4096 docs
# must stay within MAX_OVERHEAD_PCT of the plain in-memory engine.
#
# Reads the "engine w4 s8 store-dedup" row of BENCH_engine.json, which
# `cargo bench -p dox-bench --bench bench_engine` regenerates. The row
# carries overhead_vs_plain = t_store / t_plain, both best-of-N on the
# same run of the same machine, so the gate is self-relative — no
# pinned cross-machine baseline to drift.
set -euo pipefail

cd "$(dirname "$0")/.."

MAX_OVERHEAD_PCT=10

row=$(grep '"engine w4 s8 store-dedup"' BENCH_engine.json) || {
    echo "no store-dedup row in BENCH_engine.json;" \
         "run: cargo bench -p dox-bench --bench bench_engine -- --test" >&2
    exit 1
}
ratio=$(sed -n 's/.*"overhead_vs_plain": \([0-9.][0-9.]*\).*/\1/p' <<<"$row")
if [[ -z "$ratio" ]]; then
    echo "cannot parse overhead_vs_plain from: $row" >&2
    exit 1
fi

awk -v r="$ratio" -v p="$MAX_OVERHEAD_PCT" 'BEGIN {
    ceiling = 1 + p / 100;
    printf "store-dedup: %.3fx the plain engine; ceiling (+%d%%): %.2fx\n",
           r, p, ceiling;
    if (r > ceiling) {
        print "FAIL: store-backed dedup overhead exceeds the gate";
        exit 1;
    }
    print "OK: store-backed durability is within the overhead budget";
}'
