#!/usr/bin/env bash
# Trace-overhead gate: with tracing *disabled* the engine must stay
# within MAX_OVERHEAD_PCT of the pre-tracing (PR 5) throughput — the
# hot-path cost of a disabled tracer is one relaxed atomic load per
# stage, and this gate keeps it that way.
#
# Reads the "engine w4 s8 trace-off" row of BENCH_engine.json, which
# `cargo bench -p dox-bench --bench bench_engine` regenerates; that row
# is timed with the best-of-N statistic (low-noise) for exactly this
# comparison. The baseline is the PR 5 "engine w4 s8" median recorded
# on the same container class.
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE_DOCS_PER_SEC=57429   # BENCH_engine.json @ PR 5, engine w4 s8
MAX_OVERHEAD_PCT=2

row=$(grep '"engine w4 s8 trace-off"' BENCH_engine.json) || {
    echo "no trace-off row in BENCH_engine.json;" \
         "run: cargo bench -p dox-bench --bench bench_engine -- --test" >&2
    exit 1
}
measured=$(sed -n 's/.*"docs_per_sec": \([0-9][0-9]*\).*/\1/p' <<<"$row")
if [[ -z "$measured" ]]; then
    echo "cannot parse docs_per_sec from: $row" >&2
    exit 1
fi

awk -v m="$measured" -v b="$BASELINE_DOCS_PER_SEC" -v p="$MAX_OVERHEAD_PCT" 'BEGIN {
    floor = b * (1 - p / 100);
    printf "trace-off: %d docs/s; PR 5 baseline: %d docs/s; floor (-%d%%): %.0f docs/s\n",
           m, b, p, floor;
    if (m < floor) {
        print "FAIL: tracing-disabled throughput regressed past the gate";
        exit 1;
    }
    print "OK: tracing disabled is within the overhead budget";
}'
