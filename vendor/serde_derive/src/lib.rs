//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses — non-generic structs (named, tuple, unit)
//! and enums (unit, tuple and struct variants) — by walking the raw
//! `proc_macro` token stream directly, since `syn`/`quote` are unavailable
//! offline. `Serialize` lowers into the `serde::value::Value` tree with
//! upstream's externally-tagged enum representation. `Deserialize`
//! deliberately expands to nothing (see the trait docs in the vendored
//! `serde`).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut entries = String::new();
            for f in fields {
                let _ = write!(
                    entries,
                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                );
            }
            format!("::serde::value::Value::Object(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let mut items = String::new();
            for i in 0..*n {
                let _ = write!(items, "::serde::Serialize::to_value(&self.{i}),");
            }
            format!("::serde::value::Value::Array(::std::vec![{items}])")
        }
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let arm = match &v.fields {
                    VariantFields::Unit => format!(
                        "Self::{0} => ::serde::value::Value::String(::std::string::String::from(\"{0}\")),",
                        v.name
                    ),
                    VariantFields::Tuple(1) => format!(
                        "Self::{0}(__f0) => ::serde::value::Value::Object(::std::vec![(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(__f0))]),",
                        v.name
                    ),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut items = String::new();
                        for b in &binds {
                            let _ = write!(items, "::serde::Serialize::to_value({b}),");
                        }
                        format!(
                            "Self::{0}({1}) => ::serde::value::Value::Object(::std::vec![(::std::string::String::from(\"{0}\"), ::serde::value::Value::Array(::std::vec![{2}]))]),",
                            v.name,
                            binds.join(", "),
                            items
                        )
                    }
                    VariantFields::Struct(fields) => {
                        let mut entries = String::new();
                        for f in fields {
                            let _ = write!(
                                entries,
                                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f})),"
                            );
                        }
                        format!(
                            "Self::{0} {{ {1} }} => ::serde::value::Value::Object(::std::vec![(::std::string::String::from(\"{0}\"), ::serde::value::Value::Object(::std::vec![{2}]))]),",
                            v.name,
                            fields.join(", "),
                            entries
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n  fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n}}",
        item.name
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (intentionally generates nothing; see the
/// vendored `serde::Deserialize` docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

struct Item {
    name: String,
    shape: Shape,
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip any number of leading `#[...]` attributes.
fn skip_attributes(tokens: &mut Tokens) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("expected attribute body after '#', got {other:?}"),
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` visibility qualifiers.
fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn next_ident(tokens: &mut Tokens) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected identifier, got {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let kind = next_ident(&mut tokens);
    let name = next_ident(&mut tokens);
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unexpected struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body {other:?}"),
        },
        other => panic!("expected struct or enum, got `{other}`"),
    };
    Item { name, shape }
}

/// Consume one field's type: everything up to a comma at angle-bracket
/// depth zero. `<`/`>` in token streams are plain puncts, so generic
/// argument commas (e.g. `BTreeMap<String, u64>`) must be depth-tracked;
/// commas inside `()`/`[]` groups are invisible here by construction.
fn skip_type(tokens: &mut Tokens) {
    let mut depth: i32 = 0;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        tokens.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            return fields;
        }
        skip_visibility(&mut tokens);
        fields.push(next_ident(&mut tokens));
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, got {other:?}"),
        }
        skip_type(&mut tokens);
        // Trailing comma (if any).
        tokens.next();
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            return count;
        }
        skip_visibility(&mut tokens);
        count += 1;
        skip_type(&mut tokens);
        tokens.next();
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            return variants;
        }
        let name = next_ident(&mut tokens);
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantFields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantFields::Struct(fields)
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the variant comma.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while let Some(tt) = tokens.peek() {
                if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                tokens.next();
            }
        }
        // Trailing comma (if any).
        tokens.next();
        variants.push(Variant { name, fields });
    }
}
