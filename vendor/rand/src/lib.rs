//! Offline vendored stand-in for the `rand` crate.
//!
//! Provides [`RngExt`] — the uniform-sampling extension trait the workspace
//! uses (`rng.random_range(lo..hi)` / `rng.random_range(lo..=hi)`) — as a
//! blanket impl over any [`rand_core::RngCore`]. Integer sampling uses
//! Lemire's widening-multiply method (bias < 2⁻⁶⁴ per draw); float sampling
//! maps 53 high bits onto `[0, 1)` and scales into the requested interval.

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// A range understood by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform-sampling implementation.
///
/// `SampleRange` is a single blanket impl over this trait (rather than one
/// impl per concrete range type) so that type inference can flow backwards
/// from how the sample is used — e.g. `arr[rng.random_range(0..3)]` pins
/// the literals to `usize` through the slice-index obligation.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform sample from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(rng, start, end)
    }
}

/// Extension methods for random value generation.
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A uniformly random `bool` that is `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// A uniform draw from `[0, 1)` using the top 53 bits of one `u64`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, span)` via widening multiply; `span == 0` means
/// the full 2⁶⁴ domain.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128) as u64;
                let off = below(rng, span);
                (start as i128 + off as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                // Span of 0 in `below` encodes the full 2^64 domain, which
                // is exactly the `start..=end` covering the whole type.
                let span = (end as i128 - start as i128 + 1) as u64;
                let off = below(rng, span);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let u = unit_f64(rng) as $t;
                let v = start + (end - start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= end {
                    // Nudge to the largest value below `end`.
                    <$t>::min(v, end - (end - start) * <$t>::EPSILON)
                } else {
                    v
                }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let u = unit_f64(rng) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — a small deterministic source for the tests.
    struct Xs(u64);

    impl RngCore for Xs {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Xs(9);
        for _ in 0..2000 {
            let v = rng.random_range(3..12u32);
            assert!((3..12).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.random_range(0..=0u8);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Xs(7);
        for _ in 0..2000 {
            let v = rng.random_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&v), "{v}");
            let u: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut rng = Xs(123);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = Xs(55);
        let hits = (0..4000).filter(|_| rng.random_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Xs(1).random_range(5..5u32);
    }
}
