//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro over `arg in strategy` bindings, range strategies
//! for integers and floats, tuple strategies, regex-lite string strategies
//! (`".{0,300}"`, `"[a-z ]{0,200}"`, …), [`collection::vec`], and
//! [`arbitrary::any`]. Unlike upstream there is no shrinking: failures
//! report the generated inputs and the deterministic case seed instead.
//! Case generation is a pure function of the fully-qualified test name and
//! the case index, so failures reproduce exactly across runs.

pub mod arbitrary;
pub mod collection;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface used by `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn doubling_is_even(x in 0u32..1000) {
///         prop_assert_eq!((x * 2) % 2, 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &($strat),
                                __proptest_rng,
                            );
                        )*
                        let __proptest_inputs = format!(
                            concat!($(stringify!($arg), " = {:?}  "),*),
                            $(&$arg),*
                        );
                        let __proptest_case = move ||
                            -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __proptest_case().map_err(|e| e.with_inputs(__proptest_inputs))
                    },
                );
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_compose(
            pair in (0u32..100, -5.0f64..5.0),
            flag in any::<bool>(),
        ) {
            let (idx, weight) = pair;
            prop_assert!(idx < 100);
            prop_assert!((-5.0..5.0).contains(&weight));
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn vec_strategy_respects_size(items in crate::collection::vec(0u8..10, 3..7)) {
            prop_assert!((3..7).contains(&items.len()));
            prop_assert!(items.iter().all(|&b| b < 10));
        }

        #[test]
        fn string_strategy_matches_class(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.chars().count()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }

        #[test]
        fn dot_never_generates_newline(s in ".{0,40}") {
            prop_assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run("doomed", |rng| {
                let x = crate::strategy::Strategy::generate(&(0u32..10), rng);
                crate::prop_assert!(x > 100, "x was {x}");
                Ok(())
            });
        });
        let err = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(err.contains("x was"), "panic message: {err}");
        assert!(err.contains("case 0"), "panic message: {err}");
    }
}
