//! Regex-lite string generation.
//!
//! Supports the pattern dialect the workspace's properties use: a sequence
//! of atoms — `.` (any character except `\n`), `[...]` character classes
//! with ranges, or literal characters (optionally `\`-escaped) — each with
//! an optional `{m}`, `{m,n}`, `*`, `+` or `?` quantifier.

use crate::test_runner::TestRng;

/// Occasional non-ASCII characters emitted by the `.` atom, so properties
/// exercise multi-byte UTF-8 handling.
const UNICODE_POOL: &[char] = &['é', 'ß', 'ñ', '中', 'λ', '😀', '\u{2019}', '\t'];

#[derive(Debug)]
enum Atom {
    /// `.` — any char except newline.
    Any,
    /// `[...]` — inclusive ranges of characters.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A parsed pattern.
#[derive(Debug)]
pub struct Pattern {
    pieces: Vec<Piece>,
}

impl Pattern {
    /// Parse `pattern`.
    ///
    /// # Panics
    /// Panics on syntax outside the supported dialect, so unsupported
    /// properties fail loudly instead of silently generating garbage.
    pub fn parse(pattern: &str) -> Self {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    assert!(
                        chars.get(i) != Some(&'^'),
                        "negated classes are not supported: {pattern:?}"
                    );
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if chars.get(i) == Some(&'-') && chars.get(i + 1) != Some(&']') {
                            i += 1;
                            let hi = chars[i];
                            i += 1;
                            assert!(lo <= hi, "reversed class range in {pattern:?}");
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(
                        chars.get(i) == Some(&']'),
                        "unterminated character class in {pattern:?}"
                    );
                    i += 1;
                    assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).expect("dangling escape");
                    i += 1;
                    Atom::Lit(match c {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    })
                }
                '(' | ')' | '|' => {
                    panic!("groups/alternation are not supported: {pattern:?}")
                }
                other => {
                    i += 1;
                    Atom::Lit(other)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    i += 1;
                    let mut digits = String::new();
                    while matches!(chars.get(i), Some(c) if c.is_ascii_digit()) {
                        digits.push(chars[i]);
                        i += 1;
                    }
                    let m: usize = digits.parse().expect("quantifier lower bound");
                    let n = if chars.get(i) == Some(&',') {
                        i += 1;
                        let mut digits = String::new();
                        while matches!(chars.get(i), Some(c) if c.is_ascii_digit()) {
                            digits.push(chars[i]);
                            i += 1;
                        }
                        digits.parse().expect("quantifier upper bound")
                    } else {
                        m
                    };
                    assert!(
                        chars.get(i) == Some(&'}'),
                        "unterminated quantifier in {pattern:?}"
                    );
                    i += 1;
                    (m, n)
                }
                Some('*') => {
                    i += 1;
                    (0, 32)
                }
                Some('+') => {
                    i += 1;
                    (1, 32)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "reversed quantifier in {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        Self { pieces }
    }

    /// Generate one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(match &piece.atom {
                    Atom::Lit(c) => *c,
                    Atom::Any => {
                        // Mostly printable ASCII, occasionally multi-byte.
                        if rng.below(10) == 0 {
                            UNICODE_POOL[rng.below(UNICODE_POOL.len() as u64) as usize]
                        } else {
                            char::from(0x20 + rng.below(0x5F) as u8)
                        }
                    }
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        let mut chosen = ranges[0].0;
                        for (lo, hi) in ranges {
                            let span = u64::from(*hi) - u64::from(*lo) + 1;
                            if pick < span {
                                chosen = char::from_u32(*lo as u32 + pick as u32)
                                    .expect("class range stays in scalar values");
                                break;
                            }
                            pick -= span;
                        }
                        chosen
                    }
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_runs_and_quantifiers() {
        let mut rng = TestRng::new(5);
        let p = Pattern::parse("ab{2}c?");
        for _ in 0..50 {
            let s = p.generate(&mut rng);
            assert!(s == "abb" || s == "abbc", "{s:?}");
        }
    }

    #[test]
    fn class_ranges_are_respected() {
        let mut rng = TestRng::new(6);
        let p = Pattern::parse("[a-cx]{10,20}");
        for _ in 0..50 {
            let s = p.generate(&mut rng);
            assert!((10..=20).contains(&s.len()));
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | 'x')), "{s:?}");
        }
    }

    #[test]
    fn dot_excludes_newline_and_hits_unicode() {
        let mut rng = TestRng::new(7);
        let mut saw_multibyte = false;
        for _ in 0..200 {
            let s = Pattern::parse(".{0,50}").generate(&mut rng);
            assert!(!s.contains('\n'));
            saw_multibyte |= s.chars().any(|c| c.len_utf8() > 1);
        }
        assert!(
            saw_multibyte,
            "dot should occasionally emit multi-byte chars"
        );
    }

    #[test]
    fn escapes_are_literal() {
        let mut rng = TestRng::new(8);
        let s = Pattern::parse(r"a\.b\n").generate(&mut rng);
        assert_eq!(s, "a.b\n");
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn alternation_panics() {
        Pattern::parse("a|b");
    }
}
