//! The per-test case loop and its deterministic RNG.

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    inputs: Option<String>,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            inputs: None,
        }
    }

    /// Attach the formatted generated inputs for the failure report.
    #[must_use]
    pub fn with_inputs(mut self, inputs: String) -> Self {
        self.inputs = Some(inputs);
        self
    }
}

/// xoshiro256** — deterministic, statistically solid, dependency-free.
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Seed from arbitrary material (test name hash + case index).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Number of cases per property (`PROPTEST_CASES` overrides).
fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Run `property` for every deterministic case, panicking on the first
/// failure with the case index and generated inputs.
///
/// # Panics
/// Panics when a case fails.
pub fn run<F>(name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = fnv1a(name.as_bytes());
    for case in 0..cases() {
        let mut rng = TestRng::new(seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        if let Err(e) = property(&mut rng) {
            let inputs = e.inputs.as_deref().unwrap_or("<none recorded>");
            panic!(
                "property `{name}` failed at case {case}:\n  {msg}\n  inputs: {inputs}",
                msg = e.message
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        let mut c = TestRng::new(10);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..16).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..16).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = TestRng::new(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run("counter", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, cases());
    }
}
