//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self { min: len, max: len }
    }
}

/// Strategy for `Vec<T>` with per-element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_span_the_range() {
        let mut rng = TestRng::new(11);
        let strat = vec(0u32..100, 2..6);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            seen[v.len() - 2] = true;
            assert!(v.iter().all(|&x| x < 100));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fixed_and_inclusive_sizes() {
        let mut rng = TestRng::new(12);
        assert_eq!(vec(0u8..5, 4).generate(&mut rng).len(), 4);
        let v = vec(0u8..5, 1..=3).generate(&mut rng);
        assert!((1..=3).contains(&v.len()));
    }
}
