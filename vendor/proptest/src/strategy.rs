//! Value-generation strategies.

use crate::pattern::Pattern;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128 + 1) as u64;
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// String strategies from regex-lite patterns (see [`crate::pattern`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::parse(self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_strategies_cover_their_range() {
        let mut rng = TestRng::new(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(2u32..6).generate(&mut rng) as usize - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn float_strategy_stays_in_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let v = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(3);
        let (a, b) = (0u8..4, 10u8..14).generate(&mut rng);
        assert!(a < 4);
        assert!((10..14).contains(&b));
    }
}
