//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, spanning several orders of magnitude.
        let mag = rng.unit_f64() * 1e6;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        char::from(0x20 + rng.below(0x5F) as u8)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::new(21);
        let strat = any::<bool>();
        let mut saw = [false; 2];
        for _ in 0..64 {
            saw[usize::from(strat.generate(&mut rng))] = true;
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = TestRng::new(22);
        for _ in 0..100 {
            assert!(any::<f64>().generate(&mut rng).is_finite());
        }
    }
}
