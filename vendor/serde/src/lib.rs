//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a compact serde replacement. Instead of upstream's visitor-based
//! serializer architecture, [`Serialize`] lowers values into a JSON-shaped
//! [`value::Value`] tree which `serde_json` renders; [`Deserialize`] lifts
//! values back out of that tree. The derive macros (re-exported from
//! `serde_derive`) generate the same externally-tagged representation
//! upstream serde uses, so JSON produced here has the familiar shape:
//! structs are objects, newtype structs are transparent, unit enum
//! variants are strings, and data-carrying variants are
//! `{"Variant": ...}` objects.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use value::{Number, Value};

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
///
/// The vendored `#[derive(Deserialize)]` intentionally generates nothing:
/// the workspace only ever deserializes into [`Value`] itself, and an
/// unimplemented typed deserialization should fail at compile time rather
/// than silently at run time.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree; `None` on shape mismatch.
    fn from_value(value: &Value) -> Option<Self>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Option<Self> {
        Some(value.clone())
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::Number(Number::U64(*self as u64))
                } else {
                    Value::Number(Number::I64(*self as i64))
                }
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::net::IpAddr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        T::to_value(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        T::to_value(self)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// JSON object keys must be strings; scalar keys are stringified the way
/// upstream `serde_json` does.
///
/// # Panics
/// Panics when a key serializes to an array or object.
fn key_string(key: &Value) -> String {
    match key {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string-like value, got {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Hash iteration order is nondeterministic; sort so serialized
        // output is a pure function of contents.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_lower_to_expected_nodes() {
        assert_eq!(5u32.to_value(), Value::Number(Number::U64(5)));
        assert_eq!((-3i64).to_value(), Value::Number(Number::I64(-3)));
        assert_eq!(3i64.to_value(), Value::Number(Number::U64(3)));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_lower_recursively() {
        let v = vec![1u8, 2].to_value();
        assert_eq!(v[0].as_u64(), Some(1));
        assert_eq!(v[1].as_u64(), Some(2));
        let arr = [7u64; 2].to_value();
        assert_eq!(arr[1].as_u64(), Some(7));
        let pair = (1u8, 2.5f64).to_value();
        assert_eq!(pair[1].as_f64(), Some(2.5));
    }

    #[test]
    fn maps_become_objects_with_string_keys() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let v = m.to_value();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        assert_eq!(v["b"].as_u64(), Some(2));

        let mut h = HashMap::new();
        h.insert(10u32, "x");
        let v = h.to_value();
        assert_eq!(v["10"].as_str(), Some("x"));
    }
}
