//! The JSON-shaped value tree the vendored serde lowers into.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned and signed integers are kept exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            // `{:?}` is shortest-roundtrip and keeps a decimal point or
            // exponent, so the output re-parses as a float.
            Number::F64(v) => write!(f, "{v:?}"),
        }
    }
}

/// A JSON document. Objects preserve insertion order (like upstream
/// `serde_json` with its default feature set), which keeps struct fields in
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As `u64`, when the value is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// As `i64`, when the value is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::I64(v)) => Some(*v),
            _ => None,
        }
    }

    /// As `f64`, for any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// As `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// As ordered object entries.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Shared missing-entry sentinel for forgiving indexing.
static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// Forgiving object indexing: missing keys and non-objects yield
    /// `Null` (matching upstream `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// Forgiving array indexing: out-of-range and non-arrays yield `Null`.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_forgiving() {
        let v = Value::Object(vec![(
            "a".to_string(),
            Value::Array(vec![Value::Number(Number::U64(1))]),
        )]);
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert!(v["missing"].is_null());
        assert!(v["a"][5].is_null());
        assert!(v["a"]["not-an-object"].is_null());
    }

    #[test]
    fn number_display_keeps_float_shape() {
        assert_eq!(Number::U64(3).to_string(), "3");
        assert_eq!(Number::I64(-3).to_string(), "-3");
        assert_eq!(Number::F64(1.0).to_string(), "1.0");
        assert_eq!(Number::F64(0.125).to_string(), "0.125");
    }

    #[test]
    fn accessors_reject_wrong_shapes() {
        let v = Value::String("x".into());
        assert!(v.as_u64().is_none());
        assert!(v.as_array().is_none());
        assert_eq!(v.as_str(), Some("x"));
        assert_eq!(Value::Number(Number::U64(7)).as_i64(), Some(7));
        assert_eq!(Value::Number(Number::I64(-7)).as_f64(), Some(-7.0));
    }
}
