//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panic while held) is recovered
//! rather than propagated, matching parking_lot's behavior of not
//! tracking poisoning at all.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose guard is returned without a poison
/// `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create the lock.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.lock()).finish()
    }
}

/// A reader-writer lock whose guards are returned without poison
/// `Result`s.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create the lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }
}
