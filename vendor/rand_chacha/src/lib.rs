//! Offline vendored stand-in for `rand_chacha`.
//!
//! Implements [`ChaCha8Rng`] as a genuine ChaCha stream cipher keystream
//! (8 double-rounds, 256-bit key, 64-bit block counter) exposed through the
//! vendored [`rand_core`] traits. Output does not match the upstream crate
//! word-for-word (the workspace never relies on upstream golden values —
//! only on determinism and statistical quality), but the generator is the
//! real ChaCha permutation, so its keystream passes the same statistical
//! batteries.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const CHACHA_DOUBLE_ROUNDS: usize = 4; // 8 rounds total

/// The ChaCha8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// Block counter (state words 12..14).
    counter: u64,
    /// Current 16-word keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generate the keystream block for the current counter into `block`.
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..CHACHA_DOUBLE_ROUNDS {
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (word, init) in s.iter_mut().zip(input) {
            *word = word.wrapping_add(init);
        }
        self.block = s;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_matches_itself_and_diverges_across_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..23 {
            a.next_u32();
        }
        let mut b = a.clone();
        let xs: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn output_bits_are_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64,000 bits; expect ~32,000 ones.
        assert!((31_000..33_000).contains(&ones), "ones {ones}");
    }

    #[test]
    fn fill_bytes_is_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut ba = [0u8; 33];
        let mut bb = [0u8; 33];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}
