//! Offline vendored stand-in for `criterion`.
//!
//! Implements the call surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — over a simple wall-clock
//! sampler. Each benchmark is calibrated to roughly 5 ms per sample, then
//! timed for `sample_size` samples; the median per-iteration time is
//! reported on stdout. There is no statistical analysis, HTML report, or
//! baseline comparison. Passing `--test` (as `cargo test --benches` does)
//! runs every benchmark exactly once to check it executes.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Work-per-iteration hint, echoed as a rate in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark name, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A parameterized id rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            id: format!("{}/{param}", name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Drives the timing loop inside a benchmark closure.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Time `routine` for the sampler-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        *self.elapsed = start.elapsed();
    }
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    fn from_args() -> Self {
        // `cargo bench -- --test` / `cargo test --benches` smoke-run mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
            throughput: None,
        }
    }

    /// A one-off benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A set of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Report a derived rate alongside the per-iteration time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let label = self.label(&id.into());
        self.run(&label, &mut f);
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let label = self.label(&id.into());
        self.run(&label, &mut |b| f(b, input));
    }

    /// No-op finalizer kept for API compatibility.
    pub fn finish(self) {}

    fn label(&self, id: &BenchmarkId) -> String {
        if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        }
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut elapsed = Duration::ZERO;
        if self.criterion.test_mode {
            f(&mut Bencher {
                iters: 1,
                elapsed: &mut elapsed,
            });
            println!("{label}: ok (test mode)");
            return;
        }
        // Calibrate: grow the iteration count until one sample takes ~5 ms.
        let mut iters: u64 = 1;
        loop {
            f(&mut Bencher {
                iters,
                elapsed: &mut elapsed,
            });
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                f(&mut Bencher {
                    iters,
                    elapsed: &mut elapsed,
                });
                elapsed.as_secs_f64() / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.2} MiB/s", n as f64 / median / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{label:<48} {time:>12}  ({samples} samples x {iters} iters){rate}",
            time = format_time(median),
            samples = self.sample_size,
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Bundle benchmark functions into a runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::__from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point invoking each [`criterion_group!`] runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

impl Criterion {
    /// Internal constructor for the `criterion_group!` macro.
    #[doc(hidden)]
    pub fn __from_args() -> Self {
        Self::from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut elapsed = Duration::ZERO;
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 7,
            elapsed: &mut elapsed,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn benchmark_id_formats_param() {
        assert_eq!(BenchmarkId::new("parse", 42).id, "parse/42");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn format_time_picks_sane_units() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with('s'));
    }
}
