//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the vendored-serde [`Value`] tree to JSON text (compact and
//! pretty) and parses JSON text back into [`Value`]s with a
//! recursive-descent parser. Rendering is deterministic: object entries
//! keep insertion order, floats use Rust's shortest-roundtrip formatting,
//! and non-finite floats become `null` (as upstream does).

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::value::{Number, Value};

/// A parse or conversion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Byte offset of the error in the input, when parsing.
    offset: Option<usize>,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
///
/// # Errors
/// Infallible for the value model used here; `Result` is kept for
/// upstream-API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty JSON (two-space indent, like upstream).
///
/// # Errors
/// Infallible for the value model used here.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into `T` (in this workspace, always [`Value`]).
///
/// # Errors
/// Returns an error describing the first offending byte on malformed
/// input, or a shape mismatch when converting to `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    T::from_value(&value).ok_or_else(|| Error {
        message: "value does not match the requested type".to_string(),
        offset: None,
    })
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::F64(v) if !v.is_finite() => out.push_str("null"),
        other => out.push_str(&other.to_string()),
    }
}

fn newline_indent(out: &mut String, indent: usize, level: usize) {
    out.push('\n');
    out.push_str(&" ".repeat(indent * level));
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = indent {
                    newline_indent(out, n, level + 1);
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(n) = indent {
                newline_indent(out, n, level);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = indent {
                    newline_indent(out, n, level + 1);
                }
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(n) = indent {
                newline_indent(out, n, level);
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected '{}'", char::from(byte)),
                self.pos,
            ))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{literal}`"), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse("invalid UTF-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::parse("invalid low surrogate", self.pos));
                                }
                                let cp = 0x10000
                                    + ((u32::from(unit) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(u32::from(unit))
                            };
                            out.push(
                                c.ok_or_else(|| Error::parse("invalid unicode escape", self.pos))?,
                            );
                        }
                        other => {
                            return Err(Error::parse(
                                format!("invalid escape '\\{}'", char::from(other)),
                                self.pos - 1,
                            ));
                        }
                    }
                }
                _ => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::parse("truncated \\u escape", self.pos))?;
        let s =
            std::str::from_utf8(hex).map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        let v =
            u16::from_str_radix(s, 16).map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        let number = if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                Number::U64(v)
            } else if let Ok(v) = text.parse::<i64>() {
                Number::I64(v)
            } else {
                Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::parse("invalid number", start))?,
                )
            }
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::parse("invalid number", start))?,
            )
        };
        Ok(Value::Number(number))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse("expected ',' or '}'", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("a \"b\"\n".to_string())),
            (
                "nums".to_string(),
                Value::Array(vec![
                    Value::Number(Number::U64(1)),
                    Value::Number(Number::F64(0.5)),
                    Value::Number(Number::I64(-2)),
                ]),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let parsed: Value = from_str(&text).unwrap();
            assert_eq!(parsed, v, "failed roundtrip for {text}");
        }
    }

    #[test]
    fn parses_nested_documents() {
        let v: Value = from_str(r#"{"a": {"b": [1, 2, {"c": "d"}]}, "e": 1e3}"#).unwrap();
        assert_eq!(v["a"]["b"][2]["c"].as_str(), Some("d"));
        assert_eq!(v["e"].as_f64(), Some(1000.0));
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        let v: Value = from_str(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        let neg: Value = from_str("-42").unwrap();
        assert_eq!(neg.as_i64(), Some(-42));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v: Value = from_str(r#""é😀\t""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀\t"));
    }

    #[test]
    fn non_finite_floats_render_null() {
        let text = to_string(&f64::INFINITY).unwrap();
        assert_eq!(text, "null");
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["{", "[1,", "\"abc", "tru", "{\"a\" 1}", "1 2"] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn float_rendering_reparses_as_float() {
        let text = to_string(&1.0f64).unwrap();
        assert_eq!(text, "1.0");
        let v: Value = from_str(&text).unwrap();
        assert_eq!(v.as_f64(), Some(1.0));
        assert!(v.as_u64().is_none());
    }
}
