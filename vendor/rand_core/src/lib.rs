//! Offline vendored stand-in for `rand_core`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny subset of the `rand_core` API the repository actually
//! uses: the [`RngCore`] source-of-randomness trait and [`SeedableRng`]
//! with its `seed_from_u64` convenience constructor. Semantics follow the
//! upstream crate; only the surface needed here is provided.

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// An RNG deterministically constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed material (a fixed-size byte array in practice).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it over the full seed
    /// with SplitMix64 (the same construction upstream `rand_core` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }

    struct SeedCapture([u8; 32]);

    impl SeedableRng for SeedCapture {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self(seed)
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let a = SeedCapture::seed_from_u64(42).0;
        let b = SeedCapture::seed_from_u64(42).0;
        let c = SeedCapture::seed_from_u64(43).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, [0u8; 32], "seed expansion must not be trivial");
    }
}
