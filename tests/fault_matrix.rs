//! Fault matrix: the study's determinism contract must survive adverse
//! weather. For every topology in workers {1, 4} × shards {1, 8}:
//!
//! * a run under a fault plan whose every fault recovers (transient
//!   timeouts, 429s, a source outage, slow and briefly-poisoned engine
//!   workers) is **byte-identical** to the fault-free run;
//! * a run killed mid-ingest by the plan's kill switch and resumed from
//!   its checkpoint re-emits the exact bytes of the uninterrupted run;
//! * a plan with unrecoverable faults degrades **loudly**: the report
//!   differs, and every missing document is accounted for in
//!   `report.coverage` — never silently dropped;
//! * the same contracts hold for store-backed durability: a fault-free
//!   store-backed run, and a run SIGKILLed between the segment write
//!   and the manifest swap then resumed from the recovered store, are
//!   both byte-identical to the in-memory run — with zero checkpointed
//!   documents replayed through ingest and the Info-level event stream
//!   unchanged.

use doxing_repro::core::report::to_json;
use doxing_repro::core::study::{StudyConfig, StudyConfigBuilder};
use doxing_repro::core::{Error, Study};
use doxing_repro::engine::EngineConfig;
use doxing_repro::fault::{FaultDomain, FaultPlanConfig, OutageWindow, StoreKillPoint};
use doxing_repro::obs::{Level, Registry};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

const SEED: u64 = 0xFA17;
const TOPOLOGIES: [(usize, usize); 4] = [(1, 1), (1, 8), (4, 1), (4, 8)];

fn base(workers: usize, shards: usize) -> StudyConfigBuilder {
    StudyConfig::builder()
        .scale(0.005)
        .seed(SEED)
        .engine(EngineConfig {
            workers,
            shards,
            ..EngineConfig::default()
        })
}

/// A stormy but fully survivable plan: every injected fault recovers
/// within the retry budget, so it must not change a byte of the report.
fn recoverable_plan() -> FaultPlanConfig {
    FaultPlanConfig {
        seed: 0xBAD_5EED,
        transient_ppm: 120_000,
        max_transient_failures: 2,
        rate_limited_ppm: 250_000,
        outages: vec![OutageWindow {
            domain: FaultDomain::Collect,
            target: "pastebin.com".into(),
            from: 2_000,
            until: 2_090,
        }],
        slow_chunk_ppm: 60_000,
        poison_chunk_ppm: 40_000,
        ..FaultPlanConfig::default()
    }
}

/// The fault-free reference report, computed once per topology.
fn clean_json(workers: usize, shards: usize) -> String {
    static CACHE: OnceLock<Mutex<HashMap<(usize, usize), String>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(json) = cache.lock().unwrap().get(&(workers, shards)) {
        return json.clone();
    }
    let r = Study::with_registry(base(workers, shards).build(), Registry::new())
        .run()
        .expect("fault-free study runs");
    let json = to_json(&r).expect("report serializes");
    assert_eq!(
        r.coverage.total(),
        0,
        "a fault-free run must report zero coverage gaps"
    );
    cache
        .lock()
        .unwrap()
        .insert((workers, shards), json.clone());
    json
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dox_fault_matrix_{}_{tag}", std::process::id()))
}

#[test]
fn recovered_faults_are_byte_identical_across_the_matrix() {
    for (workers, shards) in TOPOLOGIES {
        let cfg = base(workers, shards).faults(recoverable_plan()).build();
        let r = Study::with_registry(cfg, Registry::new())
            .run()
            .expect("stormy study runs");
        assert_eq!(
            r.coverage.total(),
            0,
            "(workers={workers}, shards={shards}) recovered faults must \
             leave no coverage gaps"
        );
        assert_eq!(
            to_json(&r).expect("report serializes"),
            clean_json(workers, shards),
            "(workers={workers}, shards={shards}) a fully-recovered run \
             must be byte-identical to the fault-free run"
        );
    }
}

#[test]
fn kill_and_resume_reproduces_the_report_byte_for_byte() {
    for (workers, shards) in [(1, 1), (4, 8)] {
        let dir = scratch_dir(&format!("{workers}x{shards}"));
        let _ = std::fs::remove_dir_all(&dir);

        let killed_plan = FaultPlanConfig {
            kill_after_docs: Some(1_500),
            ..recoverable_plan()
        };
        let killed_cfg = base(workers, shards)
            .faults(killed_plan)
            .checkpoint_dir(&dir)
            .checkpoint_every(400)
            .build();
        match Study::with_registry(killed_cfg, Registry::new()).run() {
            Err(Error::Halted { docs_ingested }) => assert_eq!(docs_ingested, 1_500),
            other => panic!("expected the kill switch to halt the run, got {other:?}"),
        }

        let resumed_cfg = base(workers, shards)
            .faults(recoverable_plan())
            .checkpoint_dir(&dir)
            .checkpoint_every(400)
            .resume(true)
            .build();
        let resumed = Study::with_registry(resumed_cfg, Registry::new())
            .run()
            .expect("resumed study runs");
        assert_eq!(
            to_json(&resumed).expect("report serializes"),
            clean_json(workers, shards),
            "(workers={workers}, shards={shards}) kill + resume must \
             re-emit the exact bytes of the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The Info-and-louder event stream, rendered exactly as `emit` echoes
/// it to stderr. Sequence numbers are not compared — a resumed run
/// spends one on its Debug-level resume notice.
fn info_stream(registry: &Registry) -> Vec<String> {
    registry
        .events()
        .recent()
        .iter()
        .filter(|e| e.level >= Level::Info)
        .map(ToString::to_string)
        .collect()
}

#[test]
fn store_backed_kill_mid_commit_and_resume_is_byte_identical() {
    for (workers, shards) in TOPOLOGIES {
        let dir = scratch_dir(&format!("store_{workers}x{shards}"));
        let _ = std::fs::remove_dir_all(&dir);
        // A tiny spill cap so every shard actually pages dedup state
        // out to the store instead of keeping the run in memory.
        let store_base = |b: StudyConfigBuilder| {
            b.checkpoint_dir(&dir)
                .checkpoint_every(400)
                .store_backed(true)
                .spill_cap(64)
        };

        // Store-backed run under the recoverable storm: spilling and
        // store checkpoints must not change a byte of the report. This
        // run doubles as the uninterrupted comparator for the resumed
        // run's event stream below (same plan, so the same summary).
        let clean_registry = Registry::new();
        let clean = Study::with_registry(
            store_base(base(workers, shards).faults(recoverable_plan())).build(),
            clean_registry.clone(),
        )
        .run()
        .expect("store-backed study runs");
        assert_eq!(
            to_json(&clean).expect("report serializes"),
            clean_json(workers, shards),
            "(workers={workers}, shards={shards}) store-backed run must \
             be byte-identical to the in-memory fault-free run"
        );

        // SIGKILL the second store commit between the segment write and
        // the manifest swap: the torn commit must roll back to the
        // first checkpoint on reopen.
        let _ = std::fs::remove_dir_all(&dir);
        let killed_plan = FaultPlanConfig {
            kill_at_store_commit: Some(2),
            kill_store_point: StoreKillPoint::BetweenWriteAndSwap,
            ..recoverable_plan()
        };
        let killed_cfg = store_base(base(workers, shards).faults(killed_plan)).build();
        match Study::with_registry(killed_cfg, Registry::new()).run() {
            Err(Error::Halted { .. }) => {}
            other => panic!("expected the store kill drill to halt the run, got {other:?}"),
        }

        let resumed_cfg = store_base(base(workers, shards).faults(recoverable_plan()))
            .resume(true)
            .build();
        let registry = Registry::new();
        let resumed = Study::with_registry(resumed_cfg, registry.clone())
            .run()
            .expect("resumed store-backed study runs");
        assert_eq!(
            to_json(&resumed).expect("report serializes"),
            clean_json(workers, shards),
            "(workers={workers}, shards={shards}) store kill + resume \
             must re-emit the exact bytes of the uninterrupted run"
        );
        assert_eq!(
            registry.counter("study.resume.replayed_docs").get(),
            0,
            "(workers={workers}, shards={shards}) resume must replay \
             zero checkpointed documents through ingest"
        );
        assert_eq!(
            registry.counter("study.resume.skipped_docs").get(),
            400,
            "(workers={workers}, shards={shards}) the torn second commit \
             must roll back to the first checkpoint (400 docs)"
        );
        assert_eq!(
            info_stream(&registry),
            info_stream(&clean_registry),
            "(workers={workers}, shards={shards}) resume must not \
             perturb the Info-level event stream"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn exhausted_faults_degrade_loudly_not_silently() {
    let (workers, shards) = (4, 8);
    let hard_plan = FaultPlanConfig {
        seed: 0xDEAD,
        hard_ppm: 60_000,
        ..FaultPlanConfig::default()
    };
    let cfg = base(workers, shards).faults(hard_plan).build();
    let r = Study::with_registry(cfg, Registry::new())
        .run()
        .expect("degraded study still completes");
    assert!(
        r.coverage.total() > 0,
        "hard faults must surface as explicit coverage gaps"
    );
    assert_ne!(
        to_json(&r).expect("report serializes"),
        clean_json(workers, shards),
        "losing sources must visibly change the report"
    );
}
