//! Shape tests: scale-invariant qualitative findings of the paper, checked
//! against a moderately scaled run (8 % of the paper's corpus — ~140k
//! documents, a few seconds in release mode). Absolute counts differ at
//! this scale; who-wins orderings must not.

use doxing_repro::core::study::{ExperimentReport, Study, StudyConfig};
use doxing_repro::osn::network::Network;
use std::sync::OnceLock;

fn report() -> &'static ExperimentReport {
    static R: OnceLock<ExperimentReport> = OnceLock::new();
    R.get_or_init(|| {
        Study::new(StudyConfig::at_scale(0.08))
            .run()
            .expect("scaled study runs")
    })
}

#[test]
fn finding_share_of_doxes_is_around_a_third_percent() {
    // "approximately 0.3% of shared files are doxes"
    let r = report();
    let share = r.pipeline.classified_dox as f64 / r.pipeline.total as f64;
    assert!(
        (0.001..0.01).contains(&share),
        "dox share of stream = {share}"
    );
}

#[test]
fn finding_duplicate_share_matches_section_314() {
    // §3.1.4: 18.1 % of detected doxes duplicate an earlier dox; exact
    // reposts are the smaller slice.
    let r = report();
    let dups = r.pipeline.exact_duplicates + r.pipeline.account_set_duplicates;
    let share = dups as f64 / r.pipeline.classified_dox.max(1) as f64;
    assert!((0.06..0.30).contains(&share), "duplicate share {share}");
    assert!(
        r.pipeline.account_set_duplicates >= r.pipeline.exact_duplicates,
        "near-duplicates outnumber exact reposts (788 vs 214 in the paper)"
    );
}

#[test]
fn finding_facebook_most_referenced_network() {
    // Table 9: Facebook leads every other network.
    let r = report();
    let fb = r.osn_presence.count(Network::Facebook);
    for net in [
        Network::GooglePlus,
        Network::Twitter,
        Network::Instagram,
        Network::YouTube,
        Network::Twitch,
    ] {
        assert!(fb >= r.osn_presence.count(net), "{net} outnumbers Facebook");
    }
    assert!(fb > 0);
}

#[test]
fn finding_doxes_deleted_more_often() {
    // Table 3: dox-labeled pastes are deleted ~3x as often within a month.
    let r = report();
    assert!(r.deletion.dox_total >= 20, "need a usable dox sample");
    assert!(
        r.deletion.dox_rate() > r.deletion.other_rate(),
        "dox {} vs other {}",
        r.deletion.dox_rate(),
        r.deletion.other_rate()
    );
}

#[test]
fn finding_doxed_accounts_close_more_than_control() {
    // §6.2.2: doxed accounts are dramatically more likely to change.
    let r = report();
    let mut doxed_changed = 0usize;
    let mut doxed_total = 0usize;
    for row in r.status_changes.rows.values() {
        doxed_changed += row.any_change;
        doxed_total += row.total;
    }
    assert!(doxed_total >= 20, "monitored accounts {doxed_total}");
    let doxed_rate = doxed_changed as f64 / doxed_total as f64;
    let control_rate = r.control_row.frac_any_change();
    assert!(
        doxed_rate > control_rate,
        "doxed {doxed_rate} vs control {control_rate}"
    );
    assert!(doxed_rate > 0.05, "doxed accounts do react: {doxed_rate}");
}

#[test]
fn finding_males_doxed_more_than_females() {
    // Table 5 headline: dox files target males more frequently.
    let r = report();
    assert!(r.demographics.male > r.demographics.female);
    assert!(r.demographics.male > 0.6);
}

#[test]
fn finding_justice_and_revenge_most_cited() {
    // Table 8 headline: justice and revenge are the most cited motives.
    let r = report();
    let m = &r.motivation;
    assert!(m.justice >= m.competitive);
    assert!(m.justice >= m.political);
    assert!(m.revenge >= m.competitive);
    assert!(m.revenge >= m.political);
}

#[test]
fn finding_gamers_largest_community() {
    // Table 7: gamer is the largest categorized community.
    let r = report();
    assert!(r.community.gamer >= r.community.hacker);
    assert!(r.community.gamer >= r.community.celebrity);
}

#[test]
fn finding_filters_reduced_reactions() {
    // §6.3: pre-filter reaction rates exceed post-filter rates for
    // Facebook + Instagram pooled (pool to damp small-sample noise).
    let r = report();
    let get = |label: &str| r.status_changes.rows.get(label);
    let (mut pre_changed, mut pre_total) = (0usize, 0usize);
    let (mut post_changed, mut post_total) = (0usize, 0usize);
    for net in ["Facebook", "Instagram"] {
        if let Some(row) = get(&format!("{net} Doxed (pre filter)")) {
            pre_changed += row.any_change;
            pre_total += row.total;
        }
        if let Some(row) = get(&format!("{net} Doxed (post filter)")) {
            post_changed += row.any_change;
            post_total += row.total;
        }
    }
    if pre_total >= 15 && post_total >= 15 {
        let pre = pre_changed as f64 / pre_total as f64;
        let post = post_changed as f64 / post_total as f64;
        assert!(
            pre >= post,
            "filters should reduce reactions: pre {pre} vs post {post}"
        );
    }
}

#[test]
fn finding_reactions_land_within_a_week() {
    // §6.3: 90.6 % of more-private changes within 7 days.
    let r = report();
    if r.reaction_timing.total >= 5 {
        assert!(
            r.reaction_timing.frac_within_week() > 0.6,
            "within-week {}",
            r.reaction_timing.frac_within_week()
        );
    }
}

#[test]
fn finding_doxer_cliques_exist() {
    // Figure 2: doxers operate in teams; cliques of ≥4 exist and the
    // biggest is bounded by the generated team structure (11).
    let r = report();
    let d = &r.doxer_network;
    assert!(d.total_doxers > 0, "credits must surface doxers");
    assert!(d.max_clique <= 11);
    assert!(d.with_twitter <= d.total_doxers);
    assert!(d.in_big_cliques <= d.total_doxers);
}

#[test]
fn finding_ip_validation_mostly_close() {
    // §4.1: 32/36 close, of which 4 exact; few adjacent/far.
    let r = report();
    let v = &r.ip_validation;
    if v.with_both >= 15 {
        let close = v.summary.close_or_exact() as f64 / v.with_both as f64;
        assert!(close > 0.7, "close share {close}");
        assert!(v.summary.exact <= v.summary.close_or_exact());
    }
}
