//! Overload-policy integration (DESIGN.md §13) over the live API:
//! drain ordering — mutations refuse with 503 the instant a drain
//! begins while already-admitted requests complete whole and the
//! checkpoint reflects exactly the admitted documents — and per-tenant
//! ingest quotas answering 429 + `Retry-After` that actually refill.

use doxing_repro::core::study::Study;
use doxing_repro::obs::http::DEFAULT_MAX_BODY;
use doxing_repro::obs::{HttpServer, Registry, Tracer};
use doxing_repro::serve::{router, QuotaSpec, ServeState, TenantSpec};
use serde::value::{Number, Value};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Duration;

const SCALE: f64 = 0.005;
const BATCH_DOCS: usize = 250;
const SEED: u64 = 0x0D;

fn spec(id: &str, quota: Option<QuotaSpec>) -> TenantSpec {
    TenantSpec {
        id: id.to_string(),
        seed: SEED,
        scale: SCALE,
        workers: 2,
        shards: 4,
        quota,
    }
}

/// One keep-alive round trip; returns `(status, response head, body)`
/// so callers can assert on `Retry-After`.
fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, String) {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        assert!(
            stream.read(&mut byte).expect("read response") > 0,
            "server closed mid-response"
        );
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("response body");
    (status, head, String::from_utf8_lossy(&body).to_string())
}

fn retry_after_secs(head: &str) -> Option<u64> {
    head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse().ok())?
    })
}

/// The tenant's two-period stream as period-pure ingest batches.
fn full_stream(spec: &TenantSpec) -> Vec<(u8, Vec<Value>)> {
    let study = Study::with_registry(spec.study_config(), Registry::new());
    let mut batches: Vec<(u8, Vec<Value>)> = Vec::new();
    study
        .synthetic_stream(&mut |period, doc| {
            match batches.last_mut() {
                Some((p, docs)) if *p == period && docs.len() < BATCH_DOCS => {
                    docs.push(doc.to_value());
                }
                _ => batches.push((period, vec![doc.to_value()])),
            }
            ControlFlow::Continue(())
        })
        .expect("stream replays");
    batches
}

fn ingest_body(id: &str, period: u8, docs: &[Value]) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("tenant".to_string(), Value::String(id.to_string())),
        (
            "period".to_string(),
            Value::Number(Number::U64(u64::from(period))),
        ),
        ("docs".to_string(), Value::Array(docs.to_vec())),
    ]))
    .expect("batch serializes")
}

fn boot(state: &Arc<ServeState>) -> (HttpServer, String) {
    let server = HttpServer::start(
        "127.0.0.1:0",
        router(Arc::clone(state), &Tracer::disabled()),
        4,
        DEFAULT_MAX_BODY,
    )
    .expect("server binds");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn create_tenant(addr: &str, spec: &TenantSpec) {
    let body = serde_json::to_string(&spec.to_value()).expect("spec serializes");
    let mut stream = TcpStream::connect(addr).expect("connect");
    let (status, _, response) = roundtrip(&mut stream, "POST", "/v1/tenants", &body);
    assert_eq!(status, 201, "tenant create failed: {response}");
}

fn fetch_report(addr: &str, id: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let (status, _, served) = roundtrip(&mut stream, "GET", &format!("/v1/report?tenant={id}"), "");
    assert_eq!(status, 200, "report failed: {served}");
    served
}

#[test]
fn drain_refuses_mutations_while_admitted_work_completes_whole() {
    let state = Arc::new(ServeState::new(Registry::new()));
    let (server, addr) = boot(&state);
    let spec = spec("d0", None);
    create_tenant(&addr, &spec);

    // Before the drain: ready, alive, and ingesting.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let (status, _, _) = roundtrip(&mut stream, "GET", "/readyz", "");
    assert_eq!(status, 200, "ready before drain");

    let batches = full_stream(&spec);
    let (last, admitted_head) = batches.split_last().expect("stream yields batches");
    for (period, docs) in admitted_head {
        let body = ingest_body(&spec.id, *period, docs);
        let (status, _, response) = roundtrip(&mut stream, "POST", "/v1/ingest", &body);
        assert_eq!(status, 200, "ingest failed: {response}");
    }

    // Fire the final batch from its own client and begin the drain
    // while it may be in flight. The race has exactly two legal
    // outcomes: admitted before the flag (200, and the checkpoint holds
    // every one of its docs) or refused (503, and none of them). A torn
    // in-between is the bug this test exists to catch.
    let last_body = ingest_body(&spec.id, last.0, &last.1);
    let last_status = std::thread::scope(|scope| {
        let racer = scope.spawn(|| {
            let mut stream = TcpStream::connect(&addr).expect("connect");
            let (status, _, _) = roundtrip(&mut stream, "POST", "/v1/ingest", &last_body);
            status
        });
        std::thread::sleep(Duration::from_millis(2));
        // Blocks until every admitted mutation has completed.
        state.begin_drain();
        racer.join().expect("racing client")
    });
    assert!(
        last_status == 200 || last_status == 503,
        "in-flight ingest must be admitted whole or refused whole, got {last_status}"
    );

    // After the drain began: mutations refuse, liveness and reads hold.
    let (status, _, _) = roundtrip(&mut stream, "GET", "/readyz", "");
    assert_eq!(status, 503, "draining server is unready");
    let (status, _, _) = roundtrip(&mut stream, "GET", "/healthz", "");
    assert_eq!(status, 200, "draining server is still alive");
    let (status, _, _) = roundtrip(&mut stream, "POST", "/v1/ingest", &last_body);
    assert_eq!(status, 503, "ingest refused during drain");
    let spec_body = serde_json::to_string(&spec.to_value()).expect("spec serializes");
    let (status, _, _) = roundtrip(&mut stream, "POST", "/v1/tenants", &spec_body);
    assert_eq!(status, 503, "tenant create refused during drain");
    let (status, _, _) = roundtrip(&mut stream, "DELETE", "/v1/tenants/d0", "");
    assert_eq!(status, 503, "tenant delete refused during drain");
    let drained_report = fetch_report(&addr, &spec.id);

    // Checkpoint, restore into a fresh server, and byte-compare the
    // report against a reference tenant fed exactly the admitted
    // batches: the checkpoint must reflect every admitted document and
    // nothing else.
    let dir = std::env::temp_dir().join(format!("dox-serve-overload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("checkpoint dir");
    state.drain_checkpoints(&dir).expect("drain checkpoints");
    server.stop();

    let restored_state = Arc::new(ServeState::new(Registry::new()));
    restored_state
        .restore_checkpoints(&dir)
        .expect("restore checkpoints");
    let (restored_server, restored_addr) = boot(&restored_state);
    let restored_report = fetch_report(&restored_addr, &spec.id);
    restored_server.stop();
    assert_eq!(
        restored_report, drained_report,
        "restore must reproduce the drained tenant byte-for-byte"
    );

    let reference_state = Arc::new(ServeState::new(Registry::new()));
    let (reference_server, reference_addr) = boot(&reference_state);
    create_tenant(&reference_addr, &spec);
    let mut reference_stream = TcpStream::connect(&reference_addr).expect("connect");
    for (period, docs) in admitted_head {
        let body = ingest_body(&spec.id, *period, docs);
        let (status, _, response) = roundtrip(&mut reference_stream, "POST", "/v1/ingest", &body);
        assert_eq!(status, 200, "reference ingest failed: {response}");
    }
    if last_status == 200 {
        let (status, _, response) =
            roundtrip(&mut reference_stream, "POST", "/v1/ingest", &last_body);
        assert_eq!(status, 200, "reference ingest failed: {response}");
    }
    let reference_report = fetch_report(&reference_addr, &spec.id);
    reference_server.stop();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        drained_report, reference_report,
        "checkpoint must reflect exactly the admitted documents"
    );
}

#[test]
fn quota_answers_429_with_retry_after_and_refills() {
    let state = Arc::new(ServeState::new(Registry::new()));
    let (server, addr) = boot(&state);
    // 30 docs/s with a 30-doc burst: one batch in, the next waits ~1 s.
    let spec = spec(
        "q0",
        Some(QuotaSpec {
            docs_per_sec: Some(30.0),
            burst_docs: Some(30),
            max_inflight_bytes: Some(8 << 20),
        }),
    );
    create_tenant(&addr, &spec);

    let batches = full_stream(&spec);
    let (period, docs) = batches.first().expect("stream yields batches");
    let body = ingest_body(&spec.id, *period, &docs[..30.min(docs.len())]);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    let (status, _, response) = roundtrip(&mut stream, "POST", "/v1/ingest", &body);
    assert_eq!(status, 200, "burst-sized batch admitted: {response}");

    let (status, head, response) = roundtrip(&mut stream, "POST", "/v1/ingest", &body);
    assert_eq!(status, 429, "bucket empty -> 429, got: {response}");
    let retry = retry_after_secs(&head).expect("429 carries Retry-After");
    assert!(retry >= 1, "Retry-After must be at least a second");
    assert!(
        !response.contains("docs"),
        "quota refusal must not echo request content"
    );

    // The refusal is visible in the tenant's own counters.
    let (status, _, metrics) = roundtrip(&mut stream, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("serve.tenant.q0.quota_rejects"),
        "per-tenant quota counter exported: {metrics}"
    );

    // Honoring Retry-After succeeds: the bucket actually refills.
    std::thread::sleep(Duration::from_secs(retry.min(3)) + Duration::from_millis(300));
    let (status, _, response) = roundtrip(&mut stream, "POST", "/v1/ingest", &body);
    assert_eq!(status, 200, "post-refill ingest admitted: {response}");

    server.stop();
}
