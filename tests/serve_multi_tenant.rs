//! Service mode preserves the determinism contract under multi-tenancy:
//! N tenants fed their studies' document streams over parallel raw
//! `TcpStream` HTTP clients each answer `GET /v1/report` byte-identical
//! to the batch [`Study::run`] under the same `(config, seed)`.

use doxing_repro::core::report;
use doxing_repro::core::study::Study;
use doxing_repro::obs::http::DEFAULT_MAX_BODY;
use doxing_repro::obs::{HttpServer, Registry, Tracer};
use doxing_repro::serve::{router, ServeState, TenantSpec};
use serde::value::{Number, Value};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::ops::ControlFlow;
use std::sync::Arc;

const SCALE: f64 = 0.005;
const BATCH_DOCS: usize = 250;
const SEEDS: [u64; 2] = [0x51, 0x7A];

fn spec(i: usize, seed: u64) -> TenantSpec {
    TenantSpec {
        id: format!("t{i}"),
        seed,
        scale: SCALE,
        workers: 2,
        shards: 4,
        quota: None,
    }
}

/// One keep-alive HTTP/1.1 round trip; returns `(status, body)`.
fn roundtrip(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> (u16, String) {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        assert!(
            stream.read(&mut byte).expect("read response") > 0,
            "server closed mid-response"
        );
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("response body");
    (status, String::from_utf8_lossy(&body).to_string())
}

/// The tenant's whole two-period document stream as ingest batches that
/// never mix periods.
fn full_stream(spec: &TenantSpec) -> Vec<(u8, Vec<Value>)> {
    let study = Study::with_registry(spec.study_config(), Registry::new());
    let mut batches: Vec<(u8, Vec<Value>)> = Vec::new();
    study
        .synthetic_stream(&mut |period, doc| {
            match batches.last_mut() {
                Some((p, docs)) if *p == period && docs.len() < BATCH_DOCS => {
                    docs.push(doc.to_value());
                }
                _ => batches.push((period, vec![doc.to_value()])),
            }
            ControlFlow::Continue(())
        })
        .expect("stream replays");
    batches
}

#[test]
fn parallel_tenants_match_their_batch_reports_byte_for_byte() {
    let state = Arc::new(ServeState::new(Registry::new()));
    let server = HttpServer::start(
        "127.0.0.1:0",
        router(Arc::clone(&state), &Tracer::disabled()),
        4,
        DEFAULT_MAX_BODY,
    )
    .expect("server binds");
    let addr = server.local_addr().to_string();

    let specs: Vec<TenantSpec> = SEEDS
        .iter()
        .enumerate()
        .map(|(i, &seed)| spec(i, seed))
        .collect();
    for spec in &specs {
        let body = serde_json::to_string(&spec.to_value()).expect("spec serializes");
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let (status, response) = roundtrip(&mut stream, "POST", "/v1/tenants", &body);
        assert_eq!(status, 201, "tenant create failed: {response}");
    }

    // Parallel ingest: one client thread and one connection per tenant,
    // interleaving on the server's worker pool.
    std::thread::scope(|scope| {
        for spec in &specs {
            let addr = addr.clone();
            scope.spawn(move || {
                let batches = full_stream(spec);
                let mut stream = TcpStream::connect(&addr).expect("connect");
                for (period, docs) in &batches {
                    let body = serde_json::to_string(&Value::Object(vec![
                        ("tenant".to_string(), Value::String(spec.id.clone())),
                        (
                            "period".to_string(),
                            Value::Number(Number::U64(u64::from(*period))),
                        ),
                        ("docs".to_string(), Value::Array(docs.clone())),
                    ]))
                    .expect("batch serializes");
                    let (status, response) = roundtrip(&mut stream, "POST", "/v1/ingest", &body);
                    assert_eq!(status, 200, "ingest failed: {response}");
                }
            });
        }
    });

    // Each tenant's live report must equal the batch study's, byte for
    // byte, under the identical derived config.
    for spec in &specs {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let path = format!("/v1/report?tenant={}", spec.id);
        let (status, served) = roundtrip(&mut stream, "GET", &path, "");
        assert_eq!(status, 200, "report failed: {served}");

        let batch = Study::new(spec.study_config()).run().expect("batch runs");
        let reference = report::to_json(&batch).expect("report serializes");
        assert_eq!(
            served, reference,
            "tenant '{}' diverges from its batch study",
            spec.id
        );
    }

    server.stop();
}
