//! Trace determinism: exported causal traces inherit the report's
//! purity contract — byte-identical JSONL for a fixed `(config, seed)`
//! at any `(workers, shards)` topology — and tracing itself is pure
//! observation: turning it on must not change a byte of the report.
//!
//! Also pins the metrics regression contract: two runs of the same
//! `(config, seed)` produce identical metrics snapshots modulo the
//! documented wall-clock allowlist below.

use doxing_repro::core::report::to_json;
use doxing_repro::core::study::{Study, StudyConfig};
use doxing_repro::engine::EngineConfig;
use doxing_repro::obs::{Registry, Snapshot, SAMPLE_ALL};
use std::sync::OnceLock;

const SEED: u64 = 0x7ACE_D0C5;

fn traced_config(workers: usize, shards: usize) -> StudyConfig {
    StudyConfig::builder()
        .scale(0.005)
        .seed(SEED)
        .engine(EngineConfig {
            workers,
            shards,
            ..EngineConfig::default()
        })
        .trace_sample(SAMPLE_ALL)
        .trace_capacity(1 << 20)
        .build()
}

/// One traced run: `(report JSON, trace JSONL)`.
fn run_traced(workers: usize, shards: usize) -> (String, String) {
    let study = Study::with_registry(traced_config(workers, shards), Registry::new());
    let report = study.run().expect("traced study runs");
    let json = to_json(&report).expect("report serializes");
    assert_eq!(
        study.tracer().dropped(),
        0,
        "capacity must hold every trace"
    );
    (json, study.tracer().export_jsonl())
}

/// The `(workers=1, shards=1)` traced run, computed once per binary.
fn reference() -> &'static (String, String) {
    static REF: OnceLock<(String, String)> = OnceLock::new();
    REF.get_or_init(|| run_traced(1, 1))
}

#[test]
fn trace_jsonl_is_byte_identical_across_topologies() {
    let (ref_json, ref_trace) = reference();
    assert!(
        !ref_trace.is_empty(),
        "sampling everything must trace something"
    );
    for (workers, shards) in [(1usize, 8usize), (4, 1), (4, 8)] {
        let (json, trace) = run_traced(workers, shards);
        assert_eq!(
            &trace, ref_trace,
            "traces (workers={workers}, shards={shards}) must be byte-identical"
        );
        assert_eq!(
            &json, ref_json,
            "report (workers={workers}, shards={shards}) must be byte-identical"
        );
    }
}

#[test]
fn tracing_never_changes_the_report() {
    let untraced = StudyConfig::builder().scale(0.005).seed(SEED).build();
    let report = Study::with_registry(untraced, Registry::new())
        .run()
        .expect("untraced study runs");
    let json = to_json(&report).expect("report serializes");
    assert_eq!(
        &json,
        &reference().0,
        "tracing every document must not perturb the report"
    );
}

#[test]
fn traces_cover_the_whole_pipeline_and_stay_redacted() {
    let (_, trace) = reference();
    for stage in [
        "\"collect\"",
        "\"classify\"",
        "\"route\"",
        "\"dedup\"",
        "\"commit\"",
        "\"monitor\"",
    ] {
        assert!(trace.contains(stage), "no {stage} hop in the export");
    }
    assert!(
        trace.contains("body=[redacted"),
        "collect hops must carry the redacted fingerprint"
    );
    assert!(
        !trace.contains("fb: "),
        "raw OSN references must never reach an exported trace"
    );
}

/// Metric names whose values depend on wall-clock scheduling, not on
/// `(config, seed)`: queue-depth gauges are sampled mid-flight,
/// stall/backpressure counters depend on how fast each thread drained,
/// and span histograms are durations. Everything else must reproduce
/// exactly.
const WALL_CLOCK_METRICS: &[&str] = &[
    "engine.queue.stalls",
    "engine.queue.stall_ns",
    "engine.queue.depth",
    "engine.queue.staged.depth",
    "engine.queue.verdicts.depth",
    "engine.queue.backpressure.stalls",
    "engine.queue.backpressure_ns",
];

fn is_wall_clock(name: &str) -> bool {
    WALL_CLOCK_METRICS.contains(&name) || name.ends_with(".queue_depth")
}

/// The deterministic projection of a snapshot: counters and gauges minus
/// the allowlist, span names with their observation *counts* only (the
/// durations are wall time), and the structured events verbatim.
fn deterministic_view(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        if !is_wall_clock(name) {
            out.push_str(&format!("counter {name}={v}\n"));
        }
    }
    for (name, v) in &snapshot.gauges {
        if !is_wall_clock(name) {
            out.push_str(&format!("gauge {name}={v}\n"));
        }
    }
    for (name, h) in &snapshot.spans {
        if !is_wall_clock(name) {
            out.push_str(&format!("span {name} count={}\n", h.count));
        }
    }
    out.push_str(&format!("events_dropped={}\n", snapshot.events_dropped));
    for e in &snapshot.events {
        out.push_str(&format!("event {e}\n"));
    }
    out
}

#[test]
fn metrics_reproduce_modulo_the_wall_clock_allowlist() {
    let run = || {
        let registry = Registry::new();
        let study = Study::with_registry(traced_config(4, 8), registry.clone());
        let report = study.run().expect("study runs");
        (
            to_json(&report).expect("report serializes"),
            deterministic_view(&registry.snapshot()),
            study.tracer().export_jsonl(),
        )
    };
    let (json_a, metrics_a, trace_a) = run();
    let (json_b, metrics_b, trace_b) = run();
    assert_eq!(json_a, json_b, "report must reproduce byte-for-byte");
    assert_eq!(
        trace_a, trace_b,
        "trace export must reproduce byte-for-byte"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metrics must reproduce modulo the documented wall-clock allowlist"
    );
    // Span *counts* being deterministic is the strong half of the claim:
    // every stage ran the same number of times.
    assert!(metrics_a.contains("span pipeline.stage.classify"));
}
