//! Live telemetry endpoint, driven the way `repro --telemetry` wires it:
//! a `Telemetry` server over a study's registry and tracer, scraped with
//! a plain `std::net::TcpStream` HTTP/1.1 client.

use doxing_repro::core::study::{Study, StudyConfig};
use doxing_repro::obs::{Registry, Telemetry, SAMPLE_ALL};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Minimal HTTP/1.1 request; returns the raw response (headers + body).
fn http_request(addr: &str, method: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn http_get(addr: &str, path: &str) -> String {
    http_request(addr, "GET", path)
}

#[test]
fn metrics_and_traces_endpoints_serve_a_finished_study() {
    let config = StudyConfig::builder()
        .scale(0.005)
        .seed(0x7E1E)
        .trace_sample(SAMPLE_ALL)
        .build();
    let registry = Registry::new();
    let study = Study::with_registry(config, registry.clone());
    let server = Telemetry::start("127.0.0.1:0", registry, study.tracer().clone())
        .expect("telemetry binds an ephemeral port");
    let addr = server.local_addr().to_string();

    study.run().expect("study runs");

    let metrics = http_get(&addr, "/metrics");
    assert!(
        metrics.starts_with("HTTP/1.1 200"),
        "bad /metrics status: {metrics}"
    );
    assert!(metrics.contains("application/json"));
    assert!(
        metrics.contains("\"snapshot\""),
        "missing snapshot: {metrics}"
    );
    assert!(
        metrics.contains("pipeline.funnel.collected"),
        "missing funnel counters"
    );
    assert!(metrics.contains("\"rates_per_s\""), "missing rolling rates");
    assert!(metrics.contains("\"trace\""), "missing trace gauges");

    // A second scrape exercises the rate window (deltas since last scrape).
    let again = http_get(&addr, "/metrics");
    assert!(again.starts_with("HTTP/1.1 200"));

    let traces = http_get(&addr, "/traces");
    assert!(
        traces.starts_with("HTTP/1.1 200"),
        "bad /traces status: {traces}"
    );
    assert!(traces.contains("\"traces\""));
    assert!(traces.contains("\"trace_id\""), "no sampled traces served");

    let missing = http_get(&addr, "/nope");
    assert!(
        missing.starts_with("HTTP/1.1 404"),
        "bad 404 status: {missing}"
    );

    // A known route hit with the wrong method is a 405 naming the
    // methods that would work — not a 404.
    let wrong_method = http_request(&addr, "POST", "/metrics");
    assert!(
        wrong_method.starts_with("HTTP/1.1 405"),
        "bad 405 status: {wrong_method}"
    );
    assert!(
        wrong_method.contains("Allow: GET"),
        "405 must carry Allow: {wrong_method}"
    );

    server.stop();
}
