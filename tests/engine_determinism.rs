//! Engine determinism: the sharded streaming engine must produce a report
//! byte-identical to the sequential reference pipeline, for every topology
//! and for more than one seed.
//!
//! This is the repo's contract that concurrency is an implementation
//! detail: `ExperimentReport` is a pure function of `(config, seed)` and
//! the worker/shard topology never leaks into it.

use doxing_repro::core::report::to_json;
use doxing_repro::core::study::{Study, StudyConfig};
use doxing_repro::engine::EngineConfig;
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

const SEEDS: [u64; 2] = [0xD0C5, 0x5EED_CAFE];

fn config(seed: u64, workers: usize, shards: usize) -> StudyConfig {
    StudyConfig::builder()
        .scale(0.005)
        .seed(seed)
        .engine(EngineConfig {
            workers,
            shards,
            ..EngineConfig::default()
        })
        .build()
}

/// The sequential reference report for `seed`, serialized. Computed once
/// per test binary — every topology is compared against it.
fn reference_json(seed: u64) -> String {
    static CACHE: OnceLock<Mutex<HashMap<u64, String>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(json) = cache.lock().unwrap().get(&seed) {
        return json.clone();
    }
    let r = Study::new(config(seed, 1, 1))
        .run_reference()
        .expect("reference study runs");
    let json = to_json(&r).expect("report serializes");
    cache.lock().unwrap().insert(seed, json.clone());
    json
}

fn assert_topology_matches_reference(workers: usize, shards: usize) {
    for seed in SEEDS {
        let r = Study::new(config(seed, workers, shards))
            .run()
            .expect("engine study runs");
        let json = to_json(&r).expect("report serializes");
        assert_eq!(
            json,
            reference_json(seed),
            "engine (workers={workers}, shards={shards}, seed={seed:#x}) \
             must be byte-identical to the sequential pipeline"
        );
    }
}

#[test]
fn single_worker_single_shard_matches_reference() {
    assert_topology_matches_reference(1, 1);
}

#[test]
fn single_worker_many_shards_matches_reference() {
    assert_topology_matches_reference(1, 8);
}

#[test]
fn many_workers_single_shard_matches_reference() {
    assert_topology_matches_reference(4, 1);
}

#[test]
fn many_workers_many_shards_matches_reference() {
    assert_topology_matches_reference(4, 8);
}
