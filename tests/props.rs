//! Property-based suites over the core data structures and invariants,
//! spanning crates (proptest).

use dox_textkit::hashing::fnv1a;
use dox_textkit::html::{decode_entities, html_to_text};
use dox_textkit::similarity::{hamming, jaccard, shingles, simhash};
use dox_textkit::sparse::SparseVec;
use dox_textkit::tokenize::Tokenizer;
use doxing_repro::core::dedup::Deduplicator;
use doxing_repro::extract::fields::{extract_emails, extract_phones, extract_ssns};
use doxing_repro::extract::record::extract;
use doxing_repro::geo::ip::find_ipv4_literals;
use doxing_repro::ml::metrics::ClassificationReport;
use doxing_repro::ml::split::{kfold, stratified_split, train_test_split};
use proptest::prelude::*;

proptest! {
    // ---------- tokenizer ----------

    #[test]
    fn tokens_respect_min_length_and_charset(text in ".{0,300}") {
        let t = Tokenizer::sklearn_default();
        for tok in t.tokenize(&text) {
            prop_assert!(tok.chars().count() >= 2);
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric() || c == '_'));
            prop_assert_eq!(tok.to_lowercase(), tok.clone());
        }
    }

    #[test]
    fn tokenization_is_deterministic(text in ".{0,200}") {
        let t = Tokenizer::sklearn_default();
        prop_assert_eq!(t.tokenize(&text), t.tokenize(&text));
    }

    // ---------- sparse vectors ----------

    #[test]
    fn sparse_invariants_hold(pairs in proptest::collection::vec((0u32..500, -10.0f64..10.0), 0..60)) {
        let v = SparseVec::from_pairs(pairs);
        prop_assert!(v.check_invariants());
    }

    #[test]
    fn sparse_dot_is_symmetric(
        a in proptest::collection::vec((0u32..100, -5.0f64..5.0), 0..30),
        b in proptest::collection::vec((0u32..100, -5.0f64..5.0), 0..30),
    ) {
        let (va, vb) = (SparseVec::from_pairs(a), SparseVec::from_pairs(b));
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-9);
    }

    #[test]
    fn sparse_dot_matches_dense(
        a in proptest::collection::vec((0u32..64, -5.0f64..5.0), 0..30),
        b in proptest::collection::vec((0u32..64, -5.0f64..5.0), 0..30),
    ) {
        let (va, vb) = (SparseVec::from_pairs(a), SparseVec::from_pairs(b));
        let mut dense = vec![0.0f64; 64];
        vb.axpy_into(1.0, &mut dense);
        prop_assert!((va.dot(&vb) - va.dot_dense(&dense)).abs() < 1e-9);
    }

    #[test]
    fn l2_normalize_yields_unit_or_zero(
        pairs in proptest::collection::vec((0u32..100, -5.0f64..5.0), 0..30),
    ) {
        let mut v = SparseVec::from_pairs(pairs);
        v.l2_normalize();
        let n = v.l2_norm();
        prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-9, "norm {}", n);
    }

    // ---------- hashing / similarity ----------

    #[test]
    fn fnv_is_stable_and_sensitive(s in ".{0,64}") {
        prop_assert_eq!(fnv1a(s.as_bytes()), fnv1a(s.as_bytes()));
        let mut extended = s.clone();
        extended.push('x');
        prop_assert_ne!(fnv1a(s.as_bytes()), fnv1a(extended.as_bytes()));
    }

    #[test]
    fn jaccard_bounded_and_reflexive(text in "[a-z ]{0,200}") {
        let s = shingles(&text, 3);
        prop_assert_eq!(jaccard(&s, &s), 1.0);
    }

    #[test]
    fn simhash_identical_texts_distance_zero(text in ".{0,200}") {
        prop_assert_eq!(hamming(simhash(&text), simhash(&text)), 0);
    }

    // ---------- html ----------

    #[test]
    fn html_to_text_strips_all_tags(body in "[a-zA-Z0-9 .,]{0,120}") {
        let html = format!("<div><b>{body}</b><br><ul><li>{body}</li></ul></div>");
        let text = html_to_text(&html);
        prop_assert!(!text.contains('<'));
        prop_assert!(!text.contains('>'));
    }

    #[test]
    fn entity_escape_roundtrip(s in "[a-zA-Z0-9&<> ']{0,100}") {
        let escaped = s
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
            .replace('\'', "&#39;");
        prop_assert_eq!(decode_entities(&escaped), s);
    }

    #[test]
    fn html_to_text_never_panics(html in ".{0,400}") {
        let _ = html_to_text(&html);
    }

    // ---------- extractors ----------

    #[test]
    fn extract_never_panics_on_arbitrary_text(text in ".{0,500}") {
        let _ = extract(&text);
    }

    #[test]
    fn phones_are_always_ten_digits(text in ".{0,300}") {
        for p in extract_phones(&text) {
            prop_assert_eq!(p.len(), 10);
            prop_assert!(p.bytes().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn known_phone_always_found(area in 200u32..999, mid in 100u32..999, last in 0u32..9999) {
        let text = format!("call ({area}) {mid}-{last:04} now");
        let phones = extract_phones(&text);
        prop_assert_eq!(phones, vec![format!("{area}{mid}{last:04}")]);
    }

    #[test]
    fn extracted_emails_contain_at(text in ".{0,300}") {
        for e in extract_emails(&text) {
            prop_assert!(e.contains('@'));
            prop_assert_eq!(e.to_lowercase(), e.clone());
        }
    }

    #[test]
    fn extracted_ssns_have_shape(text in ".{0,200}") {
        for s in extract_ssns(&text) {
            let parts: Vec<&str> = s.split('-').collect();
            prop_assert_eq!(parts.len(), 3);
            prop_assert_eq!((parts[0].len(), parts[1].len(), parts[2].len()), (3, 2, 4));
        }
    }

    #[test]
    fn found_ips_appear_in_input(a in 1u8..=254, b in 0u8..=255, c in 0u8..=255, d in 1u8..=254) {
        let text = format!("addr {a}.{b}.{c}.{d} end");
        let found = find_ipv4_literals(&text);
        prop_assert_eq!(found.len(), 1);
        prop_assert_eq!(found[0].1.octets(), [a, b, c, d]);
    }

    // ---------- dedup ----------

    #[test]
    fn repeating_a_body_is_always_exact_duplicate(body in ".{1,200}") {
        let mut d = Deduplicator::new();
        let rec = extract(&body);
        prop_assert!(d.check(1, &body, &rec).is_none());
        let dup = d.check(2, &body, &rec);
        prop_assert!(matches!(
            dup,
            Some((doxing_repro::core::dedup::DuplicateKind::ExactBody, 1))
        ));
        prop_assert_eq!(d.counts.unique(), 1);
    }

    // ---------- engine shard routing ----------

    // Two documents sharing an account-set signature must never land on
    // different dedup shards — otherwise §3.1.4 account-set dedup would
    // miss cross-shard duplicates. Routing depends only on the signature,
    // for any shard count, no matter how the body text differs.
    #[test]
    fn shard_routing_never_splits_an_account_set(
        handle in "[a-z_][a-z0-9_]{2,14}",
        body_a in ".{0,200}",
        body_b in ".{0,200}",
        shards in 1usize..32,
    ) {
        use doxing_repro::engine::dedup::{shard_of, shard_signature};
        let text_a = format!("{body_a}\ntwitter: @{handle}\n");
        let text_b = format!("{body_b}\ninsta is {handle}\ntwitter: @{handle}\n");
        let rec_a = extract(&text_a);
        let rec_b = extract(&text_b);
        // Only comparable when extraction found the same account set (the
        // arbitrary body text can itself mention accounts).
        if !rec_a.account_set_key().is_empty()
            && rec_a.account_set_key() == rec_b.account_set_key()
        {
            let sig_a = shard_signature(&text_a, &rec_a);
            let sig_b = shard_signature(&text_b, &rec_b);
            prop_assert_eq!(sig_a, sig_b, "signature must ignore non-account text");
            prop_assert_eq!(shard_of(sig_a, shards), shard_of(sig_b, shards));
            prop_assert!(shard_of(sig_a, shards) < shards);
        }
    }

    #[test]
    fn shard_of_is_total_and_stable(sig in any::<u64>(), shards in 1usize..64) {
        use doxing_repro::engine::dedup::shard_of;
        let s = shard_of(sig, shards);
        prop_assert!(s < shards);
        prop_assert_eq!(s, shard_of(sig, shards));
    }

    // ---------- splits ----------

    #[test]
    fn train_test_split_partitions(n in 0usize..200, frac in 0.0f64..1.0, seed in 0u64..50) {
        let (train, test) = train_test_split(n, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n);
    }

    #[test]
    fn stratified_split_partitions(labels in proptest::collection::vec(any::<bool>(), 0..150), seed in 0u64..20) {
        let (train, test) = stratified_split(&labels, 2.0 / 3.0, seed);
        prop_assert_eq!(train.len() + test.len(), labels.len());
    }

    #[test]
    fn kfold_each_index_tested_once(n in 4usize..60, seed in 0u64..20) {
        let k = 4;
        let folds = kfold(n, k, seed);
        let mut seen = vec![0usize; n];
        for (_, test) in &folds {
            for &i in test {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    // ---------- pastebin scrape pagination ----------

    #[test]
    fn scrape_pages_partition_the_listing(
        n in 0u64..120,
        limit in 1usize..40,
        since_day in 0u64..50,
    ) {
        use doxing_repro::osn::clock::SimTime;
        use doxing_repro::sites::pastebin::SimPastebin;
        let mut pb = SimPastebin::new();
        for i in 0..n {
            pb.post(i, SimTime::from_days(i), None);
        }
        let since = SimTime::from_days(since_day);
        let mut seen = Vec::new();
        let mut cursor = None;
        loop {
            let (page, next) = pb.scrape_page(since, cursor, limit);
            prop_assert!(page.len() <= limit);
            seen.extend(page.iter().map(|p| p.id));
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        let expected: Vec<u64> = (since_day.min(n)..n).collect();
        prop_assert_eq!(seen, expected);
    }

    // ---------- subtle detector ----------

    #[test]
    fn pii_kinds_bounded(text in ".{0,300}") {
        let kinds = doxing_repro::core::subtle::pii_kinds(&extract(&text));
        prop_assert!(kinds <= 11);
    }

    // ---------- metrics ----------

    #[test]
    fn metric_values_bounded(
        pred in proptest::collection::vec(any::<bool>(), 1..80),
    ) {
        let actual: Vec<bool> = pred.iter().map(|&b| !b).collect();
        for labels in [&pred, &actual] {
            let r = ClassificationReport::from_labels(&pred, labels);
            for m in [r.dox, r.not, r.weighted] {
                prop_assert!((0.0..=1.0).contains(&m.precision));
                prop_assert!((0.0..=1.0).contains(&m.recall));
                prop_assert!((0.0..=1.0).contains(&m.f1));
            }
            prop_assert!((0.0..=1.0).contains(&r.accuracy));
        }
    }
}
