//! End-to-end integration: the full study across every crate, checked for
//! internal consistency.

use doxing_repro::core::report;
use doxing_repro::core::study::{ExperimentReport, Study, StudyConfig};
use doxing_repro::osn::network::Network;
use std::sync::OnceLock;

/// One shared run per test binary (the study is deterministic).
fn report() -> &'static ExperimentReport {
    static R: OnceLock<ExperimentReport> = OnceLock::new();
    R.get_or_init(|| {
        Study::new(StudyConfig::test_scale())
            .run()
            .expect("test-scale study runs")
    })
}

#[test]
fn funnel_is_internally_consistent() {
    let r = report();
    // Figure 1: totals add up across periods and sources.
    assert_eq!(
        r.pipeline.total,
        r.pipeline.per_period[0] + r.pipeline.per_period[1]
    );
    assert_eq!(
        r.pipeline.total,
        r.pipeline.per_source.values().sum::<u64>()
    );
    // Dox funnel: classified ≥ unique ≥ 0; duplicates split correctly.
    assert!(r.pipeline.classified_dox >= r.pipeline.unique_doxes());
    assert_eq!(
        r.pipeline.classified_dox - r.pipeline.unique_doxes(),
        r.pipeline.exact_duplicates + r.pipeline.account_set_duplicates
    );
}

#[test]
fn table4_rows_are_consistent_with_funnel() {
    let r = report();
    for period in [1u8, 2] {
        let i = usize::from(period - 1);
        assert!(r.pipeline.dox_per_period[i] <= r.pipeline.per_period[i]);
        assert!(r.pipeline.unique_in_period(period) <= r.pipeline.dox_per_period[i]);
        assert!(r.labeled_per_period[i] as u64 <= r.pipeline.dox_per_period[i]);
    }
}

#[test]
fn detection_matches_ground_truth_shape() {
    let r = report();
    let (tp, fp) = r.detection;
    assert!(tp > 0, "pipeline must find doxes");
    // True positives cannot exceed generated doxes.
    assert!(tp <= r.truth_total_doxes);
    // Precision well above coin-flip (paper: 0.81).
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    assert!(precision > 0.6, "precision {precision}");
    // Recall in a sane band (paper: 0.89).
    let recall = tp as f64 / r.truth_total_doxes as f64;
    assert!(recall > 0.7, "recall {recall}");
}

#[test]
fn classifier_report_shape_matches_paper() {
    let r = report();
    // Table 1: the "Not" class outperforms the rare "Dox" class.
    assert!(r.classifier.report.not.f1 >= r.classifier.report.dox.f1);
    assert!(r.classifier.report.dox.f1 > 0.7);
    assert_eq!(
        r.classifier.report.dox.support + r.classifier.report.not.support,
        r.classifier.split_sizes.1
    );
}

#[test]
fn extractor_accuracy_table_is_complete() {
    let r = report();
    use doxing_repro::extract::accuracy::Field;
    for field in Field::ALL {
        let s = &r.extractor.scores[&field];
        assert_eq!(s.total, 125, "{field:?} scored over the 125-dox sample");
        assert!(s.correct <= s.total);
        assert!(s.present <= s.total);
    }
    // Table 2 shape: network extraction beats free-form name extraction.
    let insta = r.extractor.scores[&Field::Instagram].accuracy();
    assert!(insta > 0.8, "Instagram extraction accuracy {insta}");
}

#[test]
fn monitored_accounts_resolve_only_on_profile_networks() {
    let r = report();
    assert!(!r.monitored_per_network.contains_key(&Network::Skype));
    let total: usize = r.monitored_per_network.values().sum();
    assert!(total > 0);
}

#[test]
fn osn_presence_is_bounded_by_dox_count() {
    let r = report();
    for net in Network::ALL {
        assert!(r.osn_presence.count(net) <= r.osn_presence.total_doxes);
    }
    assert_eq!(r.osn_presence.total_doxes as u64, r.pipeline.classified_dox);
}

#[test]
fn labeled_analyses_agree_on_sample_size() {
    let r = report();
    let n = r.labeled_per_period[0] + r.labeled_per_period[1];
    assert_eq!(r.demographics.total, n);
    assert_eq!(r.content.total, n);
    assert_eq!(r.community.total, n);
    assert_eq!(r.motivation.total, n);
}

#[test]
fn demographics_within_generator_bands() {
    let r = report();
    let d = &r.demographics;
    // Table 5 bands (loose: the labeled sample is small at test scale).
    assert!(d.min_age >= 10);
    assert!(d.max_age <= 74);
    assert!(
        d.mean_age > 15.0 && d.mean_age < 30.0,
        "mean age {}",
        d.mean_age
    );
    assert!(d.male > d.female, "male share dominates (Table 5)");
    assert!(d.primary_country > 0.4, "USA share {}", d.primary_country);
}

#[test]
fn content_table_orderings_match_table6() {
    let r = report();
    let frac = |label: &str| r.content.row(label).expect(label).fraction;
    // Address is the most common category; SSN among the rarest.
    assert!(frac("Address (any)") > 0.7);
    assert!(frac("Address (any)") >= frac("Address (zip)"));
    assert!(frac("Phone Number") > frac("Social Security #"));
    assert!(frac("IP Address") > frac("Criminal Records"));
}

#[test]
fn motivations_justice_and_revenge_dominate() {
    let r = report();
    // Table 8: justice > revenge > competitive/political.
    assert!(r.motivation.justice + r.motivation.revenge >= r.motivation.competitive);
    assert!(r.motivation.with_motivation() <= r.motivation.total);
    let share = r.motivation.fraction(r.motivation.with_motivation());
    assert!(share > 0.1 && share < 0.5, "motivation share {share}");
}

#[test]
fn ip_validation_mostly_consistent() {
    let r = report();
    let v = &r.ip_validation;
    assert!(v.sampled > 0);
    assert!(v.with_both <= v.sampled);
    if v.with_both >= 10 {
        // §4.1 shape: the overwhelming majority are same-state matches.
        let close = v.summary.close_or_exact() as f64 / v.with_both as f64;
        assert!(close > 0.6, "close share {close} of {}", v.with_both);
    }
}

#[test]
fn active_control_is_a_subset_with_hotter_churn_rate() {
    let r = report();
    let all = &r.control_row;
    let active = &r.control_row_active;
    assert!(active.total <= all.total);
    assert!(active.total > 0, "some control accounts are active");
    assert!(active.any_change <= all.any_change);
    // The §6.2.1 point: conditioning on activity can only raise (or keep)
    // the churn *rate*; with zero observed changes both are zero.
    if all.any_change > 0 {
        assert!(
            active.frac_any_change() >= all.frac_any_change() * 0.5,
            "active rate should not collapse: {active:?} vs {all:?}"
        );
    }
}

#[test]
fn comments_have_no_cross_account_commenters() {
    let r = report();
    assert_eq!(r.comments.cross_account_commenters, 0);
    assert!(r.comments.distinct_commenters <= r.comments.total_comments);
}

#[test]
fn full_report_renders_and_serializes() {
    let r = report();
    let text = report::full_report(r);
    assert!(text.len() > 2000, "report should be substantial");
    let json = report::to_json(r).expect("report serializes");
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(parsed["pipeline"]["total"].as_u64(), Some(r.pipeline.total));
}
