//! Determinism: a study run is a pure function of `(config, seed)`.

use doxing_repro::core::report::to_json;
use doxing_repro::core::study::{Study, StudyConfig};

#[test]
fn same_seed_same_report() {
    let a = Study::new(StudyConfig::test_scale()).run();
    let b = Study::new(StudyConfig::test_scale()).run();
    assert_eq!(to_json(&a), to_json(&b), "study must be fully deterministic");
}

#[test]
fn different_seed_different_report() {
    let mut cfg = StudyConfig::test_scale();
    cfg.seed ^= 0xFF;
    cfg.synth.seed = cfg.seed;
    let a = Study::new(StudyConfig::test_scale()).run();
    let b = Study::new(cfg).run();
    assert_ne!(
        to_json(&a),
        to_json(&b),
        "a different seed must change the realized corpus"
    );
    // …but not the configured volumes.
    assert_eq!(a.pipeline.total, b.pipeline.total);
}
