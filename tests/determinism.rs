//! Determinism: a study run is a pure function of `(config, seed)`.

use doxing_repro::core::report::to_json;
use doxing_repro::core::study::{Study, StudyConfig};
use doxing_repro::obs::Registry;

fn json(r: &doxing_repro::core::study::ExperimentReport) -> String {
    to_json(r).expect("report serializes")
}

#[test]
fn same_seed_same_report() {
    let a = Study::new(StudyConfig::test_scale()).run().expect("runs");
    let b = Study::new(StudyConfig::test_scale()).run().expect("runs");
    assert_eq!(json(&a), json(&b), "study must be fully deterministic");
}

#[test]
fn different_seed_different_report() {
    let mut cfg = StudyConfig::test_scale();
    cfg.seed ^= 0xFF;
    cfg.synth.seed = cfg.seed;
    let a = Study::new(StudyConfig::test_scale()).run().expect("runs");
    let b = Study::new(cfg).run().expect("runs");
    assert_ne!(
        json(&a),
        json(&b),
        "a different seed must change the realized corpus"
    );
    // …but not the configured volumes.
    assert_eq!(a.pipeline.total, b.pipeline.total);
}

/// Metrics observe the study without participating in it: the report must
/// be byte-identical whether spans/counters go to the process-global
/// registry or to a private one, and the private registry must actually
/// have recorded the pipeline funnel.
#[test]
fn metrics_collection_never_changes_the_report() {
    let baseline = Study::new(StudyConfig::test_scale()).run().expect("runs");

    let registry = Registry::new();
    let observed = Study::with_registry(StudyConfig::test_scale(), registry.clone())
        .run()
        .expect("runs");

    assert_eq!(
        json(&baseline),
        json(&observed),
        "recording metrics must not perturb the deterministic report"
    );

    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counters["pipeline.funnel.collected"],
        observed.pipeline.total
    );
    for stage in [
        "pipeline.stage.html_convert",
        "pipeline.stage.classify",
        "pipeline.stage.extract",
        "pipeline.stage.dedup",
    ] {
        assert!(
            snapshot.spans.contains_key(stage),
            "missing span {stage:?} in snapshot"
        );
    }
}
