//! # doxing-repro
//!
//! A full reproduction of *"Fifteen Minutes of Unwanted Fame: Detecting and
//! Characterizing Doxing"* (Snyder, Doerfler, Kanich, McCoy — IMC 2017) as a
//! Rust workspace.
//!
//! This façade crate re-exports every subsystem so that downstream users (and
//! the runnable examples in `examples/`) can depend on a single crate:
//!
//! - [`textkit`] — tokenization, HTML→text, sparse vectors, TF-IDF.
//! - [`ml`] — SGD linear classifiers, baselines, evaluation metrics.
//! - [`geo`] — synthetic geography, geo-IP, postal geocoding, consistency.
//! - [`synth`] — synthetic persona / dox / paste corpus generation.
//! - [`osn`] — simulated online social network platforms and scraping.
//! - [`sites`] — simulated paste sites (pastebin-like, chan-like boards).
//! - [`extract`] — OSN account, sensitive-field and credit extraction.
//! - [`engine`] — the sharded streaming ingest engine.
//! - [`core`] — the end-to-end measurement pipeline, analyses and reports.
//! - [`obs`] — metrics, span timing and structured events (dependency-free).
//! - [`serve`] — the continuous-ingest service daemon and its HTTP API.
//!
//! ## Quickstart
//!
//! ```
//! use doxing_repro::core::prelude::*;
//!
//! // A miniature end-to-end run of the paper's measurement study.
//! let cfg = StudyConfig::test_scale();
//! let report = Study::new(cfg).run().expect("study runs");
//! assert!(report.pipeline.total > 0);
//! ```

pub use dox_core as core;
pub use dox_engine as engine;
pub use dox_extract as extract;
pub use dox_fault as fault;
pub use dox_geo as geo;
pub use dox_ml as ml;
pub use dox_obs as obs;
pub use dox_osn as osn;
pub use dox_serve as serve;
pub use dox_sites as sites;
pub use dox_store as store;
pub use dox_synth as synth;
pub use dox_textkit as textkit;
