//! The collection client.
//!
//! Stage one of the measurement pipeline (paper §3.1.1, Figure 1): gather
//! every document posted to the monitored sites during a collection
//! period. [`Collector`] wraps the generator-to-hub flow, stamps each
//! document with a collection time (posting time plus a small scrape
//! latency), and keeps per-source counters — the numbers Figure 1 and
//! Table 4 report.

use crate::hub::SiteHub;
use dox_fault::{
    run_op, BreakerConfig, BreakerSet, CoverageGaps, FaultDomain, FaultPlan, FaultPlanConfig,
    FaultStats, RetryPolicy,
};
use dox_obs::trace::{fault_hop, hop};
use dox_obs::{redact, Histogram, Registry, Tracer};
use dox_osn::clock::{SimDuration, SimTime};
use dox_synth::corpus::{CorpusGenerator, Source, SynthDoc};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::time::Instant;

/// One collected document as the pipeline sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedDoc {
    /// The underlying document (body, source, truth).
    pub doc: SynthDoc,
    /// When the collector fetched it.
    pub collected_at: SimTime,
}

// The vendored serde cannot derive `Deserialize`; `dox-serve`'s ingest
// endpoint round-trips collected documents by hand, mirroring the
// derive's Serialize encoding.
impl serde::Deserialize for CollectedDoc {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        Some(CollectedDoc {
            doc: SynthDoc::from_value(value.get("doc")?)?,
            collected_at: SimTime::from_value(value.get("collected_at")?)?,
        })
    }
}

/// Per-source collection counters (Figure 1 input volumes).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionStats {
    counts: BTreeMap<Source, u64>,
}

impl CollectionStats {
    /// Documents collected from `source`.
    pub fn count(&self, source: Source) -> u64 {
        self.counts.get(&source).copied().unwrap_or(0)
    }

    /// Total documents collected.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    fn bump(&mut self, source: Source) {
        *self.counts.entry(source).or_insert(0) += 1;
    }
}

/// Fault machinery for a collector: the seeded plan, the retry policy,
/// one circuit breaker per source, and the running tally of what the
/// weather cost.
struct CollectorFaults {
    plan: FaultPlan,
    policy: RetryPolicy,
    breakers: BreakerSet,
    stats: FaultStats,
    gaps: CoverageGaps,
}

/// The collection client: drives the generator, feeds the hub, emits
/// [`CollectedDoc`]s to a sink.
///
/// A collector built with [`Collector::with_faults`] simulates the
/// unreliable fetch boundary the paper's crawlers faced: each document
/// fetch runs through a seeded [`FaultPlan`] with retry/backoff and a
/// per-source circuit breaker, all in virtual time. Recovered fetches
/// deliver the document unchanged (same `collected_at`, so downstream
/// output stays byte-identical); exhausted fetches surface in
/// [`Collector::coverage_gaps`] — never as silent drops. The hub ingests
/// every generated document either way: the *site* saw the post, only the
/// collector missed it.
pub struct Collector {
    hub: SiteHub,
    stats_p1: CollectionStats,
    stats_p2: CollectionStats,
    faults: Option<CollectorFaults>,
    tracer: Tracer,
    retry_wait: Option<Histogram>,
    /// Scrape latency added to each document's posting time.
    pub scrape_latency: SimDuration,
}

impl Collector {
    /// Create a collector with a fresh [`SiteHub`].
    pub fn new(seed: u64) -> Self {
        Self {
            hub: SiteHub::new(seed),
            stats_p1: CollectionStats::default(),
            stats_p2: CollectionStats::default(),
            faults: None,
            tracer: Tracer::disabled(),
            retry_wait: None,
            scrape_latency: SimDuration(5),
        }
    }

    /// Attach observability: sampled documents are admitted to `tracer`
    /// with a `collect` hop (the head of their causal trace), and the wall
    /// time spent inside the retry/backoff shim lands in the registry's
    /// `pipeline.stage.retry_wait` histogram — the stderr profile row that
    /// answers "how much time went to fault weather".
    pub fn instrument(&mut self, registry: &Registry, tracer: &Tracer) {
        self.retry_wait = Some(registry.histogram("pipeline.stage.retry_wait"));
        self.tracer = tracer.clone();
    }

    /// Create a collector whose fetches run through a fault plan.
    pub fn with_faults(
        seed: u64,
        plan: FaultPlanConfig,
        policy: RetryPolicy,
        breaker: BreakerConfig,
    ) -> Self {
        let mut collector = Self::new(seed);
        collector.faults = Some(CollectorFaults {
            plan: FaultPlan::new(plan),
            policy,
            breakers: BreakerSet::new(breaker),
            stats: FaultStats::default(),
            gaps: CoverageGaps::default(),
        });
        collector
    }

    /// Collect one period end-to-end: generate, ingest into the sites,
    /// emit collected documents in order.
    ///
    /// The sink controls the stream: returning
    /// [`ControlFlow::Break`] stops collection immediately (the document
    /// that triggered the break has already been ingested into the hub
    /// and counted). The same `Break` is returned to the caller.
    ///
    /// # Panics
    /// Panics if `which` is not 1 or 2.
    pub fn collect_period(
        &mut self,
        gen: &mut CorpusGenerator<'_>,
        which: u8,
        sink: &mut dyn FnMut(CollectedDoc) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        assert!(which == 1 || which == 2, "periods are 1 and 2");
        let hub = &mut self.hub;
        let stats = if which == 1 {
            &mut self.stats_p1
        } else {
            &mut self.stats_p2
        };
        let latency = self.scrape_latency;
        let faults = &mut self.faults;
        let tracer = &self.tracer;
        let retry_wait = &self.retry_wait;
        gen.generate_period(which, &mut |doc| {
            hub.ingest(&doc);
            let collected_at = doc.posted_at + latency;
            if let Some(f) = faults.as_mut() {
                let source = doc.source.name();
                // dox-lint:allow(determinism) wall time inside the backoff shim; profile only
                let wait_start = Instant::now();
                let fetched = run_op(
                    &f.plan,
                    &f.policy,
                    Some(f.breakers.breaker(source)),
                    &mut f.stats,
                    FaultDomain::Collect,
                    source,
                    doc.id,
                    collected_at.0,
                );
                if let Some(h) = retry_wait {
                    h.observe_duration(wait_start.elapsed());
                }
                match fetched {
                    Err(_) => {
                        // The site has the post; the collector missed it.
                        // Count the gap and move on — the document is not
                        // delivered.
                        f.gaps.record_missed_collection(source);
                        return ControlFlow::Continue(());
                    }
                    Ok(outcome) => {
                        if tracer.sampled(doc.id) {
                            // The generator is single-threaded, so trace
                            // admission order here is exactly document
                            // order — deterministic buffer occupancy.
                            tracer.begin(
                                doc.id,
                                fault_hop(
                                    "collect",
                                    collected_at.0,
                                    outcome.attempts,
                                    outcome.delay,
                                    outcome.breaker_trips,
                                    format!("source={source} body={}", redact(&doc.body)),
                                ),
                            );
                        }
                    }
                }
            } else if tracer.sampled(doc.id) {
                tracer.begin(
                    doc.id,
                    hop(
                        "collect",
                        collected_at.0,
                        format!("source={} body={}", doc.source.name(), redact(&doc.body)),
                    ),
                );
            }
            stats.bump(doc.source);
            sink(CollectedDoc { doc, collected_at })
        })
    }

    /// Per-source counters for a period.
    pub fn stats(&self, which: u8) -> &CollectionStats {
        if which == 1 {
            &self.stats_p1
        } else {
            &self.stats_p2
        }
    }

    /// The underlying sites (deletion surveys, board inspection).
    pub fn hub(&self) -> &SiteHub {
        &self.hub
    }

    /// Retry/fault accounting, with the breaker transition totals folded
    /// in. All zeros for a fault-free collector.
    pub fn fault_stats(&self) -> FaultStats {
        let Some(f) = &self.faults else {
            return FaultStats::default();
        };
        let mut stats = f.stats;
        let transitions = f.breakers.total_transitions();
        stats.breaker_opens = transitions.opened;
        stats.breaker_half_opens = transitions.half_opened;
        stats.breaker_closes = transitions.closed;
        stats
    }

    /// Documents the collector failed to fetch, per source. Empty for a
    /// fault-free collector and for any plan whose faults all recovered.
    pub fn coverage_gaps(&self) -> CoverageGaps {
        self.faults
            .as_ref()
            .map(|f| f.gaps.clone())
            .unwrap_or_default()
    }

    /// The per-source circuit breakers, target-ordered; `None` for a
    /// fault-free collector.
    pub fn breakers(&self) -> Option<&BreakerSet> {
        self.faults.as_ref().map(|f| &f.breakers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_geo::alloc::{AllocConfig, Allocation};
    use dox_geo::model::{World, WorldConfig};
    use dox_synth::config::SynthConfig;

    fn setup() -> (World, Allocation, SynthConfig) {
        let world = World::generate(&WorldConfig::default(), 9);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 9);
        (world, alloc, SynthConfig::test_scale())
    }

    #[test]
    fn counters_match_config_volumes() {
        let (world, alloc, config) = setup();
        let p1_total = config.period1.total();
        let p2_total = config.period2.total();
        let p2_chan_b = config.period2.chan4_b.total;
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let mut collector = Collector::new(9);
        let mut n = 0u64;
        let _ = collector.collect_period(&mut gen, 1, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        let _ = collector.collect_period(&mut gen, 2, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(collector.stats(1).total(), p1_total);
        assert_eq!(collector.stats(2).total(), p2_total);
        assert_eq!(collector.stats(2).count(Source::Chan4B), p2_chan_b);
        assert_eq!(n, p1_total + p2_total);
    }

    #[test]
    fn collection_time_trails_posting_time() {
        let (world, alloc, config) = setup();
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let mut collector = Collector::new(9);
        let _ = collector.collect_period(&mut gen, 1, &mut |c| {
            assert_eq!(c.collected_at.0, c.doc.posted_at.0 + 5);
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn sink_break_stops_collection_early() {
        let (world, alloc, config) = setup();
        let total = config.period1.total();
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let mut collector = Collector::new(9);
        let mut n = 0u64;
        let flow = collector.collect_period(&mut gen, 1, &mut |_| {
            n += 1;
            if n == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(n, 3);
        assert!(
            collector.stats(1).total() < total,
            "collection stopped early"
        );
        assert_eq!(
            collector.stats(1).total(),
            3,
            "counted exactly what reached the sink"
        );
    }

    fn collect_all(collector: &mut Collector, config: SynthConfig) -> Vec<CollectedDoc> {
        let (world, alloc, _) = setup();
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let mut docs = Vec::new();
        for which in [1, 2] {
            let _ = collector.collect_period(&mut gen, which, &mut |c| {
                docs.push(c);
                ControlFlow::Continue(())
            });
        }
        docs
    }

    #[test]
    fn recovered_faults_deliver_an_identical_stream() {
        let (_, _, config) = setup();
        let mut clean = Collector::new(9);
        let baseline = collect_all(&mut clean, config.clone());

        // Heavy transient weather, but every fault recovers within the
        // default retry budget.
        let plan = FaultPlanConfig {
            transient_ppm: 300_000,
            max_transient_failures: 2,
            ..FaultPlanConfig::default()
        };
        let mut faulty = Collector::with_faults(
            9,
            plan,
            RetryPolicy::default(),
            dox_fault::BreakerConfig::default(),
        );
        let recovered = collect_all(&mut faulty, config);
        assert_eq!(recovered, baseline, "recovery must not change the stream");
        assert!(faulty.fault_stats().retries > 0, "weather actually blew");
        assert!(faulty.coverage_gaps().is_empty());
    }

    #[test]
    fn exhausted_fetches_become_coverage_gaps_not_silent_drops() {
        let (_, _, config) = setup();
        let total = config.total_documents();
        let plan = FaultPlanConfig {
            hard_ppm: 100_000, // ~10% of fetches permanently fail
            ..FaultPlanConfig::default()
        };
        let mut collector = Collector::with_faults(
            9,
            plan,
            RetryPolicy::default(),
            dox_fault::BreakerConfig::default(),
        );
        let delivered = collect_all(&mut collector, config).len() as u64;
        let gaps = collector.coverage_gaps();
        assert!(gaps.missed_collection_total() > 0, "hard faults must bite");
        assert_eq!(
            delivered + gaps.missed_collection_total(),
            total,
            "every generated document is either delivered or an explicit gap"
        );
        assert_eq!(
            collector.hub().total_ingested() as u64,
            total,
            "the sites saw every post even when the collector missed it"
        );
        assert!(collector.fault_stats().exhausted > 0);
    }

    #[test]
    fn instrumented_collector_traces_fetches_and_times_the_shim() {
        use dox_obs::TraceConfig;
        let (_, _, config) = setup();
        let plan = FaultPlanConfig {
            transient_ppm: 300_000,
            max_transient_failures: 2,
            ..FaultPlanConfig::default()
        };
        let mut collector = Collector::with_faults(
            9,
            plan,
            RetryPolicy::default(),
            dox_fault::BreakerConfig::default(),
        );
        let registry = Registry::new();
        let tracer = Tracer::new(TraceConfig {
            seed: 9,
            sample_ppm: dox_obs::SAMPLE_ALL,
            capacity: 1 << 20,
        });
        collector.instrument(&registry, &tracer);
        let delivered = collect_all(&mut collector, config).len() as u64;
        assert_eq!(tracer.admitted(), delivered, "every delivered doc traced");
        let traces = tracer.recent(usize::MAX);
        assert!(traces
            .iter()
            .all(|t| t.hops.first().is_some_and(|h| h.stage == "collect")));
        assert!(
            traces
                .iter()
                .any(|t| t.hops.first().is_some_and(|h| h.attempts > 1)),
            "heavy transient weather must surface retry attempts in hops"
        );
        assert!(
            traces
                .iter()
                .all(|t| t.hops.iter().all(|h| h.note.contains("body=[redacted"))),
            "hop notes carry the redacted fingerprint, never the body"
        );
        let shim = registry.snapshot();
        let retry_wait = &shim.spans["pipeline.stage.retry_wait"];
        assert_eq!(retry_wait.count, collector.fault_stats().ops);
    }

    #[test]
    fn hub_sees_every_document() {
        let (world, alloc, config) = setup();
        let total = config.total_documents() as usize;
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let mut collector = Collector::new(9);
        let _ = collector.collect_period(&mut gen, 1, &mut |_| ControlFlow::Continue(()));
        let _ = collector.collect_period(&mut gen, 2, &mut |_| ControlFlow::Continue(()));
        assert_eq!(collector.hub().total_ingested(), total);
    }
}
