//! The collection client.
//!
//! Stage one of the measurement pipeline (paper §3.1.1, Figure 1): gather
//! every document posted to the monitored sites during a collection
//! period. [`Collector`] wraps the generator-to-hub flow, stamps each
//! document with a collection time (posting time plus a small scrape
//! latency), and keeps per-source counters — the numbers Figure 1 and
//! Table 4 report.

use crate::hub::SiteHub;
use dox_osn::clock::{SimDuration, SimTime};
use dox_synth::corpus::{CorpusGenerator, Source, SynthDoc};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::ControlFlow;

/// One collected document as the pipeline sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedDoc {
    /// The underlying document (body, source, truth).
    pub doc: SynthDoc,
    /// When the collector fetched it.
    pub collected_at: SimTime,
}

/// Per-source collection counters (Figure 1 input volumes).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionStats {
    counts: BTreeMap<Source, u64>,
}

impl CollectionStats {
    /// Documents collected from `source`.
    pub fn count(&self, source: Source) -> u64 {
        self.counts.get(&source).copied().unwrap_or(0)
    }

    /// Total documents collected.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    fn bump(&mut self, source: Source) {
        *self.counts.entry(source).or_insert(0) += 1;
    }
}

/// The collection client: drives the generator, feeds the hub, emits
/// [`CollectedDoc`]s to a sink.
pub struct Collector {
    hub: SiteHub,
    stats_p1: CollectionStats,
    stats_p2: CollectionStats,
    /// Scrape latency added to each document's posting time.
    pub scrape_latency: SimDuration,
}

impl Collector {
    /// Create a collector with a fresh [`SiteHub`].
    pub fn new(seed: u64) -> Self {
        Self {
            hub: SiteHub::new(seed),
            stats_p1: CollectionStats::default(),
            stats_p2: CollectionStats::default(),
            scrape_latency: SimDuration(5),
        }
    }

    /// Collect one period end-to-end: generate, ingest into the sites,
    /// emit collected documents in order.
    ///
    /// The sink controls the stream: returning
    /// [`ControlFlow::Break`] stops collection immediately (the document
    /// that triggered the break has already been ingested into the hub
    /// and counted). The same `Break` is returned to the caller.
    ///
    /// # Panics
    /// Panics if `which` is not 1 or 2.
    pub fn collect_period(
        &mut self,
        gen: &mut CorpusGenerator<'_>,
        which: u8,
        sink: &mut dyn FnMut(CollectedDoc) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        assert!(which == 1 || which == 2, "periods are 1 and 2");
        let hub = &mut self.hub;
        let stats = if which == 1 {
            &mut self.stats_p1
        } else {
            &mut self.stats_p2
        };
        let latency = self.scrape_latency;
        gen.generate_period(which, &mut |doc| {
            hub.ingest(&doc);
            stats.bump(doc.source);
            let collected_at = doc.posted_at + latency;
            sink(CollectedDoc { doc, collected_at })
        })
    }

    /// Per-source counters for a period.
    pub fn stats(&self, which: u8) -> &CollectionStats {
        if which == 1 {
            &self.stats_p1
        } else {
            &self.stats_p2
        }
    }

    /// The underlying sites (deletion surveys, board inspection).
    pub fn hub(&self) -> &SiteHub {
        &self.hub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_geo::alloc::{AllocConfig, Allocation};
    use dox_geo::model::{World, WorldConfig};
    use dox_synth::config::SynthConfig;

    fn setup() -> (World, Allocation, SynthConfig) {
        let world = World::generate(&WorldConfig::default(), 9);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 9);
        (world, alloc, SynthConfig::test_scale())
    }

    #[test]
    fn counters_match_config_volumes() {
        let (world, alloc, config) = setup();
        let p1_total = config.period1.total();
        let p2_total = config.period2.total();
        let p2_chan_b = config.period2.chan4_b.total;
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let mut collector = Collector::new(9);
        let mut n = 0u64;
        let _ = collector.collect_period(&mut gen, 1, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        let _ = collector.collect_period(&mut gen, 2, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(collector.stats(1).total(), p1_total);
        assert_eq!(collector.stats(2).total(), p2_total);
        assert_eq!(collector.stats(2).count(Source::Chan4B), p2_chan_b);
        assert_eq!(n, p1_total + p2_total);
    }

    #[test]
    fn collection_time_trails_posting_time() {
        let (world, alloc, config) = setup();
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let mut collector = Collector::new(9);
        let _ = collector.collect_period(&mut gen, 1, &mut |c| {
            assert_eq!(c.collected_at.0, c.doc.posted_at.0 + 5);
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn sink_break_stops_collection_early() {
        let (world, alloc, config) = setup();
        let total = config.period1.total();
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let mut collector = Collector::new(9);
        let mut n = 0u64;
        let flow = collector.collect_period(&mut gen, 1, &mut |_| {
            n += 1;
            if n == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(n, 3);
        assert!(
            collector.stats(1).total() < total,
            "collection stopped early"
        );
        assert_eq!(
            collector.stats(1).total(),
            3,
            "counted exactly what reached the sink"
        );
    }

    #[test]
    fn hub_sees_every_document() {
        let (world, alloc, config) = setup();
        let total = config.total_documents() as usize;
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let mut collector = Collector::new(9);
        let _ = collector.collect_period(&mut gen, 1, &mut |_| ControlFlow::Continue(()));
        let _ = collector.collect_period(&mut gen, 2, &mut |_| ControlFlow::Continue(()));
        assert_eq!(collector.hub().total_ingested(), total);
    }
}
