//! # dox-sites
//!
//! Simulated text-sharing sites — the collection substrate (paper §3.1.1).
//!
//! The original study scraped every paste posted to pastebin.com (via the
//! paid scraping API) and every posting on 4chan `/b/`,`/pol/` and 8ch
//! `/pol/`,`/baphomet/`. This crate stands in for those services:
//!
//! - [`hub`] — [`hub::SiteHub`]: the five sites, ingesting the synthetic
//!   document stream and recording per-document metadata (source, posting
//!   time, deletion time) for the accounting and validation analyses.
//! - [`pastebin`] — the pastebin-like service: per-paste availability
//!   checks (drives the Table 3 deletion survey) and a paged scrape API.
//! - [`chan`] — chan-board structure: posts grouped into threads, board
//!   catalogs (the measurement pipeline only needs the post bodies, but
//!   the thread structure keeps ingestion realistic).
//! - [`collect`] — the collection client: merges the sites' feeds into one
//!   chronological stream of [`collect::CollectedDoc`]s with per-source
//!   counters (Figure 1's input volumes).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chan;
pub mod collect;
pub mod hub;
pub mod pastebin;

pub use collect::{CollectedDoc, Collector};
pub use hub::SiteHub;
