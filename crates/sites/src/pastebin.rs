//! The pastebin-like service.
//!
//! Two interfaces matter to the study:
//!
//! 1. The **scraping feed** (the paid API): every paste, delivered as it is
//!    posted. The [`crate::collect::Collector`] consumes this.
//! 2. **Per-paste availability**: a paste can later be deleted (by the
//!    poster, by an expiry date, or after an abuse report). The paper's
//!    Table 3 survey re-visits period-1 pastes a month later and compares
//!    deletion rates of dox vs non-dox files; [`SimPastebin::is_available`]
//!    and [`SimPastebin::deletion_survey`] reproduce that protocol.

use dox_osn::clock::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Metadata the service retains per paste (bodies are not stored — the
/// collection feed hands them through at posting time, and the deletion
/// survey needs only status).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PasteMeta {
    /// Document id (shared with the synthetic stream).
    pub id: u64,
    /// Posting time.
    pub posted_at: SimTime,
    /// Deletion time, if the paste was ever deleted.
    pub deleted_at: Option<SimTime>,
}

/// The simulated pastebin service.
#[derive(Debug, Clone, Default)]
pub struct SimPastebin {
    pastes: Vec<PasteMeta>,
    index: HashMap<u64, usize>,
}

/// The Table 3 survey result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeletionSurvey {
    /// Pastes the pipeline labeled dox.
    pub dox_total: u64,
    /// Of those, deleted by the survey time.
    pub dox_deleted: u64,
    /// All other pastes.
    pub other_total: u64,
    /// Of those, deleted.
    pub other_deleted: u64,
}

impl DeletionSurvey {
    /// Deletion rate of dox-labeled pastes.
    pub fn dox_rate(&self) -> f64 {
        rate(self.dox_deleted, self.dox_total)
    }

    /// Deletion rate of other pastes.
    pub fn other_rate(&self) -> f64 {
        rate(self.other_deleted, self.other_total)
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl SimPastebin {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a posted paste. `deleted_at` is precomputed by the corpus
    /// model (Table 3 rates); `None` means the paste is never deleted.
    ///
    /// # Panics
    /// Panics on duplicate ids.
    pub fn post(&mut self, id: u64, posted_at: SimTime, deleted_at: Option<SimTime>) {
        assert!(
            self.index.insert(id, self.pastes.len()).is_none(),
            "paste id {id} posted twice"
        );
        self.pastes.push(PasteMeta {
            id,
            posted_at,
            deleted_at,
        });
    }

    /// Number of recorded pastes.
    pub fn len(&self) -> usize {
        self.pastes.len()
    }

    /// True when no pastes are recorded.
    pub fn is_empty(&self) -> bool {
        self.pastes.is_empty()
    }

    /// Whether paste `id` is still retrievable at `at`. Unknown ids are
    /// unavailable.
    pub fn is_available(&self, id: u64, at: SimTime) -> bool {
        match self.index.get(&id) {
            Some(&i) => {
                let p = &self.pastes[i];
                p.posted_at <= at && p.deleted_at.is_none_or(|d| d > at)
            }
            None => false,
        }
    }

    /// Metadata of paste `id`.
    pub fn meta(&self, id: u64) -> Option<PasteMeta> {
        self.index.get(&id).map(|&i| self.pastes[i])
    }

    /// The paid scraping API: return up to `limit` paste ids posted at or
    /// after `since`, oldest first, together with a cursor for the next
    /// page (`None` when the listing is exhausted). Deleted pastes still
    /// appear in the listing — the API reports postings; availability is a
    /// separate check, exactly the split the Table 3 survey relies on.
    ///
    /// # Panics
    /// Panics when `limit == 0`.
    pub fn scrape_page(
        &self,
        since: SimTime,
        cursor: Option<usize>,
        limit: usize,
    ) -> (Vec<PasteMeta>, Option<usize>) {
        assert!(limit > 0, "page limit must be positive");
        let start = cursor.unwrap_or_else(|| self.pastes.partition_point(|p| p.posted_at < since));
        let end = (start + limit).min(self.pastes.len());
        let page = self.pastes[start..end].to_vec();
        let next = (end < self.pastes.len()).then_some(end);
        (page, next)
    }

    /// Run the Table 3 protocol: for every paste posted in
    /// `[window.0, window.1)`, check availability one `survey_delay` after
    /// posting, splitting by whether the pipeline labeled it a dox
    /// (`is_dox(id)`).
    pub fn deletion_survey(
        &self,
        window: (SimTime, SimTime),
        survey_delay: dox_osn::clock::SimDuration,
        is_dox: &dyn Fn(u64) -> bool,
    ) -> DeletionSurvey {
        let mut s = DeletionSurvey::default();
        for p in &self.pastes {
            if p.posted_at < window.0 || p.posted_at >= window.1 {
                continue;
            }
            let check_at = p.posted_at + survey_delay;
            let deleted = !self.is_available(p.id, check_at);
            if is_dox(p.id) {
                s.dox_total += 1;
                s.dox_deleted += u64::from(deleted);
            } else {
                s.other_total += 1;
                s.other_deleted += u64::from(deleted);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_osn::clock::SimDuration;

    #[test]
    fn availability_respects_post_and_delete_times() {
        let mut pb = SimPastebin::new();
        pb.post(1, SimTime::from_days(5), Some(SimTime::from_days(10)));
        assert!(!pb.is_available(1, SimTime::from_days(4)));
        assert!(pb.is_available(1, SimTime::from_days(5)));
        assert!(pb.is_available(1, SimTime::from_days(9)));
        assert!(!pb.is_available(1, SimTime::from_days(10)));
        assert!(!pb.is_available(99, SimTime::from_days(5)));
    }

    #[test]
    fn never_deleted_pastes_stay_available() {
        let mut pb = SimPastebin::new();
        pb.post(2, SimTime::from_days(1), None);
        assert!(pb.is_available(2, SimTime::from_days(10_000)));
    }

    #[test]
    #[should_panic(expected = "posted twice")]
    fn duplicate_id_panics() {
        let mut pb = SimPastebin::new();
        pb.post(1, SimTime::EPOCH, None);
        pb.post(1, SimTime::EPOCH, None);
    }

    #[test]
    fn scrape_pages_cover_the_listing_once() {
        let mut pb = SimPastebin::new();
        for i in 0..25 {
            pb.post(i, SimTime::from_days(i), None);
        }
        let mut collected = Vec::new();
        let mut cursor = None;
        loop {
            let (page, next) = pb.scrape_page(SimTime::from_days(5), cursor, 10);
            assert!(page.len() <= 10);
            collected.extend(page.into_iter().map(|p| p.id));
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        // Ids 5..=24, oldest first, each exactly once.
        assert_eq!(collected, (5..25).collect::<Vec<u64>>());
    }

    #[test]
    fn scrape_lists_deleted_pastes_too() {
        let mut pb = SimPastebin::new();
        pb.post(1, SimTime::from_days(1), Some(SimTime::from_days(2)));
        let (page, next) = pb.scrape_page(SimTime::EPOCH, None, 10);
        assert_eq!(page.len(), 1);
        assert!(next.is_none());
        assert!(!pb.is_available(1, SimTime::from_days(3)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_page_limit_panics() {
        SimPastebin::new().scrape_page(SimTime::EPOCH, None, 0);
    }

    #[test]
    fn survey_splits_by_label_and_window() {
        let mut pb = SimPastebin::new();
        // two doxes in-window, one deleted within 30 days
        pb.post(1, SimTime::from_days(1), Some(SimTime::from_days(8)));
        pb.post(2, SimTime::from_days(2), None);
        // two others, one deleted
        pb.post(3, SimTime::from_days(3), Some(SimTime::from_days(20)));
        pb.post(4, SimTime::from_days(4), None);
        // out-of-window dox, ignored
        pb.post(5, SimTime::from_days(100), Some(SimTime::from_days(101)));
        let survey = pb.deletion_survey(
            (SimTime::EPOCH, SimTime::from_days(42)),
            SimDuration::from_days(30),
            &|id| id <= 2,
        );
        assert_eq!(survey.dox_total, 2);
        assert_eq!(survey.dox_deleted, 1);
        assert_eq!(survey.other_total, 2);
        assert_eq!(survey.other_deleted, 1);
        assert_eq!(survey.dox_rate(), 0.5);
    }

    #[test]
    fn deletion_after_survey_horizon_not_counted() {
        let mut pb = SimPastebin::new();
        pb.post(1, SimTime::from_days(1), Some(SimTime::from_days(35)));
        let survey = pb.deletion_survey(
            (SimTime::EPOCH, SimTime::from_days(42)),
            SimDuration::from_days(30),
            &|_| true,
        );
        assert_eq!(survey.dox_deleted, 0, "deleted at day 35 > day 31 check");
    }

    #[test]
    fn empty_survey_rates_are_zero() {
        let pb = SimPastebin::new();
        let s = pb.deletion_survey(
            (SimTime::EPOCH, SimTime::from_days(1)),
            SimDuration::from_days(30),
            &|_| true,
        );
        assert_eq!(s.dox_rate(), 0.0);
        assert_eq!(s.other_rate(), 0.0);
    }
}
