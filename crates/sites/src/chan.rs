//! Chan-board structure.
//!
//! 4chan and 8ch serve posts grouped into threads on boards; postings are
//! HTML fragments. The measurement pipeline consumes post bodies, but
//! modeling threads keeps ingestion realistic (posts arrive as replies to
//! live threads; threads fall off the board) and gives the example
//! applications something board-shaped to work with.

use dox_osn::clock::SimTime;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A post on a board.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChanPost {
    /// Document id (shared with the synthetic stream).
    pub id: u64,
    /// Thread the post belongs to.
    pub thread: u64,
    /// Posting time.
    pub posted_at: SimTime,
    /// Whether this post opened its thread.
    pub is_op: bool,
}

/// A simulated board: posts assigned to threads, bounded catalog.
#[derive(Debug, Clone)]
pub struct SimChanBoard {
    /// Board name, e.g. "pol".
    pub name: &'static str,
    /// Maximum live threads; the oldest thread 404s beyond this.
    pub catalog_limit: usize,
    posts: Vec<ChanPost>,
    live_threads: Vec<u64>,
    next_thread: u64,
    rng: ChaCha8Rng,
}

impl SimChanBoard {
    /// Create a board.
    pub fn new(name: &'static str, catalog_limit: usize, seed: u64) -> Self {
        assert!(catalog_limit > 0, "catalog must hold at least one thread");
        Self {
            name,
            catalog_limit,
            posts: Vec::new(),
            live_threads: Vec::new(),
            next_thread: 1,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xC4A2),
        }
    }

    /// Ingest a posting: 20 % of posts (or any post when the catalog is
    /// empty) open a new thread, the rest reply to a random live thread.
    /// Returns the stored post record.
    pub fn post(&mut self, id: u64, posted_at: SimTime) -> ChanPost {
        let open_new = self.live_threads.is_empty() || self.rng.random_range(0.0..1.0) < 0.2;
        let (thread, is_op) = if open_new {
            let t = self.next_thread;
            self.next_thread += 1;
            self.live_threads.push(t);
            if self.live_threads.len() > self.catalog_limit {
                self.live_threads.remove(0); // oldest thread 404s
            }
            (t, true)
        } else {
            let i = self.rng.random_range(0..self.live_threads.len());
            (self.live_threads[i], false)
        };
        let post = ChanPost {
            id,
            thread,
            posted_at,
            is_op,
        };
        self.posts.push(post.clone());
        post
    }

    /// All posts ever made (the scrape archive).
    pub fn posts(&self) -> &[ChanPost] {
        &self.posts
    }

    /// Threads currently in the catalog.
    pub fn live_threads(&self) -> &[u64] {
        &self.live_threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_post_opens_a_thread() {
        let mut b = SimChanBoard::new("b", 10, 1);
        let p = b.post(1, SimTime::EPOCH);
        assert!(p.is_op);
        assert_eq!(b.live_threads().len(), 1);
    }

    #[test]
    fn replies_attach_to_live_threads() {
        let mut b = SimChanBoard::new("pol", 10, 2);
        for i in 0..200 {
            b.post(i, SimTime(i));
        }
        let replies = b.posts().iter().filter(|p| !p.is_op).count();
        assert!(replies > 100, "most posts should be replies: {replies}");
        for p in b.posts() {
            assert!(p.thread >= 1);
        }
    }

    #[test]
    fn catalog_is_bounded() {
        let mut b = SimChanBoard::new("baphomet", 5, 3);
        for i in 0..500 {
            b.post(i, SimTime(i));
        }
        assert!(b.live_threads().len() <= 5);
    }

    #[test]
    fn thread_ids_monotonic() {
        let mut b = SimChanBoard::new("b", 10, 4);
        let mut last_op = 0;
        for i in 0..100 {
            let p = b.post(i, SimTime(i));
            if p.is_op {
                assert!(p.thread > last_op);
                last_op = p.thread;
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_catalog_panics() {
        SimChanBoard::new("x", 0, 0);
    }
}
