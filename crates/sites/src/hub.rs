//! The five sites together.
//!
//! [`SiteHub`] ingests the synthetic document stream, routing each document
//! to its service: pastebin records paste metadata (with precomputed
//! deletion times from the Table 3 model), chan boards assign posts to
//! threads. The hub is the stateful "internet" the collection client
//! scrapes.

use crate::chan::SimChanBoard;
use crate::pastebin::SimPastebin;
use dox_synth::corpus::{Source, SynthDoc};

/// The five text-sharing sites.
#[derive(Debug)]
pub struct SiteHub {
    pastebin: SimPastebin,
    chan4_b: SimChanBoard,
    chan4_pol: SimChanBoard,
    chan8_pol: SimChanBoard,
    chan8_baphomet: SimChanBoard,
}

impl SiteHub {
    /// Create the sites.
    pub fn new(seed: u64) -> Self {
        Self {
            pastebin: SimPastebin::new(),
            chan4_b: SimChanBoard::new("b", 150, seed ^ 1),
            chan4_pol: SimChanBoard::new("pol", 200, seed ^ 2),
            chan8_pol: SimChanBoard::new("pol8", 80, seed ^ 3),
            chan8_baphomet: SimChanBoard::new("baphomet", 40, seed ^ 4),
        }
    }

    /// Ingest one document from the synthetic stream.
    pub fn ingest(&mut self, doc: &SynthDoc) {
        match doc.source {
            Source::Pastebin => {
                let deleted_at = doc.deleted_after.map(|d| doc.posted_at + d);
                self.pastebin.post(doc.id, doc.posted_at, deleted_at);
            }
            Source::Chan4B => {
                self.chan4_b.post(doc.id, doc.posted_at);
            }
            Source::Chan4Pol => {
                self.chan4_pol.post(doc.id, doc.posted_at);
            }
            Source::Chan8Pol => {
                self.chan8_pol.post(doc.id, doc.posted_at);
            }
            Source::Chan8Baphomet => {
                self.chan8_baphomet.post(doc.id, doc.posted_at);
            }
        }
    }

    /// The pastebin service (deletion surveys).
    pub fn pastebin(&self) -> &SimPastebin {
        &self.pastebin
    }

    /// A chan board by source; `None` for [`Source::Pastebin`].
    pub fn board(&self, source: Source) -> Option<&SimChanBoard> {
        match source {
            Source::Pastebin => None,
            Source::Chan4B => Some(&self.chan4_b),
            Source::Chan4Pol => Some(&self.chan4_pol),
            Source::Chan8Pol => Some(&self.chan8_pol),
            Source::Chan8Baphomet => Some(&self.chan8_baphomet),
        }
    }

    /// Total documents ingested across all sites.
    pub fn total_ingested(&self) -> usize {
        self.pastebin.len()
            + self.chan4_b.posts().len()
            + self.chan4_pol.posts().len()
            + self.chan8_pol.posts().len()
            + self.chan8_baphomet.posts().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_geo::alloc::{AllocConfig, Allocation};
    use dox_geo::model::{World, WorldConfig};
    use dox_synth::config::SynthConfig;
    use dox_synth::corpus::CorpusGenerator;

    #[test]
    fn ingests_full_test_stream() {
        let world = World::generate(&WorldConfig::default(), 1);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 1);
        let config = SynthConfig::test_scale();
        let expected = config.total_documents() as usize;
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let mut hub = SiteHub::new(1);
        let mut sink = |d: dox_synth::corpus::SynthDoc| {
            hub.ingest(&d);
            std::ops::ControlFlow::Continue(())
        };
        let _ = gen.generate_period(1, &mut sink);
        let _ = gen.generate_period(2, &mut sink);
        assert_eq!(hub.total_ingested(), expected);
        assert!(!hub.pastebin().is_empty());
        assert!(!hub.board(Source::Chan4B).unwrap().posts().is_empty());
        assert!(hub.board(Source::Pastebin).is_none());
    }
}
