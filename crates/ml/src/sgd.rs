//! A binary SGD linear classifier compatible with scikit-learn's
//! `SGDClassifier` defaults as used by the paper.
//!
//! scikit-learn 0.17.1 defaults that we replicate:
//!
//! - loss: hinge (linear SVM)
//! - penalty: L2 with `alpha = 1e-4`
//! - learning rate schedule: `optimal` — `eta(t) = 1 / (alpha * (t0 + t))`
//!   with `t0` chosen by Léon Bottou's heuristic
//! - `fit_intercept = true`; the intercept learning rate is not regularized
//! - samples shuffled each epoch
//! - `n_iter = 20` (the one non-default the paper sets)
//!
//! The implementation stores weights densely (vocabulary sizes here are
//! 10⁴–10⁵) and consumes [`SparseVec`] samples.

use dox_textkit::sparse::SparseVec;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Loss functions supported by [`SgdClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Hinge loss (linear SVM) — the sklearn default used by the paper.
    Hinge,
    /// Logistic loss; enables calibrated probability estimates.
    Log,
    /// Modified Huber loss — robust, supports probability estimates.
    ModifiedHuber,
}

/// Regularization penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Penalty {
    /// No regularization.
    None,
    /// Ridge penalty `alpha * ||w||² / 2` (sklearn default).
    L2,
    /// Lasso penalty `alpha * ||w||₁` via truncated gradient.
    L1,
}

/// Hyper-parameters for [`SgdClassifier`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Loss function.
    pub loss: Loss,
    /// Penalty kind.
    pub penalty: Penalty,
    /// Regularization strength (sklearn default `1e-4`).
    pub alpha: f64,
    /// Number of passes over the training data. The paper sets 20.
    pub epochs: usize,
    /// Fit an unregularized intercept term (sklearn default true).
    pub fit_intercept: bool,
    /// Scale applied to intercept updates. scikit-learn uses 0.01 for
    /// sparse inputs (`SPARSE_INTERCEPT_DECAY`) so the intercept does not
    /// swing with class imbalance; dense inputs use 1.0.
    pub intercept_decay: f64,
    /// Shuffle samples each epoch (sklearn default true).
    pub shuffle: bool,
    /// RNG seed for shuffling.
    pub seed: u64,
    /// Average the weight vectors over updates (ASGD; sklearn `average`).
    pub average: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl SgdConfig {
    /// The exact configuration used in the paper: sklearn defaults with 20
    /// training passes.
    pub fn paper() -> Self {
        Self {
            loss: Loss::Hinge,
            penalty: Penalty::L2,
            alpha: 1e-4,
            epochs: 20,
            fit_intercept: true,
            intercept_decay: 0.01,
            shuffle: true,
            seed: 0x5eed,
            average: false,
        }
    }

    /// Logistic-regression variant (used by ablation benches).
    pub fn logistic() -> Self {
        Self {
            loss: Loss::Log,
            ..Self::paper()
        }
    }
}

/// A trained binary linear classifier. Labels are `true` (positive class,
/// "dox") and `false` (negative class).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdClassifier {
    config: SgdConfig,
    weights: Vec<f64>,
    intercept: f64,
}

impl SgdClassifier {
    /// Train a classifier on `(sample, label)` pairs.
    ///
    /// `n_features` bounds the feature indices that participate in training;
    /// out-of-range indices in samples are ignored (they can occur when a
    /// vectorizer is refitted on a superset corpus).
    ///
    /// # Panics
    /// Panics if `samples` and `labels` lengths differ or no samples given.
    pub fn fit(
        config: SgdConfig,
        n_features: usize,
        samples: &[SparseVec],
        labels: &[bool],
    ) -> Self {
        assert_eq!(
            samples.len(),
            labels.len(),
            "samples/labels length mismatch"
        );
        assert!(!samples.is_empty(), "cannot fit on an empty training set");

        let mut w = vec![0.0f64; n_features];
        let mut intercept = 0.0f64;
        // Averaged weights (only maintained when config.average).
        let mut w_avg = vec![0.0f64; if config.average { n_features } else { 0 }];
        let mut intercept_avg = 0.0f64;
        let mut n_updates = 0u64;

        // sklearn's `optimal` schedule: eta(t) = 1 / (alpha * (t0 + t)).
        // t0 = 1 / (alpha * eta0) with eta0 from Bottou's heuristic:
        // eta0 such that the typical initial loss decreases; sklearn uses
        // typ = sqrt(1 / sqrt(alpha)) and eta0 = typ / max(1, dloss(-typ, 1)).
        let typw = (1.0 / config.alpha.sqrt()).sqrt();
        let initial_eta0 = typw / dloss(config.loss, -typw, 1.0).max(1.0);
        let t0 = 1.0 / (initial_eta0 * config.alpha);

        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut t = 1.0f64;
        // Multiplicative weight-scale trick: the L2 shrink each step is a
        // uniform scale, applied lazily so updates stay O(nnz).
        let mut wscale = 1.0f64;

        for _epoch in 0..config.epochs {
            if config.shuffle {
                fisher_yates(&mut order, &mut rng);
            }
            for &i in &order {
                let x = &samples[i];
                let y = if labels[i] { 1.0 } else { -1.0 };
                let eta = 1.0 / (config.alpha * (t0 + t));

                let margin = (x.dot_dense(&w) * wscale + intercept) * y;
                let grad = dloss(config.loss, margin, y);

                if let Penalty::L2 = config.penalty {
                    // w <- w * (1 - eta * alpha)
                    wscale *= 1.0 - eta * config.alpha;
                    if wscale < 1e-9 {
                        rescale(&mut w, &mut wscale);
                    }
                }

                if grad != 0.0 {
                    // w <- w + eta * grad * y * x (grad already includes y
                    // direction, see dloss contract)
                    x.axpy_into(eta * grad / wscale, &mut w);
                    if config.fit_intercept {
                        intercept += eta * grad * config.intercept_decay;
                    }
                }

                if let Penalty::L1 = config.penalty {
                    l1_truncate(&mut w, wscale, eta * config.alpha, x);
                }

                if config.average {
                    // Incremental mean of the (scaled) iterates.
                    n_updates += 1;
                    let k = n_updates as f64;
                    for (a, &cur) in w_avg.iter_mut().zip(&w) {
                        *a += (cur * wscale - *a) / k;
                    }
                    intercept_avg += (intercept - intercept_avg) / k;
                }
                t += 1.0;
            }
        }

        rescale(&mut w, &mut wscale);
        if config.average && n_updates > 0 {
            w = w_avg;
            intercept = intercept_avg;
        }
        Self {
            config,
            weights: w,
            intercept,
        }
    }

    /// Train with the paper's configuration.
    pub fn fit_paper(n_features: usize, samples: &[SparseVec], labels: &[bool]) -> Self {
        Self::fit(SgdConfig::paper(), n_features, samples, labels)
    }

    /// The raw decision value `w·x + b`; positive predicts the dox class.
    pub fn decision_function(&self, x: &SparseVec) -> f64 {
        x.dot_dense(&self.weights) + self.intercept
    }

    /// Predict the label of one sample.
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.decision_function(x) > 0.0
    }

    /// Predict a batch of samples.
    pub fn predict_batch(&self, xs: &[SparseVec]) -> Vec<bool> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Positive-class probability estimate.
    ///
    /// Exact for [`Loss::Log`] (sigmoid of the decision value); for the other
    /// losses this applies the same sigmoid as a monotonic squashing, which
    /// preserves ranking but is uncalibrated — adequate for thresholding
    /// experiments, documented as such.
    pub fn predict_proba(&self, x: &SparseVec) -> f64 {
        let d = self.decision_function(x);
        1.0 / (1.0 + (-d).exp())
    }

    /// The trained weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The trained intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Indices of the `k` most positive (dox-indicative) weights,
    /// descending. Useful for model inspection reports.
    pub fn top_positive_features(&self, k: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<(u32, f64)> = self
            .weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u32, w))
            .collect();
        idx.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
        idx.truncate(k);
        idx
    }
}

/// Negative derivative of the loss at `margin = y * f(x)`, multiplied by the
/// label direction: the update applied is `w += eta * dloss * x`.
///
/// Contract: returns `0` when the sample is already confidently correct.
fn dloss(loss: Loss, margin: f64, y: f64) -> f64 {
    match loss {
        Loss::Hinge => {
            if margin < 1.0 {
                y
            } else {
                0.0
            }
        }
        Loss::Log => {
            // d/dz log(1 + e^{-z}) = -1/(1+e^z); update magnitude in (0,1).
            y / (1.0 + margin.exp())
        }
        Loss::ModifiedHuber => {
            if margin >= 1.0 {
                0.0
            } else if margin >= -1.0 {
                2.0 * (1.0 - margin) * y
            } else {
                4.0 * y
            }
        }
    }
}

fn rescale(w: &mut [f64], wscale: &mut f64) {
    if *wscale != 1.0 {
        for v in w.iter_mut() {
            *v *= *wscale;
        }
        *wscale = 1.0;
    }
}

/// Truncated-gradient L1: shrink only the coordinates touched by `x`
/// toward zero by `shrink` (in true weight units).
fn l1_truncate(w: &mut [f64], wscale: f64, shrink: f64, x: &SparseVec) {
    for &i in x.indices() {
        if let Some(slot) = w.get_mut(i as usize) {
            let true_w = *slot * wscale;
            let shrunk = if true_w > 0.0 {
                (true_w - shrink).max(0.0)
            } else {
                (true_w + shrink).min(0.0)
            };
            *slot = shrunk / wscale;
        }
    }
}

fn fisher_yates(order: &mut [usize], rng: &mut ChaCha8Rng) {
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    /// Linearly separable toy problem: feature 0 ⇒ positive, feature 1 ⇒
    /// negative.
    fn toy() -> (Vec<SparseVec>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for k in 0..20 {
            let bias = 0.1 * (k % 3) as f64;
            xs.push(sv(&[(0, 1.0), (2, bias)]));
            ys.push(true);
            xs.push(sv(&[(1, 1.0), (2, bias)]));
            ys.push(false);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_problem() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit_paper(3, &xs, &ys);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(clf.predict(x), y);
        }
        assert!(clf.weights()[0] > 0.0);
        assert!(clf.weights()[1] < 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = toy();
        let a = SgdClassifier::fit_paper(3, &xs, &ys);
        let b = SgdClassifier::fit_paper(3, &xs, &ys);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.intercept(), b.intercept());
    }

    #[test]
    fn different_seed_different_path_same_answer() {
        let (xs, ys) = toy();
        let mut cfg = SgdConfig::paper();
        cfg.seed = 99;
        let a = SgdClassifier::fit(cfg, 3, &xs, &ys);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(a.predict(x), y);
        }
    }

    #[test]
    fn log_loss_learns_too() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit(SgdConfig::logistic(), 3, &xs, &ys);
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| clf.predict(x) == y)
            .count();
        assert_eq!(acc, xs.len());
        // probabilities ordered correctly
        assert!(clf.predict_proba(&sv(&[(0, 1.0)])) > 0.5);
        assert!(clf.predict_proba(&sv(&[(1, 1.0)])) < 0.5);
    }

    #[test]
    fn modified_huber_learns() {
        let (xs, ys) = toy();
        let cfg = SgdConfig {
            loss: Loss::ModifiedHuber,
            ..SgdConfig::paper()
        };
        let clf = SgdClassifier::fit(cfg, 3, &xs, &ys);
        assert!(xs.iter().zip(&ys).all(|(x, &y)| clf.predict(x) == y));
    }

    #[test]
    fn l1_produces_sparser_weights_than_l2() {
        let (xs, ys) = toy();
        let l2 = SgdClassifier::fit(SgdConfig::paper(), 3, &xs, &ys);
        let l1 = SgdClassifier::fit(
            SgdConfig {
                penalty: Penalty::L1,
                alpha: 1e-2,
                ..SgdConfig::paper()
            },
            3,
            &xs,
            &ys,
        );
        let nz = |w: &[f64]| w.iter().filter(|v| v.abs() > 1e-12).count();
        assert!(nz(l1.weights()) <= nz(l2.weights()));
    }

    #[test]
    fn averaging_still_classifies() {
        let (xs, ys) = toy();
        let cfg = SgdConfig {
            average: true,
            ..SgdConfig::paper()
        };
        let clf = SgdClassifier::fit(cfg, 3, &xs, &ys);
        assert!(xs.iter().zip(&ys).all(|(x, &y)| clf.predict(x) == y));
    }

    #[test]
    fn intercept_handles_biased_classes() {
        // All-zero features; labels 90% positive. Model must lean positive
        // via the intercept.
        let xs: Vec<SparseVec> = (0..50).map(|_| SparseVec::new()).collect();
        let ys: Vec<bool> = (0..50).map(|i| i % 10 != 0).collect();
        let clf = SgdClassifier::fit(SgdConfig::logistic(), 1, &xs, &ys);
        assert!(clf.predict(&SparseVec::new()));
    }

    #[test]
    fn out_of_range_features_ignored() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit_paper(3, &xs, &ys);
        let weird = sv(&[(0, 1.0), (500, 9.0)]);
        assert!(clf.predict(&weird));
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_panics() {
        SgdClassifier::fit_paper(1, &[], &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        SgdClassifier::fit_paper(1, &[SparseVec::new()], &[]);
    }

    #[test]
    fn top_features_sorted_descending() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit_paper(3, &xs, &ys);
        let top = clf.top_positive_features(2);
        assert_eq!(top[0].0, 0);
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn predict_batch_matches_single() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit_paper(3, &xs, &ys);
        let batch = clf.predict_batch(&xs);
        for (b, x) in batch.iter().zip(&xs) {
            assert_eq!(*b, clf.predict(x));
        }
        assert_eq!(batch, ys);
    }
}
