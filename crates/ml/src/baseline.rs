//! Baseline classifiers the paper's TF-IDF + SGD approach is compared
//! against in our ablation benchmarks.
//!
//! The paper does not report a formal baseline, but the obvious pre-ML
//! approach — keyword rules ("dox", "name:", "address:", …) — is the one a
//! paste-site operator would deploy first, and multinomial naive Bayes is
//! the canonical cheap text classifier. Both are implemented here so the
//! benchmark suite can show where the learned classifier wins.

use dox_textkit::sparse::SparseVec;
use dox_textkit::tokenize::Tokenizer;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A transparent keyword/heuristic dox detector.
///
/// Scores a document by counting indicator hits; classifies as dox when the
/// score reaches `threshold`. Indicators follow doxing-tutorial vocabulary:
/// the word "dox" itself, labeled sensitive fields, and bragging phrases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeywordBaseline {
    /// Minimum number of distinct indicator hits to classify as dox.
    pub threshold: usize,
}

impl Default for KeywordBaseline {
    fn default() -> Self {
        Self { threshold: 3 }
    }
}

/// Indicator terms; all lowercase, matched against tokenized text.
const TOKEN_INDICATORS: &[&str] = &["dox", "doxed", "doxx", "doxxed", "d0x", "swat", "swatted"];

/// Labeled-field indicators; matched as substrings of the lowercased text.
const PHRASE_INDICATORS: &[&str] = &[
    "full name",
    "real name",
    "name:",
    "address:",
    "addy:",
    "phone:",
    "phone number",
    "date of birth",
    "dob:",
    "zip:",
    "zipcode",
    "ip:",
    "ip address",
    "isp:",
    "ssn",
    "social security",
    "mother's name",
    "father's name",
    "skype:",
    "facebook:",
    "twitter:",
    "instagram:",
    "school:",
    "dropped by",
    "get rekt",
    "have fun",
];

impl KeywordBaseline {
    /// Count distinct indicator hits in `text`.
    pub fn score(&self, text: &str) -> usize {
        let lower = text.to_lowercase();
        let tokens: HashSet<String> = Tokenizer::sklearn_default()
            .tokenize(&lower)
            .into_iter()
            .collect();
        let tok_hits = TOKEN_INDICATORS
            .iter()
            .filter(|t| tokens.contains(**t))
            .count();
        let phrase_hits = PHRASE_INDICATORS
            .iter()
            .filter(|p| lower.contains(**p))
            .count();
        tok_hits + phrase_hits
    }

    /// Classify `text` as dox / not-dox.
    pub fn predict(&self, text: &str) -> bool {
        self.score(text) >= self.threshold
    }
}

/// Multinomial naive Bayes over term-count vectors with Laplace smoothing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultinomialNb {
    log_prior_pos: f64,
    log_prior_neg: f64,
    log_lik_pos: Vec<f64>,
    log_lik_neg: Vec<f64>,
}

impl MultinomialNb {
    /// Train on `(sample, label)` pairs over `n_features` features with
    /// Laplace smoothing `alpha` (use `1.0` for classic add-one).
    ///
    /// Samples are expected to be term *counts*; TF-IDF-weighted vectors
    /// also work (weights act as fractional counts) but the probabilistic
    /// interpretation is then approximate.
    ///
    /// # Panics
    /// Panics on empty input, length mismatch, or non-positive `alpha`.
    pub fn fit(n_features: usize, samples: &[SparseVec], labels: &[bool], alpha: f64) -> Self {
        assert!(!samples.is_empty(), "cannot fit on an empty training set");
        assert_eq!(
            samples.len(),
            labels.len(),
            "samples/labels length mismatch"
        );
        assert!(alpha > 0.0, "smoothing alpha must be positive");

        let mut count_pos = vec![0.0f64; n_features];
        let mut count_neg = vec![0.0f64; n_features];
        let (mut n_pos, mut n_neg) = (0usize, 0usize);
        for (x, &y) in samples.iter().zip(labels) {
            let target = if y {
                n_pos += 1;
                &mut count_pos
            } else {
                n_neg += 1;
                &mut count_neg
            };
            x.axpy_into(1.0, target);
        }
        let total_pos: f64 = count_pos.iter().sum::<f64>() + alpha * n_features as f64;
        let total_neg: f64 = count_neg.iter().sum::<f64>() + alpha * n_features as f64;
        let log_lik = |counts: &[f64], total: f64| {
            counts
                .iter()
                .map(|&c| ((c + alpha) / total).ln())
                .collect::<Vec<f64>>()
        };
        let n = samples.len() as f64;
        // Laplace-smoothed class priors keep an all-one-class training set
        // from producing -inf.
        let prior_pos = ((n_pos as f64 + 1.0) / (n + 2.0)).ln();
        let prior_neg = ((n_neg as f64 + 1.0) / (n + 2.0)).ln();
        Self {
            log_prior_pos: prior_pos,
            log_prior_neg: prior_neg,
            log_lik_pos: log_lik(&count_pos, total_pos),
            log_lik_neg: log_lik(&count_neg, total_neg),
        }
    }

    /// Log-odds of the positive class.
    pub fn decision_function(&self, x: &SparseVec) -> f64 {
        let pos = self.log_prior_pos + x.dot_dense(&self.log_lik_pos);
        let neg = self.log_prior_neg + x.dot_dense(&self.log_lik_neg);
        pos - neg
    }

    /// Predict the label of one sample.
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.decision_function(x) > 0.0
    }

    /// Predict a batch.
    pub fn predict_batch(&self, xs: &[SparseVec]) -> Vec<bool> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOXY: &str = "DOX DROP!!! Full Name: John Example\nAddress: 12 Main St\n\
                        Phone: 555-0100\nIP: 10.1.2.3\nDropped by xX_alice_Xx";
    const CODE: &str = "fn main() { println!(\"hello world\"); } // rust snippet";

    #[test]
    fn keyword_flags_obvious_dox() {
        let b = KeywordBaseline::default();
        assert!(b.predict(DOXY), "score = {}", b.score(DOXY));
    }

    #[test]
    fn keyword_passes_code() {
        let b = KeywordBaseline::default();
        assert!(!b.predict(CODE));
        assert_eq!(b.score(""), 0);
    }

    #[test]
    fn keyword_threshold_monotone() {
        let lenient = KeywordBaseline { threshold: 1 };
        let strict = KeywordBaseline { threshold: 50 };
        assert!(lenient.predict(DOXY));
        assert!(!strict.predict(DOXY));
    }

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    fn toy() -> (Vec<SparseVec>, Vec<bool>) {
        // feature 0 = "name", feature 1 = "println"
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..10 {
            xs.push(sv(&[(0, 3.0), (2, 1.0)]));
            ys.push(true);
            xs.push(sv(&[(1, 3.0), (2, 1.0)]));
            ys.push(false);
        }
        (xs, ys)
    }

    #[test]
    fn nb_learns_toy_problem() {
        let (xs, ys) = toy();
        let nb = MultinomialNb::fit(3, &xs, &ys, 1.0);
        assert!(xs.iter().zip(&ys).all(|(x, &y)| nb.predict(x) == y));
    }

    #[test]
    fn nb_priors_shift_empty_sample() {
        // Heavily imbalanced labels: empty doc should follow the prior.
        let xs: Vec<SparseVec> = (0..20).map(|_| SparseVec::new()).collect();
        let ys: Vec<bool> = (0..20).map(|i| i < 18).collect();
        let nb = MultinomialNb::fit(1, &xs, &ys, 1.0);
        assert!(nb.predict(&SparseVec::new()));
    }

    #[test]
    fn nb_single_class_training_does_not_nan() {
        let xs = vec![sv(&[(0, 1.0)]); 3];
        let ys = vec![true; 3];
        let nb = MultinomialNb::fit(1, &xs, &ys, 1.0);
        let d = nb.decision_function(&xs[0]);
        assert!(d.is_finite());
        assert!(nb.predict(&xs[0]));
    }

    #[test]
    fn nb_unseen_feature_is_neutral() {
        let (xs, ys) = toy();
        let nb = MultinomialNb::fit(3, &xs, &ys, 1.0);
        // decision on a vector with only out-of-range features = prior only
        let d = nb.decision_function(&sv(&[(100, 1.0)]));
        assert!(d.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn nb_empty_panics() {
        MultinomialNb::fit(1, &[], &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn nb_zero_alpha_panics() {
        MultinomialNb::fit(1, &[SparseVec::new()], &[true], 0.0);
    }

    #[test]
    fn nb_batch_matches_single() {
        let (xs, ys) = toy();
        let nb = MultinomialNb::fit(3, &xs, &ys, 1.0);
        assert_eq!(nb.predict_batch(&xs), ys);
    }
}
