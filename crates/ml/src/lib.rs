//! # dox-ml
//!
//! Machine-learning substrate for the dox classifier (paper §3.1.2).
//!
//! The paper trains a stochastic-gradient-descent linear model
//! (scikit-learn 0.17.1 `SGDClassifier`, 20 training passes, all other
//! parameters default) over TF-IDF vectors, and evaluates it with a
//! two-thirds / one-third split, reporting per-class precision, recall, F1
//! and support (paper Table 1). This crate implements:
//!
//! - [`sgd`] — a binary `SGDClassifier` with hinge / log / modified-huber
//!   losses, L2/L1/none penalties and sklearn's `optimal` learning-rate
//!   schedule.
//! - [`metrics`] — confusion matrices, per-class precision/recall/F1 and the
//!   classification-report layout used by Table 1.
//! - [`split`] — deterministic shuffled and stratified train/test splits and
//!   k-fold cross-validation.
//! - [`baseline`] — the comparison points: a keyword-rule dox detector and a
//!   multinomial naive-Bayes classifier.
//! - [`eval`] — end-to-end "vectorize, train, evaluate" helpers shared by
//!   the pipeline, benchmarks and tests.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod eval;
pub mod metrics;
pub mod sgd;
pub mod split;

pub use metrics::{ClassMetrics, ClassificationReport, ConfusionMatrix};
pub use sgd::{Loss, Penalty, SgdClassifier, SgdConfig};
