//! Deterministic dataset splitting.
//!
//! The paper evaluates the classifier with "a randomly selected two-thirds
//! training set, one-third evaluation set" (§3.1.2). [`train_test_split`]
//! reproduces that protocol; [`stratified_split`] and [`kfold`] support the
//! extended evaluation in the benchmarks.

use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Index sets produced by a split: `(train, test)`.
pub type SplitIndices = (Vec<usize>, Vec<usize>);

/// Shuffle `0..n` and split at `train_fraction` (clamped to `[0,1]`).
///
/// The paper's protocol is `train_test_split(n, 2.0 / 3.0, seed)`.
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> SplitIndices {
    let mut order: Vec<usize> = (0..n).collect();
    shuffle(&mut order, seed);
    let cut = ((n as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
    let cut = cut.min(n);
    let test = order.split_off(cut);
    (order, test)
}

/// Split preserving the label ratio in both halves.
///
/// Each class's indices are shuffled and split at `train_fraction`
/// independently, so a rare positive class (749 doxes vs 4,220 negatives in
/// the paper's training data) is represented proportionally in both sets.
pub fn stratified_split(labels: &[bool], train_fraction: f64, seed: u64) -> SplitIndices {
    let pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (salt, mut class) in [(1u64, pos), (2u64, neg)] {
        shuffle(&mut class, seed.wrapping_add(salt));
        let cut = ((class.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        let cut = cut.min(class.len());
        test.extend_from_slice(&class[cut..]);
        train.extend_from_slice(&class[..cut]);
    }
    // Keep downstream iteration order independent of class grouping.
    shuffle(&mut train, seed.wrapping_add(3));
    shuffle(&mut test, seed.wrapping_add(4));
    (train, test)
}

/// K-fold cross-validation index sets: `k` pairs of `(train, test)`.
///
/// # Panics
/// Panics if `k < 2` or `k > n`.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<SplitIndices> {
    assert!(k >= 2, "k must be at least 2");
    assert!(k <= n, "k must not exceed the number of samples");
    let mut order: Vec<usize> = (0..n).collect();
    shuffle(&mut order, seed);
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        folds.push(order[start..start + len].to_vec());
        start += len;
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train = folds
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != f)
                .flat_map(|(_, fold)| fold.iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

/// Deterministic Fisher–Yates shuffle keyed by `seed`.
pub fn shuffle(order: &mut [usize], seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
}

/// Select the elements of `items` at `indices` (cloning).
pub fn take<T: Clone>(items: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| items[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_is_a_partition() {
        let (train, test) = train_test_split(100, 2.0 / 3.0, 7);
        assert_eq!(train.len() + test.len(), 100);
        let all: HashSet<usize> = train.iter().chain(&test).copied().collect();
        assert_eq!(all.len(), 100);
        assert_eq!(train.len(), 67); // round(100 * 2/3)
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(train_test_split(50, 0.5, 42), train_test_split(50, 0.5, 42));
        assert_ne!(
            train_test_split(50, 0.5, 42).0,
            train_test_split(50, 0.5, 43).0
        );
    }

    #[test]
    fn split_edge_fractions() {
        let (train, test) = train_test_split(10, 0.0, 1);
        assert!(train.is_empty());
        assert_eq!(test.len(), 10);
        let (train, test) = train_test_split(10, 1.0, 1);
        assert_eq!(train.len(), 10);
        assert!(test.is_empty());
        let (train, test) = train_test_split(10, 7.5, 1); // clamped
        assert_eq!(train.len(), 10);
        assert!(test.is_empty());
    }

    #[test]
    fn split_empty_dataset() {
        let (train, test) = train_test_split(0, 0.5, 1);
        assert!(train.is_empty() && test.is_empty());
    }

    #[test]
    fn stratified_preserves_ratio() {
        // 100 pos, 900 neg
        let labels: Vec<bool> = (0..1000).map(|i| i < 100).collect();
        let (train, test) = stratified_split(&labels, 2.0 / 3.0, 5);
        let pos_train = train.iter().filter(|&&i| labels[i]).count();
        let pos_test = test.iter().filter(|&&i| labels[i]).count();
        assert_eq!(pos_train, 67);
        assert_eq!(pos_test, 33);
        assert_eq!(train.len() + test.len(), 1000);
    }

    #[test]
    fn stratified_is_partition() {
        let labels: Vec<bool> = (0..97).map(|i| i % 7 == 0).collect();
        let (train, test) = stratified_split(&labels, 0.6, 11);
        let all: HashSet<usize> = train.iter().chain(&test).copied().collect();
        assert_eq!(all.len(), 97);
    }

    #[test]
    fn kfold_covers_each_sample_once_as_test() {
        let folds = kfold(23, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = [0usize; 23];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
            for &i in test {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_balanced_sizes() {
        let folds = kfold(10, 3, 1);
        let sizes: Vec<usize> = folds.iter().map(|(_, t)| t.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn kfold_rejects_k1() {
        kfold(10, 1, 0);
    }

    #[test]
    #[should_panic(expected = "not exceed")]
    fn kfold_rejects_k_gt_n() {
        kfold(3, 5, 0);
    }

    #[test]
    fn take_selects() {
        let items = vec!["a", "b", "c"];
        assert_eq!(take(&items, &[2, 0]), vec!["c", "a"]);
    }
}
