//! Classification metrics: confusion matrix, precision / recall / F1 and
//! the classification-report layout the paper uses for Table 1.

use serde::{Deserialize, Serialize};

/// A binary confusion matrix. The positive class is "dox".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives: doxes classified as doxes.
    pub tp: usize,
    /// False positives: non-doxes classified as doxes.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives: doxes classified as non-doxes.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Build from parallel predicted / actual label slices.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_labels(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "label length mismatch");
        let mut m = Self::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Overall accuracy; 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }

    /// Metrics of the positive (dox) class.
    pub fn positive_class(&self) -> ClassMetrics {
        ClassMetrics::from_counts(self.tp, self.fp, self.fn_, self.tp + self.fn_)
    }

    /// Metrics of the negative (non-dox) class.
    pub fn negative_class(&self) -> ClassMetrics {
        // For the negative class, a "true positive" is a true negative.
        ClassMetrics::from_counts(self.tn, self.fn_, self.fp, self.tn + self.fp)
    }
}

/// Precision / recall / F1 / support for one class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Precision: of everything predicted into the class, how much belongs.
    pub precision: f64,
    /// Recall: of everything in the class, how much was found.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of true members of the class in the evaluation set.
    pub support: usize,
}

impl ClassMetrics {
    /// Compute metrics from raw counts. Undefined ratios (zero denominators)
    /// are reported as 0, matching scikit-learn's warning-then-zero
    /// behaviour.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize, support: usize) -> Self {
        let precision = ratio(tp, tp + fp);
        let recall = ratio(tp, tp + fn_);
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
            support,
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The two-class classification report of paper Table 1: per-class metrics
/// plus the support-weighted average row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Metrics of the "Dox" class.
    pub dox: ClassMetrics,
    /// Metrics of the "Not" class.
    pub not: ClassMetrics,
    /// Support-weighted averages (the "Avg / Total" row).
    pub weighted: ClassMetrics,
    /// Overall accuracy.
    pub accuracy: f64,
}

impl ClassificationReport {
    /// Build the report from predictions.
    pub fn from_labels(predicted: &[bool], actual: &[bool]) -> Self {
        Self::from_confusion(ConfusionMatrix::from_labels(predicted, actual))
    }

    /// Build the report from a confusion matrix.
    pub fn from_confusion(m: ConfusionMatrix) -> Self {
        let dox = m.positive_class();
        let not = m.negative_class();
        let total = (dox.support + not.support).max(1);
        let w = |f: fn(&ClassMetrics) -> f64| {
            (f(&dox) * dox.support as f64 + f(&not) * not.support as f64) / total as f64
        };
        let weighted = ClassMetrics {
            precision: w(|c| c.precision),
            recall: w(|c| c.recall),
            f1: w(|c| c.f1),
            support: dox.support + not.support,
        };
        Self {
            dox,
            not,
            weighted,
            accuracy: m.accuracy(),
        }
    }

    /// Render in the layout of paper Table 1.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str("Label        Precision  Recall  F1     # Samples\n");
        for (name, c) in [("Dox", &self.dox), ("Not", &self.not)] {
            s.push_str(&format!(
                "{name:<12} {:<10.2} {:<7.2} {:<6.2} {}\n",
                c.precision, c.recall, c.f1, c.support
            ));
        }
        let c = &self.weighted;
        s.push_str(&format!(
            "{:<12} {:<10.2} {:<7.2} {:<6.2} {}\n",
            "Avg / Total", c.precision, c.recall, c.f1, c.support
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let pred = [true, true, false, false, true];
        let act = [true, false, false, true, true];
        let m = ConfusionMatrix::from_labels(&pred, &act);
        assert_eq!(
            m,
            ConfusionMatrix {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(m.total(), 5);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier() {
        let labels = [true, false, true, false];
        let r = ClassificationReport::from_labels(&labels, &labels);
        assert_eq!(r.dox.precision, 1.0);
        assert_eq!(r.dox.recall, 1.0);
        assert_eq!(r.not.f1, 1.0);
        assert_eq!(r.accuracy, 1.0);
    }

    #[test]
    fn degenerate_all_negative_predictions() {
        let pred = [false, false, false];
        let act = [true, true, false];
        let r = ClassificationReport::from_labels(&pred, &act);
        assert_eq!(r.dox.precision, 0.0); // 0/0 -> 0
        assert_eq!(r.dox.recall, 0.0);
        assert_eq!(r.dox.f1, 0.0);
        assert_eq!(r.not.recall, 1.0);
    }

    #[test]
    fn class_metrics_match_hand_computation() {
        // tp=8, fp=2, fn=1 -> p=0.8, r=8/9
        let c = ClassMetrics::from_counts(8, 2, 1, 9);
        assert!((c.precision - 0.8).abs() < 1e-12);
        assert!((c.recall - 8.0 / 9.0).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 9.0) / (0.8 + 8.0 / 9.0);
        assert!((c.f1 - f1).abs() < 1e-12);
    }

    #[test]
    fn weighted_average_is_support_weighted() {
        let m = ConfusionMatrix {
            tp: 9,
            fp: 1,
            tn: 89,
            fn_: 1,
        };
        let r = ClassificationReport::from_confusion(m);
        let expect = (r.dox.precision * 10.0 + r.not.precision * 90.0) / 100.0;
        assert!((r.weighted.precision - expect).abs() < 1e-12);
        assert_eq!(r.weighted.support, 100);
    }

    #[test]
    fn negative_class_mirrors_positive() {
        let m = ConfusionMatrix {
            tp: 5,
            fp: 3,
            tn: 10,
            fn_: 2,
        };
        let n = m.negative_class();
        // negative precision = tn / (tn + fn)
        assert!((n.precision - 10.0 / 12.0).abs() < 1e-12);
        // negative recall = tn / (tn + fp)
        assert!((n.recall - 10.0 / 13.0).abs() < 1e-12);
        assert_eq!(n.support, 13);
    }

    #[test]
    fn table_layout_contains_rows() {
        let labels = [true, false];
        let r = ClassificationReport::from_labels(&labels, &labels);
        let t = r.to_table();
        assert!(t.contains("Dox"));
        assert!(t.contains("Not"));
        assert!(t.contains("Avg / Total"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ConfusionMatrix::from_labels(&[true], &[]);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        let r = ClassificationReport::from_confusion(m);
        assert_eq!(r.weighted.support, 0);
    }
}
