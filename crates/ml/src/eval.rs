//! End-to-end "vectorize → split → train → evaluate" helpers.
//!
//! The dox-classifier evaluation (paper Table 1) vectorizes the labeled
//! corpus with TF-IDF, splits two-thirds / one-third, fits the SGD model on
//! the training part and reports per-class metrics on the held-out part.
//! [`evaluate_classifier`] packages that protocol so the pipeline, the
//! benchmarks and the integration tests all run the identical procedure.

use crate::metrics::ClassificationReport;
use crate::sgd::{SgdClassifier, SgdConfig};
use crate::split::{stratified_split, take};
use dox_textkit::tfidf::{TfidfConfig, TfidfVectorizer};

/// Everything produced by one classifier evaluation run.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Held-out classification report (paper Table 1 shape).
    pub report: ClassificationReport,
    /// The fitted vectorizer (vocabulary + idf), reusable for inference.
    pub vectorizer: TfidfVectorizer,
    /// The trained classifier.
    pub classifier: SgdClassifier,
    /// Sizes: `(train, test)`.
    pub sizes: (usize, usize),
}

/// Run the paper's evaluation protocol.
///
/// - `texts`/`labels`: the labeled corpus (positive = dox).
/// - `train_fraction`: the paper uses `2.0/3.0`.
/// - `seed`: governs the split and SGD shuffling.
///
/// The vectorizer is fitted on the **training fold only** — fitting idf on
/// the full corpus would leak document frequencies from the evaluation set.
///
/// # Panics
/// Panics if inputs are empty or lengths differ.
pub fn evaluate_classifier<S: AsRef<str>>(
    texts: &[S],
    labels: &[bool],
    train_fraction: f64,
    seed: u64,
    sgd: SgdConfig,
    tfidf: TfidfConfig,
) -> EvalOutcome {
    assert_eq!(texts.len(), labels.len(), "texts/labels length mismatch");
    assert!(!texts.is_empty(), "cannot evaluate with no samples");

    let (train_idx, test_idx) = stratified_split(labels, train_fraction, seed);
    let train_texts: Vec<&str> = train_idx.iter().map(|&i| texts[i].as_ref()).collect();
    let test_texts: Vec<&str> = test_idx.iter().map(|&i| texts[i].as_ref()).collect();
    let train_labels = take(labels, &train_idx);
    let test_labels = take(labels, &test_idx);

    let mut vectorizer = TfidfVectorizer::new(tfidf);
    let train_vecs = vectorizer.fit_transform(&train_texts);
    let n_features = vectorizer
        .model()
        .expect("fit_transform fitted the model")
        .n_features();

    let classifier = SgdClassifier::fit(sgd, n_features, &train_vecs, &train_labels);

    let test_vecs = vectorizer.transform_batch(&test_texts);
    let predicted = classifier.predict_batch(&test_vecs);
    let report = ClassificationReport::from_labels(&predicted, &test_labels);

    EvalOutcome {
        report,
        vectorizer,
        classifier,
        sizes: (train_idx.len(), test_idx.len()),
    }
}

/// Train on the *entire* labeled corpus (no held-out evaluation); used when
/// deploying the classifier inside the measurement pipeline after its
/// quality has been established.
pub fn train_full<S: AsRef<str>>(
    texts: &[S],
    labels: &[bool],
    seed: u64,
    mut sgd: SgdConfig,
    tfidf: TfidfConfig,
) -> (TfidfVectorizer, SgdClassifier) {
    assert_eq!(texts.len(), labels.len(), "texts/labels length mismatch");
    sgd.seed = seed;
    let mut vectorizer = TfidfVectorizer::new(tfidf);
    let vecs = vectorizer.fit_transform(texts);
    let n_features = vectorizer
        .model()
        .expect("fit_transform fitted the model")
        .n_features();
    let classifier = SgdClassifier::fit(sgd, n_features, &vecs, labels);
    (vectorizer, classifier)
}

/// One operating point on a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Compute the precision–recall curve of a scored sample.
///
/// `scores` are decision values (higher = more dox-like); `labels` are the
/// ground truth. One point is produced per distinct score, thresholding at
/// `score >= threshold`, ordered from the most permissive threshold (high
/// recall) to the strictest. Useful for choosing an operating point for a
/// deployment like the §7.1 notification service, where false alarms have
/// a very different cost than missed doxes.
///
/// # Panics
/// Panics on length mismatch or when no positives exist.
pub fn precision_recall_curve(scores: &[f64], labels: &[bool]) -> Vec<PrPoint> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let total_pos = labels.iter().filter(|&&l| l).count();
    assert!(total_pos > 0, "need at least one positive sample");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));

    let mut out = Vec::new();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0usize;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume the whole tie group so each threshold appears once.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        out.push(PrPoint {
            threshold,
            precision: tp as f64 / (tp + fp) as f64,
            recall: tp as f64 / total_pos as f64,
        });
    }
    out
}

/// Area under the precision–recall curve (step-wise, as scikit-learn's
/// `average_precision_score` computes it).
pub fn average_precision(scores: &[f64], labels: &[bool]) -> f64 {
    let curve = precision_recall_curve(scores, labels);
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for p in &curve {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_textkit::tfidf::TfidfConfig;

    /// A small synthetic labeled corpus: "dox-like" vs "code-like" texts
    /// with distinct vocabulary.
    fn corpus() -> (Vec<String>, Vec<bool>) {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            texts.push(format!(
                "dox drop name victim{i} address {i} main street phone 555-01{i:02} \
                 ip 10.0.{i}.1 isp examplenet dropped by doxer{i}"
            ));
            labels.push(true);
            texts.push(format!(
                "fn func{i}() {{ let x = {i}; println!(\"value {{}}\", x); }} \
                 // snippet number {i} for the build"
            ));
            labels.push(false);
        }
        (texts, labels)
    }

    #[test]
    fn paper_protocol_reaches_high_f1_on_separable_corpus() {
        let (texts, labels) = corpus();
        let out = evaluate_classifier(
            &texts,
            &labels,
            2.0 / 3.0,
            7,
            SgdConfig::paper(),
            TfidfConfig::default(),
        );
        assert!(out.report.dox.f1 > 0.9, "report: {:?}", out.report);
        assert!(out.report.not.f1 > 0.9);
        assert_eq!(out.sizes.0 + out.sizes.1, texts.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (texts, labels) = corpus();
        let run = || {
            evaluate_classifier(
                &texts,
                &labels,
                2.0 / 3.0,
                11,
                SgdConfig::paper(),
                TfidfConfig::default(),
            )
            .report
        };
        let (a, b) = (run(), run());
        assert_eq!(a.dox.precision, b.dox.precision);
        assert_eq!(a.accuracy, b.accuracy);
    }

    #[test]
    fn split_sizes_follow_fraction() {
        let (texts, labels) = corpus();
        let out = evaluate_classifier(
            &texts,
            &labels,
            0.5,
            1,
            SgdConfig::paper(),
            TfidfConfig::default(),
        );
        assert_eq!(out.sizes.0, 60);
        assert_eq!(out.sizes.1, 60);
    }

    #[test]
    fn train_full_model_classifies_training_data() {
        let (texts, labels) = corpus();
        let (vect, clf) = train_full(
            &texts,
            &labels,
            3,
            SgdConfig::paper(),
            TfidfConfig::default(),
        );
        let correct = texts
            .iter()
            .zip(&labels)
            .filter(|(t, &y)| clf.predict(&vect.transform(t)) == y)
            .count();
        assert!(correct as f64 / texts.len() as f64 > 0.95);
    }

    #[test]
    fn pr_curve_perfect_separation() {
        let scores = [3.0, 2.0, -1.0, -2.0];
        let labels = [true, true, false, false];
        let curve = precision_recall_curve(&scores, &labels);
        // Recall rises monotonically; precision stays 1.0 until negatives
        // cross the threshold.
        assert!((curve[0].precision - 1.0).abs() < 1e-12);
        assert!((curve[1].precision - 1.0).abs() < 1e-12);
        assert!((curve[1].recall - 1.0).abs() < 1e-12);
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_handles_ties_and_inversions() {
        let scores = [1.0, 1.0, 0.5, 0.0];
        let labels = [true, false, true, false];
        let curve = precision_recall_curve(&scores, &labels);
        assert_eq!(curve.len(), 3, "one point per distinct score");
        // Tie group at 1.0: tp=1, fp=1 -> precision 0.5, recall 0.5.
        assert!((curve[0].precision - 0.5).abs() < 1e-12);
        assert!((curve[0].recall - 0.5).abs() < 1e-12);
        // Final point: everything predicted positive.
        let last = curve.last().unwrap();
        assert!((last.recall - 1.0).abs() < 1e-12);
        let ap = average_precision(&scores, &labels);
        assert!((0.0..=1.0).contains(&ap));
    }

    #[test]
    #[should_panic(expected = "at least one positive")]
    fn pr_curve_needs_positives() {
        precision_recall_curve(&[1.0], &[false]);
    }

    #[test]
    fn recall_is_monotone_on_real_scores() {
        let (texts, labels) = corpus();
        let (vect, clf) = train_full(
            &texts,
            &labels,
            5,
            SgdConfig::paper(),
            TfidfConfig::default(),
        );
        let scores: Vec<f64> = texts
            .iter()
            .map(|t| clf.decision_function(&vect.transform(t)))
            .collect();
        let curve = precision_recall_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
            assert!(w[1].threshold <= w[0].threshold);
        }
        assert!(average_precision(&scores, &labels) > 0.9);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_corpus_panics() {
        evaluate_classifier::<&str>(&[], &[], 0.5, 0, SgdConfig::paper(), TfidfConfig::default());
    }
}
