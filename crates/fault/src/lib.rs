//! `dox-fault` — deterministic fault injection and recovery.
//!
//! The paper's pipeline ran unattended for weeks against live, unreliable
//! services (pastebin's API, chan boards, OSN profile pages — §3.1.1,
//! §3.1.5). This crate gives the reproduction the same adversarial
//! weather, without giving up the repo's determinism contract: every
//! injected fault, every backoff delay and every breaker transition is a
//! pure function of a seed and the operation's identity. No wall clock,
//! no entropy.
//!
//! Three layers:
//!
//! * [`plan`] — a seeded [`FaultPlan`]: which operations experience
//!   transient timeouts / 429s / 5xx, which fail permanently, which
//!   sources suffer outage windows, which engine chunks run slow or
//!   poisoned.
//! * [`backoff`] + [`breaker`] — the recovery policy: bounded exponential
//!   backoff with seeded jitter, and per-target circuit breakers
//!   (closed → open → half-open).
//! * [`stats`] — what happened: retry accounting for observability, and
//!   [`CoverageGaps`] for the report — exhausted retries surface as
//!   explicit missed-collection counts, never silent drops.
//!
//! The driver is [`run_op`]: it walks one operation through the plan and
//! the policy in *simulated* time, returning how many attempts it took
//! (and how long the recovery virtually waited) or a [`FaultError`] once
//! retries exhaust.
//!
//! ```
//! use dox_fault::{run_op, FaultDomain, FaultPlan, FaultPlanConfig, FaultStats, RetryPolicy};
//!
//! let plan = FaultPlan::new(FaultPlanConfig {
//!     transient_ppm: 1_000_000, // every op fails at least once…
//!     max_transient_failures: 2,
//!     ..FaultPlanConfig::default()
//! });
//! let policy = RetryPolicy::default();
//! let mut stats = FaultStats::default();
//! let outcome = run_op(
//!     &plan, &policy, None, &mut stats,
//!     FaultDomain::Collect, "pastebin.com", 42, 100,
//! )
//! .expect("transient faults recover within the retry budget");
//! assert!(outcome.attempts > 1, "…but recovers deterministically");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod atomic;
pub mod backoff;
pub mod breaker;
pub mod plan;
pub mod stats;

pub use atomic::write_file_atomic;
pub use backoff::{Backoff, RetryPolicy};
pub use breaker::{BreakerConfig, BreakerSet, BreakerState, BreakerTransitions, CircuitBreaker};
pub use plan::{
    Fault, FaultDomain, FaultPlan, FaultPlanConfig, OutageWindow, StageDirective, StoreKillPoint,
};
pub use stats::{CoverageGaps, FaultStats};

/// SplitMix64 finalizer: the one hash every fault decision and jitter
/// draw derives from. Pure, seedable, entropy-free.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes — stable target-name hashing without pulling in
/// `dox-textkit` (this crate stays dependency-free below `serde`).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// An operation exhausted its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// Every attempt failed; `last` is the final fault observed.
    Exhausted {
        /// Which injection boundary the operation ran at.
        domain: FaultDomain,
        /// The target (source / network name) the operation addressed.
        target: String,
        /// The operation key (document id, probe key, chunk sequence).
        key: u64,
        /// Attempts made, including the first.
        attempts: u32,
        /// The fault the final attempt observed.
        last: Fault,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Exhausted {
                domain,
                target,
                key,
                attempts,
                ..
            } => write!(
                f,
                "{domain} op {key} against {target} still failing after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Exhausted { last, .. } => Some(last),
        }
    }
}

/// What a recovered operation cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutcome {
    /// Attempts made, including the successful one.
    pub attempts: u32,
    /// Simulated ticks between the scheduled time and the attempt that
    /// succeeded (0 when the first attempt went through).
    pub delay: u64,
    /// Times this operation's failures tripped its circuit breaker open
    /// (always 0 without a breaker). Deterministic — breaker transitions
    /// are virtual-time functions — so trace hops can carry it.
    pub breaker_trips: u32,
}

/// Drive one operation through `plan` under `policy`, in simulated time.
///
/// The operation is identified by `(domain, target, key)` and scheduled
/// at tick `at`. Each failed attempt advances a *virtual* clock by the
/// backoff delay (stretched to honor `retry_after` hints and outage
/// windows), so an op retried past the end of an outage recovers and an
/// op inside a long outage exhausts — both deterministically.
///
/// `breaker`, when provided, is consulted before every attempt: while
/// open it shifts the attempt to the end of its cooldown (half-open
/// probe) rather than dropping the operation, so breakers shape retry
/// *timing*, never document fate.
// One op is genuinely eight independent facts (plan, policy, breaker,
// stats, and the four-part op identity); bundling them into a one-shot
// struct at every call site would only rename the arguments.
#[allow(clippy::too_many_arguments)]
pub fn run_op(
    plan: &FaultPlan,
    policy: &RetryPolicy,
    mut breaker: Option<&mut CircuitBreaker>,
    stats: &mut FaultStats,
    domain: FaultDomain,
    target: &str,
    key: u64,
    at: u64,
) -> Result<OpOutcome, FaultError> {
    stats.ops += 1;
    let opened_before = breaker.as_deref().map_or(0, |b| b.transitions().opened);
    let mut virtual_at = at;
    let mut attempt = 0u32;
    loop {
        if let Some(b) = breaker.as_deref_mut() {
            virtual_at = b.admit_at(virtual_at);
        }
        match plan.fault_for(domain, target, key, virtual_at, attempt) {
            None => {
                let opened_after = breaker.as_deref().map_or(0, |b| b.transitions().opened);
                if let Some(b) = breaker.as_deref_mut() {
                    b.on_success();
                }
                return Ok(OpOutcome {
                    attempts: attempt + 1,
                    delay: virtual_at.saturating_sub(at),
                    breaker_trips: u32::try_from(opened_after.saturating_sub(opened_before))
                        .unwrap_or(u32::MAX),
                });
            }
            Some(fault) => {
                stats.faults_injected += 1;
                if let Some(b) = breaker.as_deref_mut() {
                    b.on_failure(virtual_at);
                }
                if attempt >= policy.max_retries {
                    stats.exhausted += 1;
                    return Err(FaultError::Exhausted {
                        domain,
                        target: target.to_string(),
                        key,
                        attempts: attempt + 1,
                        last: fault,
                    });
                }
                stats.retries += 1;
                let mut next = virtual_at.saturating_add(policy.backoff.delay(attempt));
                match fault {
                    Fault::RateLimited { retry_after } => {
                        stats.rate_limit_waits += 1;
                        next = next.max(virtual_at.saturating_add(retry_after));
                    }
                    Fault::Outage { until } => next = next.max(until),
                    Fault::Timeout | Fault::ServerError { .. } => {}
                }
                virtual_at = next;
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plan() -> FaultPlan {
        FaultPlan::new(FaultPlanConfig {
            transient_ppm: 400_000,
            max_transient_failures: 3,
            rate_limited_ppm: 300_000,
            ..FaultPlanConfig::default()
        })
    }

    #[test]
    fn healthy_plan_never_faults() {
        let plan = FaultPlan::healthy();
        let policy = RetryPolicy::default();
        let mut stats = FaultStats::default();
        for key in 0..500 {
            let out = run_op(
                &plan,
                &policy,
                None,
                &mut stats,
                FaultDomain::Collect,
                "pastebin.com",
                key,
                key * 7,
            )
            .expect("healthy plan");
            assert_eq!(out.attempts, 1);
            assert_eq!(out.delay, 0);
        }
        assert_eq!(stats.faults_injected, 0);
        assert_eq!(stats.ops, 500);
    }

    #[test]
    fn transient_faults_recover_within_budget() {
        let plan = noisy_plan();
        let policy = RetryPolicy::default();
        let mut stats = FaultStats::default();
        let mut saw_retry = false;
        for key in 0..2_000 {
            let out = run_op(
                &plan,
                &policy,
                None,
                &mut stats,
                FaultDomain::Collect,
                "4chan.org/b",
                key,
                0,
            )
            .expect("max_transient_failures <= max_retries recovers by construction");
            if out.attempts > 1 {
                saw_retry = true;
                assert!(out.delay > 0, "recovery must cost virtual time");
            }
        }
        assert!(saw_retry, "a 40% transient rate must hit some ops");
        assert_eq!(stats.exhausted, 0);
        assert!(stats.retries > 0);
    }

    #[test]
    fn hard_faults_exhaust_and_chain_their_cause() {
        let plan = FaultPlan::new(FaultPlanConfig {
            hard_ppm: 1_000_000,
            ..FaultPlanConfig::default()
        });
        let policy = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let mut stats = FaultStats::default();
        let err = run_op(
            &plan,
            &policy,
            None,
            &mut stats,
            FaultDomain::Probe,
            "facebook.com",
            9,
            50,
        )
        .unwrap_err();
        let FaultError::Exhausted { attempts, .. } = &err;
        assert_eq!(*attempts, 3, "initial try + 2 retries");
        assert!(
            std::error::Error::source(&err).is_some(),
            "chains the fault"
        );
        assert_eq!(stats.exhausted, 1);
    }

    #[test]
    fn runs_are_byte_reproducible() {
        let run = || {
            let plan = noisy_plan();
            let policy = RetryPolicy::default();
            let mut stats = FaultStats::default();
            let outcomes: Vec<_> = (0..300)
                .map(|key| {
                    run_op(
                        &plan,
                        &policy,
                        None,
                        &mut stats,
                        FaultDomain::Collect,
                        "8ch.net/pol",
                        key,
                        key,
                    )
                })
                .collect();
            (outcomes, stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn outage_windows_recover_once_the_window_passes() {
        let plan = FaultPlan::new(FaultPlanConfig {
            outages: vec![OutageWindow {
                domain: FaultDomain::Collect,
                target: "pastebin.com".into(),
                from: 0,
                until: 100,
            }],
            ..FaultPlanConfig::default()
        });
        let policy = RetryPolicy::default();
        let mut stats = FaultStats::default();
        // Scheduled inside the window: the retry loop jumps to its end.
        let out = run_op(
            &plan,
            &policy,
            None,
            &mut stats,
            FaultDomain::Collect,
            "pastebin.com",
            1,
            10,
        )
        .expect("retries outlive the outage");
        assert!(out.delay >= 90, "waited for the window to close");
        // Unrelated target is untouched.
        let other = run_op(
            &plan,
            &policy,
            None,
            &mut stats,
            FaultDomain::Collect,
            "4chan.org/b",
            1,
            10,
        )
        .expect("no outage for this target");
        assert_eq!(other.attempts, 1);
    }

    #[test]
    fn breaker_opens_under_hard_failure_and_shifts_attempts() {
        let plan = FaultPlan::new(FaultPlanConfig {
            hard_ppm: 1_000_000,
            ..FaultPlanConfig::default()
        });
        let policy = RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        };
        let mut stats = FaultStats::default();
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: 1_000,
        });
        for key in 0..5 {
            let _ = run_op(
                &plan,
                &policy,
                Some(&mut b),
                &mut stats,
                FaultDomain::Collect,
                "pastebin.com",
                key,
                key,
            );
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.transitions().opened >= 1);
        assert_eq!(stats.exhausted, 5);
    }

    #[test]
    fn error_messages_name_the_boundary_without_leaking_content() {
        let err = FaultError::Exhausted {
            domain: FaultDomain::Probe,
            target: "instagram.com".into(),
            key: 7,
            attempts: 4,
            last: Fault::Timeout,
        };
        let msg = err.to_string();
        assert!(msg.contains("probe"));
        assert!(msg.contains("instagram.com"));
        assert!(msg.contains('4'));
    }
}
