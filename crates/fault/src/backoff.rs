//! Bounded exponential backoff with seeded jitter.
//!
//! The delay schedule is the classic doubling ramp, capped, with
//! proportional jitter drawn from the seed — and it is *provably
//! monotone*: because the jitter span never exceeds the raw delay
//! (`jitter_ppm` is clamped to one million), `delay(n) ≤ 2·raw(n) =
//! raw(n+1) ≤ delay(n+1)` below the cap, and everything at or above the
//! cap is exactly the cap. The property tests in
//! `crates/fault/tests/backoff_props.rs` hold the proof to account.

use crate::mix;
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// The backoff schedule: `delay(n) = min(cap, base·2ⁿ + jitter(n))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Backoff {
    /// First delay, in ticks (clamped to ≥ 1).
    pub base: u64,
    /// Upper bound on any delay, in ticks.
    pub cap: u64,
    /// Jitter span as parts-per-million of the raw delay, clamped to
    /// 1 000 000 (jitter never exceeds the raw delay, preserving
    /// monotonicity).
    pub jitter_ppm: u32,
    /// Seed the jitter draws derive from.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            base: 1,
            cap: 240,
            jitter_ppm: 250_000,
            seed: 0,
        }
    }
}

impl Backoff {
    /// The delay, in ticks, to wait after failed attempt `attempt`
    /// (0-based). Monotonically non-decreasing in `attempt`, never above
    /// `cap`, and a pure function of `(self, attempt)`.
    pub fn delay(&self, attempt: u32) -> u64 {
        let base = self.base.max(1);
        let cap = self.cap.max(base);
        let raw = if attempt >= 63 {
            cap
        } else {
            base.saturating_mul(1u64 << attempt).min(cap)
        };
        if raw >= cap {
            return cap;
        }
        let jitter_ppm = u128::from(self.jitter_ppm.min(1_000_000));
        let span = (u128::from(raw) * jitter_ppm / 1_000_000) as u64;
        let jitter = if span == 0 {
            0
        } else {
            mix(self.seed ^ (u64::from(attempt) << 1) ^ 0xBAC0FF) % (span + 1)
        };
        raw.saturating_add(jitter).min(cap)
    }
}

// Hand-written: the vendored serde derives `Serialize` only. Missing
// fields fall back to defaults; unknown fields are rejected.
impl Deserialize for Backoff {
    fn from_value(value: &Value) -> Option<Self> {
        let mut backoff = Backoff::default();
        for (field, v) in value.as_object()? {
            match field.as_str() {
                "base" => backoff.base = v.as_u64()?,
                "cap" => backoff.cap = v.as_u64()?,
                "jitter_ppm" => backoff.jitter_ppm = u32::try_from(v.as_u64()?).ok()?,
                "seed" => backoff.seed = v.as_u64()?,
                _ => return None,
            }
        }
        Some(backoff)
    }
}

/// How many times to retry, and how to wait between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (an op runs at most
    /// `max_retries + 1` times).
    pub max_retries: u32,
    /// The backoff schedule between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            backoff: Backoff::default(),
        }
    }
}

impl Deserialize for RetryPolicy {
    fn from_value(value: &Value) -> Option<Self> {
        let mut policy = RetryPolicy::default();
        for (field, v) in value.as_object()? {
            match field.as_str() {
                "max_retries" => policy.max_retries = u32::try_from(v.as_u64()?).ok()?,
                "backoff" => policy.backoff = Backoff::from_value(v)?,
                _ => return None,
            }
        }
        Some(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_until_the_cap() {
        let b = Backoff {
            base: 2,
            cap: 100,
            jitter_ppm: 0,
            seed: 0,
        };
        let delays: Vec<u64> = (0..8).map(|n| b.delay(n)).collect();
        assert_eq!(delays, vec![2, 4, 8, 16, 32, 64, 100, 100]);
    }

    #[test]
    fn jitter_stays_proportional_and_reproducible() {
        let b = Backoff {
            base: 10,
            cap: 10_000,
            jitter_ppm: 500_000,
            seed: 42,
        };
        for n in 0..8 {
            let d = b.delay(n);
            let raw = 10u64 << n;
            assert!(d >= raw && d <= raw + raw / 2, "attempt {n}: {d}");
            assert_eq!(d, b.delay(n), "reproducible");
        }
        let other = Backoff { seed: 43, ..b };
        assert!(
            (0..8).any(|n| b.delay(n) != other.delay(n)),
            "different seeds draw different jitter"
        );
    }

    #[test]
    fn degenerate_configs_stay_sane() {
        let zero = Backoff {
            base: 0,
            cap: 0,
            jitter_ppm: 2_000_000,
            seed: 1,
        };
        // base clamps to 1, cap clamps to base, jitter clamps to 100%.
        assert_eq!(zero.delay(0), 1);
        assert_eq!(zero.delay(63), 1);
        let huge = Backoff {
            base: u64::MAX / 2,
            cap: u64::MAX,
            jitter_ppm: 1_000_000,
            seed: 1,
        };
        // Would overflow-panic in debug if the ramp wrapped instead of
        // saturating.
        assert!(huge.delay(70) >= huge.base, "saturates, never wraps");
    }
}
