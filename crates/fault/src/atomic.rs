//! Crash-safe file replacement.
//!
//! Every durable artifact in this workspace — study checkpoints, store
//! manifests, tenant state — is published the same way: write the new
//! content to a sibling temp file, fsync it, rename it over the target,
//! then fsync the directory so the rename itself survives a power cut.
//! A reader therefore sees either the old file or the new one, never a
//! torn hybrid, and a crash at any instant leaves at most a stray
//! `.tmp` sibling behind.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Atomically replace `path` with `bytes`.
///
/// The temp file is `path` with `.tmp` appended, so concurrent writers
/// to *different* targets never collide. Callers that need multi-file
/// atomicity must funnel through a single manifest written with this
/// helper and treat everything it does not reference as garbage.
///
/// # Errors
/// Any I/O error from the write, fsync, or rename; the target is left
/// untouched in that case.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// The temp-sibling path `write_file_atomic` stages through, exposed so
/// recovery scans can recognize and discard a stray staging file.
pub fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsync the parent directory of `path` so a just-completed rename is
/// durable. A missing parent (relative path with no directory part)
/// falls back to `.`; platforms that refuse directory fsyncs are
/// tolerated because the rename is already atomic for crash-consistency
/// against process death, which is what the fault drills simulate.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    let dir = parent.unwrap_or_else(|| Path::new("."));
    match File::open(dir) {
        Ok(handle) => match handle.sync_all() {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
            Err(e) => Err(e),
        },
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dox_fault_atomic_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn replaces_content_atomically_and_cleans_tmp() {
        let dir = scratch("replace");
        let target = dir.join("state.json");
        write_file_atomic(&target, b"one").expect("first write");
        assert_eq!(fs::read(&target).expect("read"), b"one");
        write_file_atomic(&target, b"two").expect("second write");
        assert_eq!(fs::read(&target).expect("read"), b"two");
        assert!(!tmp_sibling(&target).exists(), "tmp sibling is consumed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_sibling_is_a_distinct_sibling() {
        let p = Path::new("/a/b/manifest.json");
        let t = tmp_sibling(p);
        assert_eq!(t.parent(), p.parent());
        assert_eq!(
            t.file_name().and_then(|n| n.to_str()),
            Some("manifest.json.tmp")
        );
    }
}
