//! The deterministic fault plan.
//!
//! A [`FaultPlan`] decides, for every operation the pipeline performs,
//! whether that operation's n-th attempt fails and how. Decisions are a
//! pure function of `(plan seed, domain, target, key, attempt)` plus the
//! operation's *virtual* time (outage windows only) — the same plan
//! replayed over the same stream injects byte-identical weather, which is
//! what makes the fault-matrix and kill/resume tests able to demand
//! byte-identical reports.
//!
//! Directive semantics are chosen so recovery is decidable up front:
//!
//! * a **transient** op fails its first `1..=max_transient_failures`
//!   attempts and then succeeds — recoverable by construction whenever
//!   `max_transient_failures <= max_retries`;
//! * a **hard** op fails every attempt — a deterministic coverage gap;
//! * an **outage** fails any attempt whose virtual time falls inside the
//!   window — recoverable iff the retry schedule outlives the window.

use crate::{fnv1a, mix};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Where in the pipeline a fault is injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum FaultDomain {
    /// The `Collector`/`SiteHub` fetch boundary (document collection).
    #[default]
    Collect,
    /// The OSN `Scraper` status-probe path.
    Probe,
    /// The OSN comment-fetch path (§5.3.2 analysis).
    Comments,
    /// The engine's stage workers (slow / poisoned chunks).
    Stage,
}

impl FaultDomain {
    /// Stable lowercase name (metric keys, error messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultDomain::Collect => "collect",
            FaultDomain::Probe => "probe",
            FaultDomain::Comments => "comments",
            FaultDomain::Stage => "stage",
        }
    }

    fn salt(self) -> u64 {
        match self {
            FaultDomain::Collect => 0x0C01_1EC7,
            FaultDomain::Probe => 0x0B0B_0E50,
            FaultDomain::Comments => 0xC0_33E7,
            FaultDomain::Stage => 0x57A6_E000,
        }
    }
}

impl std::fmt::Display for FaultDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// The vendored serde has no derive for `Deserialize`; plan files are
// parsed by hand off the value tree, with unknown fields rejected so a
// typo in a `--fault-plan` file fails loudly instead of silently meaning
// "default".
impl Deserialize for FaultDomain {
    fn from_value(value: &Value) -> Option<Self> {
        match value.as_str()? {
            "Collect" => Some(FaultDomain::Collect),
            "Probe" => Some(FaultDomain::Probe),
            "Comments" => Some(FaultDomain::Comments),
            "Stage" => Some(FaultDomain::Stage),
            _ => None,
        }
    }
}

/// Where inside a store checkpoint a simulated SIGKILL lands.
///
/// The interesting window for crash-consistency drills is the one the
/// commit protocol is built around: segment data is written and fsync'd
/// *before* the manifest swap publishes it, so a kill between the two
/// must recover to the previous manifest with the tail discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub enum StoreKillPoint {
    /// Before any segment bytes of this checkpoint reach the file.
    BeforeSegmentWrite,
    /// After the segment write + fsync, before the manifest swap — the
    /// canonical torn-commit window.
    #[default]
    BetweenWriteAndSwap,
    /// After the manifest swap (the commit already happened).
    AfterManifestSwap,
}

impl StoreKillPoint {
    /// Stable lowercase name (plan files, error messages).
    pub fn name(self) -> &'static str {
        match self {
            StoreKillPoint::BeforeSegmentWrite => "before_segment_write",
            StoreKillPoint::BetweenWriteAndSwap => "between_write_and_swap",
            StoreKillPoint::AfterManifestSwap => "after_manifest_swap",
        }
    }
}

impl Deserialize for StoreKillPoint {
    fn from_value(value: &Value) -> Option<Self> {
        match value.as_str()? {
            "BeforeSegmentWrite" | "before_segment_write" => {
                Some(StoreKillPoint::BeforeSegmentWrite)
            }
            "BetweenWriteAndSwap" | "between_write_and_swap" => {
                Some(StoreKillPoint::BetweenWriteAndSwap)
            }
            "AfterManifestSwap" | "after_manifest_swap" => Some(StoreKillPoint::AfterManifestSwap),
            _ => None,
        }
    }
}

/// One injected failure, HTTP-shaped where the analogy holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Fault {
    /// The request hung and timed out.
    Timeout,
    /// HTTP 429: the service asked the client to back off.
    RateLimited {
        /// Ticks the service asked the client to wait.
        retry_after: u64,
    },
    /// HTTP 5xx-style server error.
    ServerError {
        /// The simulated status code (e.g. 500, 503).
        code: u16,
    },
    /// The target is inside a scheduled outage window.
    Outage {
        /// Tick at which the window closes.
        until: u64,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Timeout => write!(f, "request timed out"),
            Fault::RateLimited { retry_after } => {
                write!(f, "rate limited (retry after {retry_after} ticks)")
            }
            Fault::ServerError { code } => write!(f, "server error {code}"),
            Fault::Outage { until } => write!(f, "source outage until tick {until}"),
        }
    }
}

impl std::error::Error for Fault {}

/// A scheduled partial outage of one target in one domain.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct OutageWindow {
    /// Injection boundary the outage applies to.
    pub domain: FaultDomain,
    /// Target name (a source like `"pastebin.com"` or a network like
    /// `"facebook.com"`).
    pub target: String,
    /// First tick of the outage (inclusive).
    pub from: u64,
    /// First tick after the outage (exclusive).
    pub until: u64,
}

impl Deserialize for OutageWindow {
    fn from_value(value: &Value) -> Option<Self> {
        let mut window = OutageWindow::default();
        for (field, v) in value.as_object()? {
            match field.as_str() {
                "domain" => window.domain = FaultDomain::from_value(v)?,
                "target" => window.target = v.as_str()?.to_string(),
                "from" => window.from = v.as_u64()?,
                "until" => window.until = v.as_u64()?,
                _ => return None,
            }
        }
        Some(window)
    }
}

/// The serializable fault-plan format (`--fault-plan file.json`).
///
/// All rates are parts-per-million so the config stays `Eq` and
/// byte-stable across platforms. Everything defaults to zero: the default
/// plan is all-healthy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FaultPlanConfig {
    /// Seed all fault decisions derive from (independent of the run seed
    /// so the same weather can be replayed over different corpora).
    pub seed: u64,
    /// Probability (ppm) that an operation experiences transient
    /// failures before succeeding.
    pub transient_ppm: u32,
    /// A transient op fails its first `1..=max_transient_failures`
    /// attempts (drawn per op). Keep `<= max_retries` for guaranteed
    /// recovery.
    pub max_transient_failures: u32,
    /// Probability (ppm) that an operation fails on *every* attempt — a
    /// deterministic coverage gap.
    pub hard_ppm: u32,
    /// Share (ppm) of injected failures presenting as HTTP 429 instead
    /// of a timeout / 5xx.
    pub rate_limited_ppm: u32,
    /// `Retry-After` hint carried by injected 429s, in ticks.
    pub retry_after: u64,
    /// Status code carried by injected server errors.
    pub server_error_code: u16,
    /// Scheduled partial outages.
    pub outages: Vec<OutageWindow>,
    /// Probability (ppm) that an engine chunk is processed by a slow
    /// worker (scheduling pressure only; never affects results).
    pub slow_chunk_ppm: u32,
    /// How many cooperative yields a slow chunk inserts.
    pub slow_chunk_yields: u32,
    /// Probability (ppm) that an engine chunk hits a poisoned worker and
    /// fails `1..=max_transient_failures` times.
    pub poison_chunk_ppm: u32,
    /// Halt ingest after this many documents (kill/resume drills). The
    /// study surfaces the halt as an explicit error, mimicking a crash at
    /// that point in the stream.
    pub kill_after_docs: Option<u64>,
    /// Die inside the n-th (1-based) store checkpoint commit — the
    /// durability twin of `kill_after_docs`, aimed at the segment-write /
    /// manifest-swap window instead of the ingest stream.
    pub kill_at_store_commit: Option<u64>,
    /// Where inside that commit the kill lands.
    pub kill_store_point: StoreKillPoint,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            transient_ppm: 0,
            max_transient_failures: 2,
            hard_ppm: 0,
            rate_limited_ppm: 250_000,
            retry_after: 30,
            server_error_code: 503,
            outages: Vec::new(),
            slow_chunk_ppm: 0,
            slow_chunk_yields: 64,
            poison_chunk_ppm: 0,
            kill_after_docs: None,
            kill_at_store_commit: None,
            kill_store_point: StoreKillPoint::default(),
        }
    }
}

impl Deserialize for FaultPlanConfig {
    fn from_value(value: &Value) -> Option<Self> {
        let mut config = FaultPlanConfig::default();
        for (field, v) in value.as_object()? {
            match field.as_str() {
                "seed" => config.seed = v.as_u64()?,
                "transient_ppm" => config.transient_ppm = u32::try_from(v.as_u64()?).ok()?,
                "max_transient_failures" => {
                    config.max_transient_failures = u32::try_from(v.as_u64()?).ok()?;
                }
                "hard_ppm" => config.hard_ppm = u32::try_from(v.as_u64()?).ok()?,
                "rate_limited_ppm" => config.rate_limited_ppm = u32::try_from(v.as_u64()?).ok()?,
                "retry_after" => config.retry_after = v.as_u64()?,
                "server_error_code" => {
                    config.server_error_code = u16::try_from(v.as_u64()?).ok()?;
                }
                "outages" => {
                    config.outages = v
                        .as_array()?
                        .iter()
                        .map(OutageWindow::from_value)
                        .collect::<Option<Vec<_>>>()?;
                }
                "slow_chunk_ppm" => config.slow_chunk_ppm = u32::try_from(v.as_u64()?).ok()?,
                "slow_chunk_yields" => {
                    config.slow_chunk_yields = u32::try_from(v.as_u64()?).ok()?;
                }
                "poison_chunk_ppm" => config.poison_chunk_ppm = u32::try_from(v.as_u64()?).ok()?,
                "kill_after_docs" => {
                    config.kill_after_docs = match v {
                        Value::Null => None,
                        other => Some(other.as_u64()?),
                    };
                }
                "kill_at_store_commit" => {
                    config.kill_at_store_commit = match v {
                        Value::Null => None,
                        other => Some(other.as_u64()?),
                    };
                }
                "kill_store_point" => config.kill_store_point = StoreKillPoint::from_value(v)?,
                _ => return None,
            }
        }
        Some(config)
    }
}

impl FaultPlanConfig {
    /// The all-healthy plan: injects nothing anywhere.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing (rates zero, no outages, no
    /// kill point).
    pub fn is_healthy(&self) -> bool {
        self.transient_ppm == 0
            && self.hard_ppm == 0
            && self.outages.is_empty()
            && self.slow_chunk_ppm == 0
            && self.poison_chunk_ppm == 0
            && self.kill_after_docs.is_none()
            && self.kill_at_store_commit.is_none()
    }

    /// A stable hash of the plan, used to fingerprint checkpoints so a
    /// resume under a *different* plan is rejected instead of silently
    /// diverging.
    ///
    /// `kill_after_docs` and `kill_at_store_commit`/`kill_store_point`
    /// are deliberately excluded: a kill switch is an execution event (a
    /// simulated SIGKILL), not fault weather, and the natural resume
    /// workflow re-runs the same plan *without* the kill.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix(self.seed ^ 0xFA_0717);
        for v in [
            u64::from(self.transient_ppm),
            u64::from(self.max_transient_failures),
            u64::from(self.hard_ppm),
            u64::from(self.rate_limited_ppm),
            self.retry_after,
            u64::from(self.server_error_code),
            u64::from(self.slow_chunk_ppm),
            u64::from(self.slow_chunk_yields),
            u64::from(self.poison_chunk_ppm),
        ] {
            h = mix(h ^ v);
        }
        for w in &self.outages {
            h = mix(h ^ w.domain.salt());
            h = mix(h ^ fnv1a(w.target.as_bytes()));
            h = mix(h ^ w.from);
            h = mix(h ^ w.until);
        }
        h
    }
}

/// What the plan tells an engine stage worker about one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageDirective {
    /// Process normally.
    Healthy,
    /// Process after this many cooperative yields (a slow worker under
    /// scheduling pressure; results unaffected).
    Slow {
        /// Yields to insert before processing.
        yields: u32,
    },
    /// The worker "panics" this many times on the chunk before a retry
    /// would succeed. When `failures` exceeds the retry budget, every
    /// document in the chunk becomes a stage coverage gap.
    Poison {
        /// Consecutive failures a retrying worker would observe.
        failures: u32,
    },
}

/// A compiled fault plan — the read-only decision oracle every injection
/// boundary consults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    config: FaultPlanConfig,
}

const SALT_HARD: u64 = 0x4A2D;
const SALT_TRANSIENT: u64 = 0x7247;
const SALT_COUNT: u64 = 0xC047;
const SALT_KIND: u64 = 0x174D;
const SALT_STAGE_SLOW: u64 = 0x510;
const SALT_STAGE_POISON: u64 = 0xB0;

impl FaultPlan {
    /// Compile a plan.
    pub fn new(config: FaultPlanConfig) -> Self {
        Self { config }
    }

    /// The all-healthy plan.
    pub fn healthy() -> Self {
        Self::new(FaultPlanConfig::healthy())
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.config
    }

    /// The configured ingest kill point, if any.
    pub fn kill_after_docs(&self) -> Option<u64> {
        self.config.kill_after_docs
    }

    /// The configured store-commit kill point, if any: the 1-based
    /// checkpoint ordinal to die in, and where inside the commit.
    pub fn kill_at_store_commit(&self) -> Option<(u64, StoreKillPoint)> {
        self.config
            .kill_at_store_commit
            .map(|nth| (nth, self.config.kill_store_point))
    }

    fn decision(&self, domain: FaultDomain, target: &str, key: u64, salt: u64) -> u64 {
        let mut h = mix(self.config.seed ^ salt);
        h = mix(h ^ domain.salt());
        h = mix(h ^ fnv1a(target.as_bytes()));
        mix(h ^ key)
    }

    fn ppm_hit(h: u64, ppm: u32) -> bool {
        (h % 1_000_000) < u64::from(ppm)
    }

    /// The fault kind an op's failed attempts present as.
    fn failure_kind(&self, domain: FaultDomain, target: &str, key: u64, attempt: u32) -> Fault {
        let h = self.decision(domain, target, key ^ (u64::from(attempt) << 48), SALT_KIND);
        if Self::ppm_hit(h, self.config.rate_limited_ppm) {
            Fault::RateLimited {
                retry_after: self.config.retry_after,
            }
        } else if h & (1 << 20) == 0 {
            Fault::Timeout
        } else {
            Fault::ServerError {
                code: self.config.server_error_code,
            }
        }
    }

    /// Decide whether attempt `attempt` (0-based) of the operation
    /// `(domain, target, key)` fails at virtual time `at`.
    ///
    /// Only outage windows read `at`; the transient/hard draws are
    /// attempt-schedule decisions fixed per op, which is what guarantees
    /// a transient op recovers on the same attempt in every replay.
    pub fn fault_for(
        &self,
        domain: FaultDomain,
        target: &str,
        key: u64,
        at: u64,
        attempt: u32,
    ) -> Option<Fault> {
        for w in &self.config.outages {
            if w.domain == domain && w.target == target && at >= w.from && at < w.until {
                return Some(Fault::Outage { until: w.until });
            }
        }
        if Self::ppm_hit(
            self.decision(domain, target, key, SALT_HARD),
            self.config.hard_ppm,
        ) {
            return Some(self.failure_kind(domain, target, key, attempt));
        }
        if Self::ppm_hit(
            self.decision(domain, target, key, SALT_TRANSIENT),
            self.config.transient_ppm,
        ) {
            let span = u64::from(self.config.max_transient_failures.max(1));
            let failures = 1 + (self.decision(domain, target, key, SALT_COUNT) % span) as u32;
            if attempt < failures {
                return Some(self.failure_kind(domain, target, key, attempt));
            }
        }
        None
    }

    /// The directive for engine chunk `chunk_seq`. Poison wins over slow
    /// when both draws hit.
    pub fn stage_directive(&self, chunk_seq: u64) -> StageDirective {
        if Self::ppm_hit(
            self.decision(FaultDomain::Stage, "", chunk_seq, SALT_STAGE_POISON),
            self.config.poison_chunk_ppm,
        ) {
            let span = u64::from(self.config.max_transient_failures.max(1));
            let failures =
                1 + (self.decision(FaultDomain::Stage, "", chunk_seq, SALT_COUNT) % span) as u32;
            return StageDirective::Poison { failures };
        }
        if Self::ppm_hit(
            self.decision(FaultDomain::Stage, "", chunk_seq, SALT_STAGE_SLOW),
            self.config.slow_chunk_ppm,
        ) {
            return StageDirective::Slow {
                yields: self.config.slow_chunk_yields,
            };
        }
        StageDirective::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_target_sensitive() {
        let plan = FaultPlan::new(FaultPlanConfig {
            transient_ppm: 500_000,
            ..FaultPlanConfig::default()
        });
        for key in 0..200 {
            assert_eq!(
                plan.fault_for(FaultDomain::Collect, "pastebin.com", key, 0, 0),
                plan.fault_for(FaultDomain::Collect, "pastebin.com", key, 0, 0),
            );
        }
        // Different targets / domains draw independently: with 200 ops at
        // 50% the two streams cannot be identical unless the hash ignores
        // its inputs.
        let a: Vec<bool> = (0..200)
            .map(|k| {
                plan.fault_for(FaultDomain::Collect, "pastebin.com", k, 0, 0)
                    .is_some()
            })
            .collect();
        let b: Vec<bool> = (0..200)
            .map(|k| {
                plan.fault_for(FaultDomain::Collect, "4chan.org/b", k, 0, 0)
                    .is_some()
            })
            .collect();
        let c: Vec<bool> = (0..200)
            .map(|k| {
                plan.fault_for(FaultDomain::Probe, "pastebin.com", k, 0, 0)
                    .is_some()
            })
            .collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn transient_ops_fail_then_succeed_on_a_fixed_attempt() {
        let plan = FaultPlan::new(FaultPlanConfig {
            transient_ppm: 1_000_000,
            max_transient_failures: 3,
            ..FaultPlanConfig::default()
        });
        for key in 0..100 {
            let mut failures = 0;
            for attempt in 0..10 {
                match plan.fault_for(FaultDomain::Collect, "s", key, 0, attempt) {
                    Some(_) => {
                        assert_eq!(attempt, failures, "failures are a prefix of attempts");
                        failures += 1;
                    }
                    None => break,
                }
            }
            assert!((1..=3).contains(&failures));
        }
    }

    #[test]
    fn hard_ops_never_succeed() {
        let plan = FaultPlan::new(FaultPlanConfig {
            hard_ppm: 1_000_000,
            ..FaultPlanConfig::default()
        });
        for attempt in 0..50 {
            assert!(plan
                .fault_for(FaultDomain::Collect, "s", 1, 0, attempt)
                .is_some());
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::new(FaultPlanConfig {
            transient_ppm: 100_000, // 10%
            ..FaultPlanConfig::default()
        });
        let hits = (0..10_000u64)
            .filter(|&k| plan.fault_for(FaultDomain::Collect, "s", k, 0, 0).is_some())
            .count();
        assert!((700..1300).contains(&hits), "10% of 10k, got {hits}");
    }

    #[test]
    fn stage_directives_cover_all_kinds() {
        let plan = FaultPlan::new(FaultPlanConfig {
            slow_chunk_ppm: 300_000,
            poison_chunk_ppm: 300_000,
            max_transient_failures: 2,
            ..FaultPlanConfig::default()
        });
        let mut slow = 0;
        let mut poison = 0;
        let mut healthy = 0;
        for seq in 0..1_000 {
            match plan.stage_directive(seq) {
                StageDirective::Healthy => healthy += 1,
                StageDirective::Slow { yields } => {
                    assert_eq!(yields, 64);
                    slow += 1;
                }
                StageDirective::Poison { failures } => {
                    assert!((1..=2).contains(&failures));
                    poison += 1;
                }
            }
        }
        assert!(
            slow > 0 && poison > 0 && healthy > 0,
            "{slow}/{poison}/{healthy}"
        );
    }

    #[test]
    fn healthy_detection_and_fingerprints() {
        assert!(FaultPlanConfig::healthy().is_healthy());
        let mut noisy = FaultPlanConfig::healthy();
        noisy.transient_ppm = 1;
        assert!(!noisy.is_healthy());
        assert_ne!(
            noisy.fingerprint(),
            FaultPlanConfig::healthy().fingerprint()
        );
        let mut killed = FaultPlanConfig::healthy();
        killed.kill_after_docs = Some(10);
        assert!(!killed.is_healthy());
        // The kill switch is an execution event, not fault weather: a
        // resumed run (same weather, no kill) must still match the
        // checkpoint its killed twin wrote.
        assert_eq!(
            killed.fingerprint(),
            FaultPlanConfig::healthy().fingerprint()
        );
        let mut store_killed = FaultPlanConfig::healthy();
        store_killed.kill_at_store_commit = Some(2);
        store_killed.kill_store_point = StoreKillPoint::BetweenWriteAndSwap;
        assert!(!store_killed.is_healthy());
        // Same rationale as `kill_after_docs`: the store kill is a
        // simulated crash, not weather, so the resumed twin (no kill)
        // must accept the checkpoint the killed run committed.
        assert_eq!(
            store_killed.fingerprint(),
            FaultPlanConfig::healthy().fingerprint()
        );
    }

    #[test]
    fn store_kill_config_round_trips_and_rejects_junk() {
        let parsed: FaultPlanConfig = serde_json::from_str(
            r#"{"kill_at_store_commit": 3, "kill_store_point": "between_write_and_swap"}"#,
        )
        .expect("store kill config");
        assert_eq!(parsed.kill_at_store_commit, Some(3));
        assert_eq!(parsed.kill_store_point, StoreKillPoint::BetweenWriteAndSwap);
        let plan = FaultPlan::new(parsed);
        assert_eq!(
            plan.kill_at_store_commit(),
            Some((3, StoreKillPoint::BetweenWriteAndSwap))
        );
        assert!(
            serde_json::from_str::<FaultPlanConfig>(r#"{"kill_store_point": "sideways"}"#).is_err()
        );
    }

    #[test]
    fn config_round_trips_through_json_with_defaults() {
        let parsed: FaultPlanConfig =
            serde_json::from_str(r#"{"transient_ppm": 5000, "seed": 7}"#).expect("partial config");
        assert_eq!(parsed.transient_ppm, 5_000);
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.max_transient_failures, 2, "defaults fill the rest");
        let json = serde_json::to_string(&parsed).expect("serializes");
        let back: FaultPlanConfig = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back, parsed);
    }
}
