//! Recovery accounting.
//!
//! Two ledgers with very different destinations:
//!
//! * [`FaultStats`] — how hard the recovery machinery worked (attempts,
//!   retries, rate-limit waits, breaker transitions). Observability only:
//!   these numbers feed metrics and events and are **never** written into
//!   the `ExperimentReport`, because a recovered run must stay
//!   byte-identical to a fault-free one.
//! * [`CoverageGaps`] — what was *lost* despite recovery (exhausted
//!   retries, poisoned chunks). This is report-bound data: the paper's
//!   own §3.1.1 caveat about unobservable deleted pastes, generalized —
//!   a gap is an explicit count, never a silent drop.

use serde::Serialize;
use std::collections::BTreeMap;

/// Retry-machinery counters (observability only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Operations driven through the plan.
    pub ops: u64,
    /// Faults injected across all attempts.
    pub faults_injected: u64,
    /// Retries performed (attempts beyond each op's first).
    pub retries: u64,
    /// Retries whose wait honored a `Retry-After` hint.
    pub rate_limit_waits: u64,
    /// Operations that exhausted their retry budget.
    pub exhausted: u64,
    /// Breaker transitions to open.
    pub breaker_opens: u64,
    /// Breaker transitions to half-open.
    pub breaker_half_opens: u64,
    /// Breaker transitions back to closed.
    pub breaker_closes: u64,
}

impl FaultStats {
    /// Fold `other` into `self`, field by field.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.ops += other.ops;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.rate_limit_waits += other.rate_limit_waits;
        self.exhausted += other.exhausted;
        self.breaker_opens += other.breaker_opens;
        self.breaker_half_opens += other.breaker_half_opens;
        self.breaker_closes += other.breaker_closes;
    }
}

/// What the run failed to observe, by boundary. Report-bound: ordered
/// containers only, all counts explicit.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct CoverageGaps {
    /// Documents whose collection exhausted retries, per source name.
    pub missed_collections: BTreeMap<String, u64>,
    /// Scheduled OSN status probes that exhausted retries.
    pub missed_probes: u64,
    /// Comment fetches (§5.3.2) that exhausted retries.
    pub missed_comment_fetches: u64,
    /// Documents lost to poisoned engine stage workers.
    pub stage_exhausted_docs: u64,
}

impl CoverageGaps {
    /// Record one missed collection for `source`.
    pub fn record_missed_collection(&mut self, source: &str) {
        *self
            .missed_collections
            .entry(source.to_string())
            .or_insert(0) += 1;
    }

    /// Missed collections across every source.
    pub fn missed_collection_total(&self) -> u64 {
        self.missed_collections.values().sum()
    }

    /// Everything missed, across all boundaries.
    pub fn total(&self) -> u64 {
        self.missed_collection_total()
            + self.missed_probes
            + self.missed_comment_fetches
            + self.stage_exhausted_docs
    }

    /// True when nothing was missed (the fault-free / fully-recovered
    /// case — exactly when the report must match a fault-free run).
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Fold `other` into `self`.
    pub fn absorb(&mut self, other: &CoverageGaps) {
        for (source, n) in &other.missed_collections {
            *self.missed_collections.entry(source.clone()).or_insert(0) += n;
        }
        self.missed_probes += other.missed_probes;
        self.missed_comment_fetches += other.missed_comment_fetches;
        self.stage_exhausted_docs += other.stage_exhausted_docs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_sum_across_boundaries() {
        let mut g = CoverageGaps::default();
        assert!(g.is_empty());
        g.record_missed_collection("pastebin.com");
        g.record_missed_collection("pastebin.com");
        g.record_missed_collection("4chan.org/b");
        g.missed_probes = 2;
        g.stage_exhausted_docs = 5;
        assert_eq!(g.missed_collection_total(), 3);
        assert_eq!(g.total(), 10);
        assert!(!g.is_empty());
    }

    #[test]
    fn absorb_is_fieldwise() {
        let mut a = CoverageGaps::default();
        a.record_missed_collection("pastebin.com");
        let mut b = CoverageGaps {
            missed_probes: 1,
            ..CoverageGaps::default()
        };
        b.record_missed_collection("pastebin.com");
        a.absorb(&b);
        assert_eq!(a.missed_collections["pastebin.com"], 2);
        assert_eq!(a.missed_probes, 1);

        let mut s = FaultStats::default();
        s.absorb(&FaultStats {
            ops: 3,
            retries: 2,
            ..FaultStats::default()
        });
        s.absorb(&FaultStats {
            ops: 1,
            exhausted: 1,
            ..FaultStats::default()
        });
        assert_eq!(s.ops, 4);
        assert_eq!(s.retries, 2);
        assert_eq!(s.exhausted, 1);
    }

    #[test]
    fn gaps_serialize_with_ordered_sources() {
        let mut g = CoverageGaps::default();
        g.record_missed_collection("b-source");
        g.record_missed_collection("a-source");
        let json = serde_json::to_string(&g).expect("serializes");
        let a = json.find("a-source").expect("present");
        let b = json.find("b-source").expect("present");
        assert!(a < b, "BTreeMap keeps report ordering stable");
    }
}
