//! Per-target circuit breakers.
//!
//! A breaker protects one target (a source site, an OSN) from retry
//! storms: after `failure_threshold` consecutive failures it *opens* and
//! shifts every attempt to the end of a cooldown window, where a single
//! *half-open* probe decides whether to close (success) or re-open
//! (failure). Breakers shape the virtual timing of attempts — they never
//! drop an operation themselves, so document fate stays with the retry
//! budget and the coverage-gap accounting.

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Healthy: attempts pass through.
    Closed,
    /// Probing: one attempt is allowed; its outcome decides the state.
    HalfOpen,
    /// Tripped: attempts are shifted to the end of the cooldown.
    Open,
}

impl BreakerState {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::HalfOpen => "half-open",
            BreakerState::Open => "open",
        }
    }

    /// Gauge encoding for observability: closed 0, half-open 1, open 2.
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// Ticks the breaker stays open before admitting a half-open probe.
    pub cooldown: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 4,
            cooldown: 120,
        }
    }
}

// Hand-written: the vendored serde derives `Serialize` only. Missing
// fields fall back to defaults; unknown fields are rejected.
impl Deserialize for BreakerConfig {
    fn from_value(value: &Value) -> Option<Self> {
        let mut config = BreakerConfig::default();
        for (field, v) in value.as_object()? {
            match field.as_str() {
                "failure_threshold" => {
                    config.failure_threshold = u32::try_from(v.as_u64()?).ok()?;
                }
                "cooldown" => config.cooldown = v.as_u64()?,
                _ => return None,
            }
        }
        Some(config)
    }
}

/// Lifetime transition counters (observability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct BreakerTransitions {
    /// Closed/half-open → open.
    pub opened: u64,
    /// Open → half-open (cooldown expired, probe admitted).
    pub half_opened: u64,
    /// Half-open/open → closed (a probe succeeded).
    pub closed: u64,
}

/// One target's breaker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: u64,
    transitions: BreakerTransitions,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: 0,
            transitions: BreakerTransitions::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Transition counters.
    pub fn transitions(&self) -> BreakerTransitions {
        self.transitions
    }

    /// The earliest virtual time an attempt scheduled at `at` may run.
    /// Closed and half-open admit immediately; open shifts the attempt to
    /// the end of the cooldown and moves to half-open (the attempt *is*
    /// the probe).
    pub fn admit_at(&mut self, at: u64) -> u64 {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => at,
            BreakerState::Open => {
                let admitted = at.max(self.open_until);
                self.state = BreakerState::HalfOpen;
                self.transitions.half_opened += 1;
                admitted
            }
        }
    }

    /// Record a successful attempt: closes the breaker.
    pub fn on_success(&mut self) {
        if self.state != BreakerState::Closed {
            self.transitions.closed += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failed attempt at virtual time `at`: a half-open probe
    /// failure re-opens immediately; a closed breaker opens once the
    /// consecutive-failure threshold is reached.
    pub fn on_failure(&mut self, at: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.open_until = at.saturating_add(self.config.cooldown);
            self.transitions.opened += 1;
        }
    }
}

/// A keyed family of breakers, one per target, created on first use.
#[derive(Debug, Clone)]
pub struct BreakerSet {
    config: BreakerConfig,
    breakers: BTreeMap<String, CircuitBreaker>,
}

impl BreakerSet {
    /// An empty set; breakers materialize per target on first access.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            breakers: BTreeMap::new(),
        }
    }

    /// The breaker for `target`, created closed if absent.
    pub fn breaker(&mut self, target: &str) -> &mut CircuitBreaker {
        self.breakers
            .entry(target.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.config))
    }

    /// All breakers, target-ordered (stable for gauges and summaries).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CircuitBreaker)> {
        self.breakers.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum of transition counters across all targets.
    pub fn total_transitions(&self) -> BreakerTransitions {
        let mut total = BreakerTransitions::default();
        for b in self.breakers.values() {
            total.opened += b.transitions.opened;
            total.half_opened += b.transitions.half_opened;
            total.closed += b.transitions.closed;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: 100,
        }
    }

    #[test]
    fn trips_after_threshold_and_recovers_through_half_open() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..2 {
            b.on_failure(t);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        b.on_failure(2);
        assert_eq!(b.state(), BreakerState::Open);
        // An attempt during cooldown is shifted to its end, as the probe.
        assert_eq!(b.admit_at(10), 102);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(
            b.transitions(),
            BreakerTransitions {
                opened: 1,
                half_opened: 1,
                closed: 1
            }
        );
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.on_failure(t);
        }
        let probe_at = b.admit_at(0);
        b.on_failure(probe_at);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().opened, 2);
        // The next admission waits a full new cooldown.
        assert_eq!(b.admit_at(probe_at), probe_at + 100);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(0);
        b.on_failure(1);
        b.on_success();
        b.on_failure(2);
        b.on_failure(3);
        assert_eq!(b.state(), BreakerState::Closed, "count was reset");
    }

    #[test]
    fn breaker_set_isolates_targets() {
        let mut set = BreakerSet::new(cfg());
        for t in 0..3 {
            set.breaker("pastebin.com").on_failure(t);
        }
        assert_eq!(set.breaker("pastebin.com").state(), BreakerState::Open);
        assert_eq!(set.breaker("4chan.org/b").state(), BreakerState::Closed);
        let names: Vec<&str> = set.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["4chan.org/b", "pastebin.com"], "ordered");
        assert_eq!(set.total_transitions().opened, 1);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 1);
        assert_eq!(BreakerState::Open.as_gauge(), 2);
        assert_eq!(BreakerState::Open.to_string(), "open");
    }
}
