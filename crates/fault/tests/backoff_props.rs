//! Property tests for the backoff schedule. `Backoff::delay` documents
//! three guarantees — monotone in the attempt number, bounded by the cap,
//! and byte-reproducible for a fixed seed — and each is held to account
//! here over arbitrary configurations, including degenerate ones (zero
//! base, cap below base, jitter above 100%).

use dox_fault::{Backoff, RetryPolicy};
use proptest::prelude::*;

proptest! {
    /// The schedule never decreases: waiting longer is the only way the
    /// ramp moves. This is the documented proof obligation — jitter is
    /// clamped so `delay(n) ≤ 2·raw(n) = raw(n+1) ≤ delay(n+1)` below
    /// the cap, and everything at the cap stays exactly there.
    #[test]
    fn delays_are_monotonically_non_decreasing(
        base in 0u64..1_000_000,
        cap in 0u64..10_000_000,
        jitter_ppm in 0u32..2_000_000,
        seed in any::<u64>(),
    ) {
        let b = Backoff { base, cap, jitter_ppm, seed };
        let mut prev = 0u64;
        for attempt in 0..70u32 {
            let d = b.delay(attempt);
            prop_assert!(d >= prev, "delay({attempt}) = {d} dips below {prev} for {b:?}");
            prev = d;
        }
    }

    /// No delay ever exceeds the (effective) cap, even with jitter at its
    /// maximum and attempt numbers past the shift width — and every delay
    /// is at least one tick, because a zero-tick retry loop would spin
    /// the simulated clock in place.
    #[test]
    fn delays_stay_within_one_tick_and_the_cap(
        base in 0u64..1_000_000,
        cap in 0u64..10_000_000,
        seed in any::<u64>(),
        attempt in 0u32..200,
    ) {
        let b = Backoff { base, cap, jitter_ppm: 2_000_000, seed };
        let effective_cap = cap.max(base.max(1));
        let d = b.delay(attempt);
        prop_assert!(d >= 1, "a zero delay would stall the virtual clock");
        prop_assert!(d <= effective_cap, "delay {d} exceeds cap {effective_cap}");
    }

    /// A fixed `(config, attempt)` pair always draws the same delay — the
    /// whole schedule is a pure function of the seed, which is what makes
    /// faulty runs byte-reproducible.
    #[test]
    fn schedules_are_reproducible_for_a_fixed_seed(
        base in 1u64..100_000,
        cap in 1u64..10_000_000,
        jitter_ppm in 0u32..1_000_000,
        seed in any::<u64>(),
    ) {
        let b = Backoff { base, cap, jitter_ppm, seed };
        let first: Vec<u64> = (0..32).map(|n| b.delay(n)).collect();
        let again: Vec<u64> = (0..32).map(|n| b.delay(n)).collect();
        prop_assert_eq!(&first, &again);
        let copy = b;
        let copied: Vec<u64> = (0..32).map(|n| copy.delay(n)).collect();
        prop_assert_eq!(&first, &copied);
    }

    /// The total virtual time a policy can spend retrying is bounded by
    /// `max_retries · effective_cap` ticks — recovery never wanders off
    /// the end of the simulated clock.
    #[test]
    fn total_retry_time_is_bounded(
        base in 0u64..1_000_000,
        cap in 0u64..10_000_000,
        seed in any::<u64>(),
        max_retries in 0u32..12,
    ) {
        let policy = RetryPolicy {
            max_retries,
            backoff: Backoff { base, cap, jitter_ppm: 333_333, seed },
        };
        let effective_cap = cap.max(base.max(1));
        let total: u128 = (0..policy.max_retries)
            .map(|n| u128::from(policy.backoff.delay(n)))
            .sum();
        prop_assert!(total <= u128::from(effective_cap) * u128::from(max_retries));
    }
}
