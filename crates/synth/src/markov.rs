//! Order-2 word Markov chain text generator.
//!
//! Used for prose-like filler in non-dox pastes (essays, forum rants,
//! README bodies). The chain is trained on the synthetic [`crate::names::PROSE_SEED`]
//! vocabulary, so output is plain, license-free English-looking text.

use rand::RngExt;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// An order-2 word Markov chain.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    /// `(w1, w2) -> possible next words`.
    table: HashMap<(String, String), Vec<String>>,
    /// All observed bigrams, for choosing start states.
    starts: Vec<(String, String)>,
}

impl MarkovChain {
    /// Train on whitespace-tokenized `text`.
    ///
    /// # Panics
    /// Panics if `text` has fewer than three words.
    pub fn train(text: &str) -> Self {
        let words: Vec<&str> = text.split_whitespace().collect();
        assert!(words.len() >= 3, "need at least three words to train");
        let mut table: HashMap<(String, String), Vec<String>> = HashMap::new();
        let mut starts = Vec::new();
        for w in words.windows(3) {
            let key = (w[0].to_string(), w[1].to_string());
            starts.push(key.clone());
            table.entry(key).or_default().push(w[2].to_string());
        }
        Self { table, starts }
    }

    /// A chain trained on the built-in prose seed.
    pub fn prose() -> Self {
        Self::train(crate::names::PROSE_SEED)
    }

    /// Generate `n_words` of text.
    pub fn generate(&self, n_words: usize, rng: &mut ChaCha8Rng) -> String {
        if n_words == 0 {
            return String::new();
        }
        let mut state = self.starts[rng.random_range(0..self.starts.len())].clone();
        let mut out = vec![state.0.clone(), state.1.clone()];
        while out.len() < n_words {
            match self.table.get(&state) {
                Some(nexts) => {
                    let next = nexts[rng.random_range(0..nexts.len())].clone();
                    out.push(next.clone());
                    state = (state.1, next);
                }
                None => {
                    // Dead end: restart from a random bigram.
                    state = self.starts[rng.random_range(0..self.starts.len())].clone();
                }
            }
        }
        out.truncate(n_words);
        out.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn generates_requested_length() {
        let chain = MarkovChain::prose();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let text = chain.generate(50, &mut rng);
        assert_eq!(text.split_whitespace().count(), 50);
    }

    #[test]
    fn zero_words_is_empty() {
        let chain = MarkovChain::prose();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(chain.generate(0, &mut rng), "");
    }

    #[test]
    fn deterministic_given_seed() {
        let chain = MarkovChain::prose();
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(chain.generate(30, &mut a), chain.generate(30, &mut b));
    }

    #[test]
    fn output_vocabulary_comes_from_seed() {
        let chain = MarkovChain::prose();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let vocab: std::collections::HashSet<&str> =
            crate::names::PROSE_SEED.split_whitespace().collect();
        for w in chain.generate(200, &mut rng).split_whitespace() {
            assert!(vocab.contains(w), "unexpected word {w}");
        }
    }

    #[test]
    fn dead_end_restarts() {
        // A tiny corpus whose final bigram has no successor forces the
        // dead-end path.
        let chain = MarkovChain::train("a b c");
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let text = chain.generate(10, &mut rng);
        assert_eq!(text.split_whitespace().count(), 10);
    }

    #[test]
    #[should_panic(expected = "three words")]
    fn too_small_corpus_panics() {
        MarkovChain::train("one two");
    }
}
