//! # dox-synth
//!
//! The synthetic corpus substrate.
//!
//! The original study scraped 1.74 M documents from pastebin.com, 4chan.org
//! and 8ch.net — data that was never (and should never be) released. This
//! crate replaces it with a *generative model of the corpus*: personas with
//! correlated sensitive attributes, dox files rendered in the formats
//! doxers actually use, realistic non-dox paste traffic (including hard
//! negatives), a doxer population with team structure, and a duplicate /
//! repost model. Every document carries a [`truth::GroundTruth`] record so
//! downstream measurements (classifier quality, extractor accuracy, dedup
//! recall) can be scored exactly.
//!
//! Modules:
//!
//! - [`config`] — every generation rate, cited to the paper table it
//!   reproduces; scaling support.
//! - [`names`] — procedural name/word inventories (no real-person data).
//! - [`markov`] — an order-2 Markov prose generator for filler text.
//! - [`persona`] — victims: demographics (Table 5), sensitive attributes
//!   (Table 6), communities (Table 7), OSN accounts (Tables 2 & 9).
//! - [`handles`] — per-network username morphology.
//! - [`doxers`] — the attacker population with team/clique structure
//!   (Figure 2) and the Twitter follow graph.
//! - [`dox_render`] — dox file templates: labeled-field dumps, ASCII-art
//!   headers, narrative doxes, credits, motivation statements (Table 8).
//! - [`pastes`] — non-dox generators: code, logs, configs, chat, credential
//!   dumps and prose, with hard negatives for classifier error structure.
//! - [`truth`] — per-document ground truth.
//! - [`corpus`] — the stream generator: mixes doxes and pastes per source
//!   and period at the paper's volumes, applies the duplicate model.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod corpus;
pub mod dox_render;
pub mod doxers;
pub mod handles;
pub mod markov;
pub mod names;
pub mod pastes;
pub mod persona;
pub mod truth;

pub use config::SynthConfig;
pub use corpus::{CorpusGenerator, SynthDoc};
pub use persona::{Persona, PersonaGenerator};
pub use truth::GroundTruth;
