//! Non-dox paste generation.
//!
//! The 1.73 M-document corpus is overwhelmingly *not* doxes (99.7 %). The
//! classifier's error structure (Table 1: dox precision 0.81, recall 0.89)
//! depends on the negatives being realistic — including **hard negatives**
//! that superficially resemble doxes (credential combo dumps, member lists
//! with emails, filled registration forms). Each generator here produces
//! one paste kind; [`PasteGenerator::sample_paste`] mixes them at configurable rates.

use crate::markov::MarkovChain;
use crate::truth::PasteKind;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// A generated non-dox paste.
#[derive(Debug, Clone, PartialEq)]
pub struct Paste {
    /// The paste body.
    pub body: String,
    /// What kind it is (ground truth).
    pub kind: PasteKind,
}

/// Shared generator state (the Markov chain is expensive to retrain).
#[derive(Debug, Clone)]
pub struct PasteGenerator {
    prose: MarkovChain,
    /// Fraction of pastes that are hard negatives.
    pub hard_negative_rate: f64,
}

impl PasteGenerator {
    /// Create a generator with the given hard-negative rate.
    pub fn new(hard_negative_rate: f64) -> Self {
        Self {
            prose: MarkovChain::prose(),
            hard_negative_rate,
        }
    }

    /// Sample one paste.
    pub fn sample_paste(&self, rng: &mut ChaCha8Rng) -> Paste {
        if rng.random_range(0.0..1.0) < self.hard_negative_rate {
            let kind = [
                PasteKind::CredentialDump,
                PasteKind::UserList,
                PasteKind::FormData,
                PasteKind::ProfileCard,
                PasteKind::ProfileCard,
                PasteKind::DoxTutorial,
                PasteKind::DoxDiscussion,
                PasteKind::DoxDiscussion,
            ][rng.random_range(0..8)];
            return Paste {
                body: self.generate_kind(kind, rng),
                kind,
            };
        }
        let kind = [
            PasteKind::Code,
            PasteKind::Code,
            PasteKind::Log,
            PasteKind::Config,
            PasteKind::Chat,
            PasteKind::Prose,
        ][rng.random_range(0..6)];
        Paste {
            body: self.generate_kind(kind, rng),
            kind,
        }
    }

    /// Generate a body of the given kind.
    pub fn generate_kind(&self, kind: PasteKind, rng: &mut ChaCha8Rng) -> String {
        match kind {
            PasteKind::Code => code_paste(rng),
            PasteKind::Log => log_paste(rng),
            PasteKind::Config => config_paste(rng),
            PasteKind::Chat => chat_paste(rng),
            PasteKind::Prose => self.prose.generate(rng.random_range(60..260), rng),
            PasteKind::CredentialDump => credential_dump(rng),
            PasteKind::UserList => user_list(rng),
            PasteKind::FormData => form_data(rng),
            PasteKind::ProfileCard => profile_card(rng),
            PasteKind::DoxTutorial => dox_tutorial(rng),
            PasteKind::DoxDiscussion => dox_discussion(rng),
        }
    }
}

/// Hard negative: a doxing how-to. Saturated with the classifier's most
/// dox-indicative vocabulary (name, address, phone, ip, dox, drop) while
/// containing no victim data — the canonical false-positive source.
fn dox_tutorial(rng: &mut ChaCha8Rng) -> String {
    let mut out = String::from("so you want to dox someone, a beginner guide\n");
    let steps = [
        "step: start with the username and search every site for reuse",
        "step: the full name usually falls out of an old forum signature",
        "step: reverse lookup the phone number if they ever posted one",
        "step: the ip address from a game server gives you the isp and city",
        "step: zip code plus family names narrows the address fast",
        "step: check facebook twitter instagram skype for linked accounts",
        "step: paste the whole profile and drop it where people will see",
        "step: keep receipts or nobody believes the dox is real",
    ];
    let n = rng.random_range(4..=steps.len());
    for s in steps.iter().take(n) {
        out.push_str(s);
        out.push('\n');
    }
    out.push_str("remember: this guide is hypothetical obviously\n");
    out
}

/// Hard negative: chan chatter asking for or reacting to a dox, with none
/// of the actual content. Sometimes name-drops a (pool) first name — the
/// same names real doxes use — without attaching any information to it.
fn dox_discussion(rng: &mut ChaCha8Rng) -> String {
    let lines = crate::names::THREAD_CHATTER;
    let n = rng.random_range(2..6usize);
    let mut out = String::new();
    for _ in 0..n {
        out.push_str(lines[rng.random_range(0..lines.len())]);
        out.push('\n');
    }
    if rng.random_range(0.0..1.0) < 0.5 {
        let feminine = rng.random_range(0.0..1.0) < 0.3;
        out.push_str(&format!(
            "pretty sure the guy is called {} or something\n",
            crate::names::first_name(rng, feminine).to_lowercase()
        ));
    }
    out
}

/// Hard negative: a voluntary "about me" card. Shares the dox file's
/// labeled-field skeleton (Name/Age/From/contact) so a bag-of-words
/// classifier genuinely struggles — these drive the false-positive side of
/// Table 1's error structure.
fn profile_card(rng: &mut ChaCha8Rng) -> String {
    let feminine = rng.random_range(0.0..1.0) < 0.5;
    let first = crate::names::first_name(rng, feminine);
    let last = crate::names::last_name(rng);
    let age = rng.random_range(14..40u32);
    format!(
        "~~ about me ~~\n\
         Name: {first} {last}\n\
         Age: {age}\n\
         From: {}\n\
         Email: {}{}@webmail.example (mods only pls)\n\
         hobbies: {}\n\
         add me on discord or whatever, looking for a duo partner.\n\
         my setup: {} keyboard, decent headset, mid pc\n",
        [
            "the midwest",
            "up north",
            "the coast",
            "nowhere interesting"
        ][rng.random_range(0..4)],
        first.to_lowercase(),
        rng.random_range(10..99u32),
        [
            "speedrunning and modding",
            "drawing and ranked grind",
            "maps and strategy games"
        ][rng.random_range(0..3)],
        ["mech", "60%", "old laptop"][rng.random_range(0..3)],
    )
}

fn code_paste(rng: &mut ChaCha8Rng) -> String {
    let lang = rng.random_range(0..3u8);
    let n = rng.random_range(3..12u32);
    let mut out = String::new();
    match lang {
        0 => {
            out.push_str("#!/usr/bin/env python\n");
            for i in 0..n {
                out.push_str(&format!(
                    "def handler_{i}(payload):\n    value = payload.get('field_{i}', {})\n    return value * {}\n\n",
                    rng.random_range(0..100u32),
                    rng.random_range(2..9u32)
                ));
            }
        }
        1 => {
            out.push_str("// build helper\n#include <stdio.h>\n");
            for i in 0..n {
                out.push_str(&format!(
                    "static int step_{i}(int x) {{ return x + {}; }}\n",
                    rng.random_range(1..50u32)
                ));
            }
            out.push_str("int main(void) { printf(\"ok\\n\"); return 0; }\n");
        }
        _ => {
            for i in 0..n {
                out.push_str(&format!(
                    "function render{i}(el) {{\n  el.innerText = 'section {i}';\n  return {};\n}}\n",
                    rng.random_range(0..2u32)
                ));
            }
        }
    }
    out
}

fn log_paste(rng: &mut ChaCha8Rng) -> String {
    let n = rng.random_range(10..40u32);
    let mut out = String::new();
    for _ in 0..n {
        let level = ["INFO", "WARN", "ERROR", "DEBUG"][rng.random_range(0..4)];
        out.push_str(&format!(
            "2016-08-{:02}T{:02}:{:02}:{:02}Z {level} worker-{}: request {} completed in {}ms\n",
            rng.random_range(1..29u32),
            rng.random_range(0..24u32),
            rng.random_range(0..60u32),
            rng.random_range(0..60u32),
            rng.random_range(1..8u32),
            rng.random_range(1000..99999u32),
            rng.random_range(1..900u32),
        ));
    }
    out
}

fn config_paste(rng: &mut ChaCha8Rng) -> String {
    let mut out = String::from("[server]\n");
    out.push_str(&format!("port = {}\n", rng.random_range(1024..65535u32)));
    out.push_str(&format!("workers = {}\n", rng.random_range(1..32u32)));
    out.push_str("bind = 0.0.0.0\n\n[cache]\n");
    out.push_str(&format!(
        "ttl_seconds = {}\n",
        rng.random_range(30..3600u32)
    ));
    out.push_str(&format!(
        "max_entries = {}\n\n[logging]\nlevel = info\nfile = /var/log/app.log\n",
        rng.random_range(100..100_000u32)
    ));
    out
}

fn chat_paste(rng: &mut ChaCha8Rng) -> String {
    let users = ["nova", "pixel", "crash", "moth", "lumen", "drift"];
    let lines = [
        "did you see the patch notes",
        "yeah the nerf is brutal",
        "anyone up for ranked tonight",
        "gg that last round was close",
        "my ping is terrible today",
        "push mid next time",
        "brb food",
        "the new map is actually good",
        "mirror: files.archive.example/4f00aa12 for the vod",
        "the screencap is in the mirror, too long to type out",
        "upload died, check the archive mirror",
    ];
    let n = rng.random_range(8..25u32);
    let mut out = String::new();
    for _ in 0..n {
        out.push_str(&format!(
            "<{}> {}\n",
            users[rng.random_range(0..users.len())],
            lines[rng.random_range(0..lines.len())]
        ));
    }
    out
}

/// Hard negative: email:password combo dump. Looks sensitive, contains
/// emails and passwords — but no identities, addresses or OSN labels.
fn credential_dump(rng: &mut ChaCha8Rng) -> String {
    let n = rng.random_range(20..80u32);
    let mut out = String::from("combo list fresh checked\n");
    for i in 0..n {
        out.push_str(&format!(
            "user{}{}@mailbox.example:pass{}{}\n",
            i,
            rng.random_range(100..999u32),
            rng.random_range(10..99u32),
            ["!", "", "#", "x"][rng.random_range(0..4)]
        ));
    }
    out
}

/// Hard negative: a forum member list with join dates.
fn user_list(rng: &mut ChaCha8Rng) -> String {
    let n = rng.random_range(15..50u32);
    let mut out = String::from("member export 2016\nusername, email, joined\n");
    for i in 0..n {
        out.push_str(&format!(
            "member_{i}, member_{i}@postal.example, 2015-{:02}-{:02}\n",
            rng.random_range(1..13u32),
            rng.random_range(1..29u32)
        ));
    }
    out
}

/// Hard negative: a filled-in contact/registration form — has Name:,
/// Email:, Phone: labels like a dox, but describes a business inquiry.
fn form_data(rng: &mut ChaCha8Rng) -> String {
    format!(
        "--- contact form submission ---\n\
         Name: Sales Inquiry {}\n\
         Company: Widgets Unlimited\n\
         Email: purchasing{}@inbox.example\n\
         Phone: (800) 555-01{:02}\n\
         Message: we would like a quote for {} units of part {} delivered\n\
         to our warehouse. please respond during business hours.\n",
        rng.random_range(1..999u32),
        rng.random_range(1..99u32),
        rng.random_range(0..100u32),
        rng.random_range(10..5000u32),
        rng.random_range(1000..9999u32),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn all_kinds_generate_nonempty() {
        let g = PasteGenerator::new(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for kind in [
            PasteKind::Code,
            PasteKind::Log,
            PasteKind::Config,
            PasteKind::Chat,
            PasteKind::Prose,
            PasteKind::CredentialDump,
            PasteKind::UserList,
            PasteKind::FormData,
        ] {
            let body = g.generate_kind(kind, &mut rng);
            assert!(!body.trim().is_empty(), "{kind:?} produced empty body");
        }
    }

    #[test]
    fn hard_negative_rate_respected() {
        let g = PasteGenerator::new(0.3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 5000;
        let hard = (0..n)
            .filter(|_| g.sample_paste(&mut rng).kind.is_hard_negative())
            .count();
        let rate = hard as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "hard-negative rate {rate}");
    }

    #[test]
    fn zero_hard_negative_rate_produces_none() {
        let g = PasteGenerator::new(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..500 {
            assert!(!g.sample_paste(&mut rng).kind.is_hard_negative());
        }
    }

    #[test]
    fn form_data_has_doxlike_labels() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let body = form_data(&mut rng);
        assert!(body.contains("Name:"));
        assert!(body.contains("Phone:"));
        assert!(body.contains("Email:"));
    }

    #[test]
    fn credential_dump_contains_emails_but_no_addresses() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let body = credential_dump(&mut rng);
        assert!(body.contains("@mailbox.example"));
        assert!(!body.to_lowercase().contains("address"));
    }

    #[test]
    fn deterministic() {
        let g = PasteGenerator::new(0.1);
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(g.sample_paste(&mut a), g.sample_paste(&mut b));
    }

    #[test]
    fn synthetic_emails_use_reserved_domains() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for body in [
            credential_dump(&mut rng),
            user_list(&mut rng),
            form_data(&mut rng),
        ] {
            for word in body.split_whitespace() {
                if word.contains('@') {
                    assert!(word.contains(".example"), "non-reserved email in {word}");
                }
            }
        }
    }
}
