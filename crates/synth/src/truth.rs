//! Per-document ground truth.
//!
//! Every synthetic document carries a [`GroundTruth`] so downstream
//! measurements can be scored exactly: the classifier's confusion matrix
//! (Table 1), the extractor's per-field accuracy (Table 2), dedup recall
//! (§3.1.4), and the demographic/motivation/community analyses
//! (Tables 5–8). Ground truth never flows into the pipeline's inference
//! path — only into its evaluation.

use dox_osn::network::Network;
use serde::{Deserialize, Serialize};

/// The victim community the paper classifies from listed accounts (Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Community {
    /// ≥ 2 accounts on gaming/streaming sites.
    Gamer,
    /// ≥ 2 accounts on hacking/cybercrime communities.
    Hacker,
    /// Publicly known person.
    Celebrity,
}

/// The stated motivation of a dox (Table 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Motivation {
    /// Demonstrating "superior" ability / un-doxability claims.
    Competitive,
    /// Retaliation for a wrong against the doxer.
    Revenge,
    /// Punishing a wrong against a third party.
    Justice,
    /// Larger political goal (de-anonymization campaigns etc.).
    Political,
}

/// Victim gender as stated in dox files (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    /// Male: 82.2 % of labeled doxes.
    Male,
    /// Female: 16.3 %.
    Female,
    /// Other: 0.4 %.
    Other,
}

/// Which sensitive-field categories a dox file includes (Table 6), as
/// booleans — mirroring the paper's privacy-preserving datastore, which
/// records only *whether* a category appears, never the value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncludedFields {
    /// Street address present.
    pub address: bool,
    /// Zip-level precision present.
    pub zip: bool,
    /// Phone number present.
    pub phone: bool,
    /// Family members listed.
    pub family: bool,
    /// Email address present.
    pub email: bool,
    /// Date of birth present.
    pub dob: bool,
    /// Age stated.
    pub age: bool,
    /// Real name present.
    pub real_name: bool,
    /// School named.
    pub school: bool,
    /// Other usernames listed.
    pub usernames: bool,
    /// ISP named.
    pub isp: bool,
    /// IP address present.
    pub ip: bool,
    /// Passwords present.
    pub passwords: bool,
    /// Physical traits present.
    pub physical: bool,
    /// Criminal record present.
    pub criminal: bool,
    /// SSN present.
    pub ssn: bool,
    /// Credit-card number present.
    pub credit_card: bool,
    /// Other financial info present.
    pub financial: bool,
}

/// Ground truth for a dox document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoxTruth {
    /// The victim persona's id.
    pub persona_id: u64,
    /// Victim age (years).
    pub age: u8,
    /// Victim gender.
    pub gender: Gender,
    /// Victim lives in the primary country.
    pub primary_country: bool,
    /// Field categories included in this rendering.
    pub fields: IncludedFields,
    /// OSN handles actually written into the text.
    pub osn_handles: Vec<(Network, String)>,
    /// Victim community, when the dox exposes one.
    pub community: Option<Community>,
    /// Stated motivation, when present.
    pub motivation: Option<Motivation>,
    /// Credited doxer aliases (empty when uncredited).
    pub credits: Vec<String>,
    /// Whether this posting duplicates an earlier dox of the same victim.
    pub duplicate_of: Option<u64>,
    /// Whether this is a byte-exact repost (vs. a near-duplicate).
    pub exact_duplicate: bool,
    /// Whether this rendering is "sloppy" (weakly structured).
    pub sloppy: bool,
    /// Whether this is a screencap-mirror stub (content behind a link; the
    /// text itself carries almost nothing labelable).
    pub stub: bool,
}

// The engine checkpoints detected doxes — ground truth included — so the
// truth types need typed deserialization, which the vendored serde cannot
// derive. Unit variants round-trip as variant-name strings, structs as
// objects keyed by field name.
impl serde::Deserialize for Community {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        match value.as_str()? {
            "Gamer" => Some(Community::Gamer),
            "Hacker" => Some(Community::Hacker),
            "Celebrity" => Some(Community::Celebrity),
            _ => None,
        }
    }
}

impl serde::Deserialize for Motivation {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        match value.as_str()? {
            "Competitive" => Some(Motivation::Competitive),
            "Revenge" => Some(Motivation::Revenge),
            "Justice" => Some(Motivation::Justice),
            "Political" => Some(Motivation::Political),
            _ => None,
        }
    }
}

impl serde::Deserialize for Gender {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        match value.as_str()? {
            "Male" => Some(Gender::Male),
            "Female" => Some(Gender::Female),
            "Other" => Some(Gender::Other),
            _ => None,
        }
    }
}

impl serde::Deserialize for IncludedFields {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        Some(IncludedFields {
            address: value.get("address")?.as_bool()?,
            zip: value.get("zip")?.as_bool()?,
            phone: value.get("phone")?.as_bool()?,
            family: value.get("family")?.as_bool()?,
            email: value.get("email")?.as_bool()?,
            dob: value.get("dob")?.as_bool()?,
            age: value.get("age")?.as_bool()?,
            real_name: value.get("real_name")?.as_bool()?,
            school: value.get("school")?.as_bool()?,
            usernames: value.get("usernames")?.as_bool()?,
            isp: value.get("isp")?.as_bool()?,
            ip: value.get("ip")?.as_bool()?,
            passwords: value.get("passwords")?.as_bool()?,
            physical: value.get("physical")?.as_bool()?,
            criminal: value.get("criminal")?.as_bool()?,
            ssn: value.get("ssn")?.as_bool()?,
            credit_card: value.get("credit_card")?.as_bool()?,
            financial: value.get("financial")?.as_bool()?,
        })
    }
}

impl serde::Deserialize for DoxTruth {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        use serde::value::Value;
        let opt_u64 = |v: &Value| match v {
            Value::Null => Some(None),
            other => other.as_u64().map(Some),
        };
        Some(DoxTruth {
            persona_id: value.get("persona_id")?.as_u64()?,
            age: u8::try_from(value.get("age")?.as_u64()?).ok()?,
            gender: Gender::from_value(value.get("gender")?)?,
            primary_country: value.get("primary_country")?.as_bool()?,
            fields: IncludedFields::from_value(value.get("fields")?)?,
            osn_handles: value
                .get("osn_handles")?
                .as_array()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array()?;
                    Some((
                        Network::from_value(pair.first()?)?,
                        pair.get(1)?.as_str()?.to_string(),
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
            community: match value.get("community")? {
                Value::Null => None,
                other => Some(Community::from_value(other)?),
            },
            motivation: match value.get("motivation")? {
                Value::Null => None,
                other => Some(Motivation::from_value(other)?),
            },
            credits: value
                .get("credits")?
                .as_array()?
                .iter()
                .map(|c| c.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            duplicate_of: opt_u64(value.get("duplicate_of")?)?,
            exact_duplicate: value.get("exact_duplicate")?.as_bool()?,
            sloppy: value.get("sloppy")?.as_bool()?,
            stub: value.get("stub")?.as_bool()?,
        })
    }
}

/// The category of a non-dox paste (drives classifier error analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PasteKind {
    /// Source code.
    Code,
    /// Server/application logs.
    Log,
    /// Configuration dump.
    Config,
    /// Chat transcript.
    Chat,
    /// Prose (essay, rant, notes).
    Prose,
    /// Hard negative: credential combo dump.
    CredentialDump,
    /// Hard negative: member/user list with emails.
    UserList,
    /// Hard negative: filled-in registration/contact form.
    FormData,
    /// Hard negative: a self-published "about me" profile card — the same
    /// labeled-field structure as a dox, posted voluntarily.
    ProfileCard,
    /// Hard negative: a "how to dox" tutorial — dox vocabulary, no victim.
    DoxTutorial,
    /// Hard negative: chan chatter *about* doxing someone ("drop the dox").
    DoxDiscussion,
}

impl PasteKind {
    /// Whether this kind is a deliberate hard negative.
    pub fn is_hard_negative(self) -> bool {
        matches!(
            self,
            PasteKind::CredentialDump
                | PasteKind::UserList
                | PasteKind::FormData
                | PasteKind::ProfileCard
                | PasteKind::DoxTutorial
                | PasteKind::DoxDiscussion
        )
    }
}

// Service-mode ingest ships whole documents over the wire; unit
// variants round-trip as variant-name strings.
impl serde::Deserialize for PasteKind {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        match value.as_str()? {
            "Code" => Some(PasteKind::Code),
            "Log" => Some(PasteKind::Log),
            "Config" => Some(PasteKind::Config),
            "Chat" => Some(PasteKind::Chat),
            "Prose" => Some(PasteKind::Prose),
            "CredentialDump" => Some(PasteKind::CredentialDump),
            "UserList" => Some(PasteKind::UserList),
            "FormData" => Some(PasteKind::FormData),
            "ProfileCard" => Some(PasteKind::ProfileCard),
            "DoxTutorial" => Some(PasteKind::DoxTutorial),
            "DoxDiscussion" => Some(PasteKind::DoxDiscussion),
            _ => None,
        }
    }
}

/// Ground truth for any document in the corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroundTruth {
    /// A dox posting.
    Dox(Box<DoxTruth>),
    /// A non-dox paste.
    Paste {
        /// What kind of paste.
        kind: PasteKind,
    },
}

impl GroundTruth {
    /// True when the document is a dox.
    pub fn is_dox(&self) -> bool {
        matches!(self, GroundTruth::Dox(_))
    }

    /// The dox truth, if a dox.
    pub fn as_dox(&self) -> Option<&DoxTruth> {
        match self {
            GroundTruth::Dox(d) => Some(d),
            GroundTruth::Paste { .. } => None,
        }
    }
}

// Mirrors the derive's externally-tagged enum encoding:
// `{"Dox": <truth>}` / `{"Paste": {"kind": "<name>"}}`.
impl serde::Deserialize for GroundTruth {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        if let Some(inner) = value.get("Dox") {
            return Some(GroundTruth::Dox(Box::new(DoxTruth::from_value(inner)?)));
        }
        let paste = value.get("Paste")?;
        Some(GroundTruth::Paste {
            kind: PasteKind::from_value(paste.get("kind")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_negative_flags() {
        assert!(PasteKind::CredentialDump.is_hard_negative());
        assert!(PasteKind::UserList.is_hard_negative());
        assert!(PasteKind::FormData.is_hard_negative());
        assert!(!PasteKind::Code.is_hard_negative());
        assert!(!PasteKind::Prose.is_hard_negative());
    }

    #[test]
    fn truth_accessors() {
        let paste = GroundTruth::Paste {
            kind: PasteKind::Log,
        };
        assert!(!paste.is_dox());
        assert!(paste.as_dox().is_none());
    }
}
