//! Dox-file rendering.
//!
//! Produces the text of a dox posting from a persona plus a render plan:
//! which sensitive fields to include (Table 6 rates), which OSN accounts to
//! reveal (Table 9 / Table 2 rates), an optional motivation statement
//! (Table 8), an optional credits line (Figure 2), and one of several
//! format templates — labeled field lists, ASCII-art-headed drops, and
//! "sloppy" narrative doxes that stress the classifier.
//!
//! Near-duplicate re-rendering (timestamps, insignia tweaks, "update"
//! sections — §3.1.4) lives here too, so the dedup stage has realistic
//! adversarial input.

use crate::config::SynthConfig;
use crate::doxers::DoxerPopulation;
use crate::handles;
use crate::persona::Persona;
use crate::truth::{Community, DoxTruth, Gender, IncludedFields, Motivation};
use dox_osn::network::Network;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Everything decided before rendering: the plan is sampled once, then the
/// template turns it into text. Keeping plan and render separate lets the
/// duplicate model re-render the *same plan* with cosmetic variation.
#[derive(Debug, Clone)]
pub struct RenderPlan {
    /// Field categories to include.
    pub fields: IncludedFields,
    /// OSN accounts to reveal: `(network, handle)`.
    pub osn: Vec<(Network, String)>,
    /// Motivation to state, if any.
    pub motivation: Option<Motivation>,
    /// Credited doxer aliases (with optional Twitter handles rendered).
    pub credits: Vec<String>,
    /// Whether to use the sloppy narrative template.
    pub sloppy: bool,
    /// A "stub" dox: the content lives in a linked screencap/mirror, the
    /// text itself names only the victim's alias. Text classifiers cannot
    /// catch these (the paper's acknowledged §7.3 blind spot) — they are
    /// the recall ceiling.
    pub stub: bool,
    /// Template selector (stable across re-renders of the same plan).
    pub template: u8,
    /// Expose community accounts (Table 7) when the persona has them.
    pub show_community: bool,
}

/// Sample a render plan for `persona`.
///
/// `proof_of_work` selects the richer Table 2 OSN rates used by
/// dox-for-hire archives; the wild corpus uses Table 9 rates.
pub fn sample_plan(
    persona: &Persona,
    config: &SynthConfig,
    proof_of_work: bool,
    doxers: &DoxerPopulation,
    rng: &mut ChaCha8Rng,
) -> RenderPlan {
    let f = &config.fields;
    let mut roll = |p: f64| rng.random_range(0.0..1.0) < p;
    let address = roll(f.address);
    let fields = IncludedFields {
        address,
        zip: address && roll(f.zip_given_address),
        phone: roll(f.phone),
        family: roll(f.family),
        email: roll(f.email),
        dob: roll(f.dob),
        age: roll(f.age),
        real_name: roll(f.real_name),
        school: roll(f.school),
        usernames: roll(f.usernames),
        isp: roll(f.isp),
        ip: roll(f.ip),
        passwords: roll(f.passwords),
        physical: roll(f.physical),
        criminal: roll(f.criminal),
        ssn: roll(f.ssn),
        credit_card: roll(f.credit_card),
        financial: roll(f.financial),
    };

    let rates = if proof_of_work {
        &config.osn_pow
    } else {
        &config.osn_wild
    };
    let mut osn = Vec::new();
    let mut maybe = |network: Network, p: f64, rng: &mut ChaCha8Rng| {
        if rng.random_range(0.0..1.0) < p {
            if let Some(h) = persona.handle_on(network) {
                osn.push((network, h.to_string()));
            }
        }
    };
    maybe(Network::Facebook, rates.facebook, rng);
    maybe(Network::GooglePlus, rates.google_plus, rng);
    maybe(Network::Twitter, rates.twitter, rng);
    maybe(Network::Instagram, rates.instagram, rng);
    maybe(Network::YouTube, rates.youtube, rng);
    maybe(Network::Twitch, rates.twitch, rng);
    maybe(Network::Skype, rates.skype, rng);

    let m = &config.motivations;
    let u: f64 = rng.random_range(0.0..1.0);
    let motivation = if u < m.justice {
        Some(Motivation::Justice)
    } else if u < m.justice + m.revenge {
        Some(Motivation::Revenge)
    } else if u < m.justice + m.revenge + m.competitive {
        Some(Motivation::Competitive)
    } else if u < m.justice + m.revenge + m.competitive + m.political {
        Some(Motivation::Political)
    } else {
        None
    };

    let credits = if rng.random_range(0.0..1.0) < config.credit_rate {
        let (_, ids) = doxers.sample_credits(rng);
        ids.iter()
            .map(|&id| {
                let d = doxers.get(id);
                match (&d.twitter, rng.random_range(0..3u8)) {
                    (Some(tw), 0) => tw.clone(),
                    (Some(tw), 1) => format!("{} ({})", d.alias, tw),
                    _ => d.alias.clone(),
                }
            })
            .collect()
    } else {
        Vec::new()
    };

    let sloppy = rng.random_range(0.0..1.0) < config.sloppy_dox_rate;
    // Stubs only occur in the wild (a dox-for-hire proof-of-work archive
    // is by definition the full file). A stub reveals only an alias plus
    // at most one account, so the plan is overridden accordingly and the
    // ground truth stays faithful to the rendered text.
    let stub = !proof_of_work && rng.random_range(0.0..1.0) < 0.10;
    let (fields, osn) = if stub {
        let f = IncludedFields {
            usernames: true,
            ..IncludedFields::default()
        };
        let mut o = osn;
        o.truncate(1);
        (f, o)
    } else {
        (fields, osn)
    };
    // Expose community accounts at a rate that lands Table 7's shares
    // given persona-level membership rates.
    let show_community = match persona.community {
        Some(Community::Gamer) => rng.random_range(0.0..1.0) < 0.114 / 0.14,
        Some(Community::Hacker) => rng.random_range(0.0..1.0) < 0.037 / 0.055,
        Some(Community::Celebrity) => rng.random_range(0.0..1.0) < 0.011 / 0.014,
        None => false,
    };

    RenderPlan {
        fields,
        osn,
        motivation,
        credits,
        sloppy,
        stub,
        template: rng.random_range(0..3u8),
        show_community,
    }
}

/// Options for re-rendering a plan as a near-duplicate (§3.1.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct Variation {
    /// Prepend a "posted at" timestamp line.
    pub timestamp: Option<u64>,
    /// Use the alternate ASCII-art insignia.
    pub alt_insignia: bool,
    /// Append an "UPDATE" section describing the victim's reaction.
    pub update_section: bool,
}

/// Render the dox text for `persona` under `plan`.
pub fn render(
    persona: &Persona,
    plan: &RenderPlan,
    world: &dox_geo::model::World,
    variation: Variation,
    rng: &mut ChaCha8Rng,
) -> String {
    let mut out = String::new();
    if let Some(ts) = variation.timestamp {
        out.push_str(&format!("[posted {}]\n", format_ts(ts)));
    }
    if plan.stub {
        render_stub(&mut out, persona, plan, rng);
    } else if plan.sloppy {
        // Half of the weakly structured doxes are narrative, half are
        // thread "fragments" — the subtlest form (§7.3).
        if plan.template.is_multiple_of(2) {
            render_sloppy(&mut out, persona, plan, world, rng);
        } else {
            render_fragment(&mut out, persona, plan, rng);
        }
    } else {
        match plan.template {
            0 => render_labeled(&mut out, persona, plan, world, variation, rng, false),
            1 => render_labeled(&mut out, persona, plan, world, variation, rng, true),
            _ => render_compact(&mut out, persona, plan, world, rng),
        }
    }
    if let Some(motivation) = plan.motivation {
        out.push('\n');
        out.push_str(&motivation_text(motivation, persona, rng));
        out.push('\n');
    }
    if !plan.credits.is_empty() {
        out.push('\n');
        out.push_str(&credit_line(&plan.credits, rng));
        out.push('\n');
    }
    if variation.update_section {
        out.push_str("\nUPDATE: target went private on everything lol. stay tuned.\n");
    }
    out
}

const INSIGNIA_A: &str = r"
  ____   _____  __ __
 |    \ |     ||  |  |
 |  |  ||  |  ||_   _|
 |____/ |_____||__|__|   D R O P
";

const INSIGNIA_B: &str = r"
 <<<<<<<<<< DOX DROP >>>>>>>>>>
 ==============================
";

fn render_labeled(
    out: &mut String,
    persona: &Persona,
    plan: &RenderPlan,
    world: &dox_geo::model::World,
    variation: Variation,
    rng: &mut ChaCha8Rng,
    with_insignia: bool,
) {
    if with_insignia {
        out.push_str(if variation.alt_insignia {
            INSIGNIA_B
        } else {
            INSIGNIA_A
        });
        out.push('\n');
    }
    let f = &plan.fields;
    if f.real_name {
        out.push_str(&format!("Name: {}\n", persona.full_name()));
    } else {
        out.push_str(&format!("Alias: {}\n", persona.usernames[0]));
    }
    if f.age {
        out.push_str(&format!("Age: {}\n", persona.age));
    }
    if f.dob {
        let (y, m, d) = persona.dob;
        out.push_str(&format!("DOB: {m:02}/{d:02}/{y}\n"));
    }
    match persona.gender {
        Gender::Male => out.push_str("Gender: M\n"),
        Gender::Female => out.push_str("Gender: F\n"),
        Gender::Other => out.push_str("Gender: other\n"),
    }
    if f.address {
        let addr = if f.zip {
            persona.address.format(world)
        } else {
            // Address without zip-level precision: drop the zip.
            let full = persona.address.format(world);
            full.rsplit_once(' ')
                .map(|(a, _)| a.to_string())
                .unwrap_or(full)
        };
        out.push_str(&format!("Address: {addr}\n"));
    }
    if f.phone {
        out.push_str(&format!("Phone: {}\n", persona.phone));
    }
    if f.email {
        out.push_str(&format!("Email: {}\n", persona.email));
    }
    if f.ip {
        out.push_str(&format!("IP: {}\n", persona.ip));
    }
    if f.isp {
        out.push_str(&format!("ISP: {}\n", persona.isp_name));
    }
    if f.school {
        out.push_str(&format!("School: {}\n", persona.school));
    }
    if f.passwords {
        out.push_str(&format!("Password: {}\n", persona.password));
    }
    if f.ssn {
        out.push_str(&format!("SSN: {}\n", persona.ssn));
    }
    if f.credit_card {
        out.push_str(&format!("CC: {}\n", persona.credit_card));
    }
    if f.financial {
        out.push_str(&format!("Financial: {}\n", persona.financial));
    }
    if f.physical {
        out.push_str(&format!("Description: {}\n", persona.physical));
    }
    if f.criminal {
        out.push_str(&format!("Criminal record: {}\n", persona.criminal));
    }
    if f.family {
        out.push_str("Family:\n");
        for fam in &persona.family {
            out.push_str(&format!("  {}: {}\n", fam.relation, fam.name));
        }
    }
    if f.usernames {
        out.push_str(&format!(
            "Known aliases: {}\n",
            persona.usernames.join(", ")
        ));
    }
    render_osn_block(out, plan, rng);
    if plan.show_community {
        for (site, handle) in &persona.community_accounts {
            out.push_str(&format!("{site}: {handle}\n"));
        }
    }
}

fn render_compact(
    out: &mut String,
    persona: &Persona,
    plan: &RenderPlan,
    world: &dox_geo::model::World,
    rng: &mut ChaCha8Rng,
) {
    out.push_str("=== dox ===\n");
    let f = &plan.fields;
    if f.real_name {
        out.push_str(&format!("name; {}\n", persona.full_name().to_lowercase()));
    }
    if f.age {
        out.push_str(&format!("age; {}\n", persona.age));
    }
    if f.address {
        out.push_str(&format!("addy; {}\n", persona.address.format(world)));
    }
    if f.phone {
        out.push_str(&format!("phone; {}\n", persona.phone));
    }
    if f.email {
        out.push_str(&format!("email; {}\n", persona.email));
    }
    if f.ip {
        out.push_str(&format!("ip; {}\n", persona.ip));
    }
    if f.family {
        let fam: Vec<String> = persona
            .family
            .iter()
            .map(|m| format!("{} ({})", m.name, m.relation))
            .collect();
        out.push_str(&format!("family; {}\n", fam.join(" - ")));
    }
    render_osn_block(out, plan, rng);
    if plan.show_community {
        for (site, handle) in &persona.community_accounts {
            out.push_str(&format!("{site}; {handle}\n"));
        }
    }
}

fn render_sloppy(
    out: &mut String,
    persona: &Persona,
    plan: &RenderPlan,
    world: &dox_geo::model::World,
    rng: &mut ChaCha8Rng,
) {
    // Narrative style with minimal labels and no stable signature
    // vocabulary — the "subtle doxes" the paper's §7.3 wants future work
    // to catch. These drive the classifier's false negatives (Table 1
    // recall 0.89) and the extractor's misses.
    let f = &plan.fields;
    let openers = [
        "remember that guy from the thread last week? found them.",
        "took about twenty minutes.",
        "someone asked for info on this one, here you go.",
        "turns out anonymity is hard.",
        "posting this before the thread dies.",
    ];
    out.push_str(openers[rng.random_range(0..openers.len())]);
    out.push(' ');
    if f.real_name {
        let forms = [
            format!("goes by {} irl. ", persona.full_name()),
            format!("real one is {}. ", persona.full_name()),
            format!("{} if you were wondering. ", persona.full_name()),
        ];
        out.push_str(&forms[rng.random_range(0..forms.len())]);
    }
    if f.age && rng.random_range(0.0..1.0) < 0.7 {
        out.push_str(&format!("{} years old. ", persona.age));
    }
    if f.address && rng.random_range(0.0..1.0) < 0.8 {
        out.push_str(&format!("lives around {}. ", persona.address.format(world)));
    }
    if f.phone && rng.random_range(0.0..1.0) < 0.6 {
        out.push_str(&format!("reachable at {}. ", persona.phone));
    }
    if f.ip && rng.random_range(0.0..1.0) < 0.6 {
        out.push_str(&format!("posts from {}", persona.ip));
        if f.isp {
            out.push_str(&format!(" ({})", persona.isp_name));
        }
        out.push_str(". ");
    }
    if f.email {
        out.push_str(&format!("inbox is {} ", persona.email));
    }
    for (network, handle) in &plan.osn {
        out.push_str(&format!(
            "{} {} ",
            network.label_aliases()[rng.random_range(0..network.label_aliases().len())],
            handles::render_reference(*network, handle, rng)
        ));
    }
    out.push('\n');
}

/// The subtlest dox form: a couple of thread-chatter lines plus one or two
/// pieces of actual information. Nearly indistinguishable from the
/// dox-discussion hard negative at the bag-of-words level — by design,
/// this is where the classifier's errors live.
fn render_fragment(out: &mut String, persona: &Persona, plan: &RenderPlan, rng: &mut ChaCha8Rng) {
    let chatter = crate::names::THREAD_CHATTER;
    for _ in 0..rng.random_range(1..3usize) {
        out.push_str(chatter[rng.random_range(0..chatter.len())]);
        out.push('\n');
    }
    if plan.fields.real_name && rng.random_range(0.0..1.0) < 0.85 {
        out.push_str(&format!("first name {}", persona.first_name.to_lowercase()));
        if rng.random_range(0.0..1.0) < 0.6 {
            out.push_str(&format!(" last name {}", persona.last_name.to_lowercase()));
        }
        out.push('\n');
    }
    // Half the fragments name accounts with a network keyword; the other
    // half just paste the bare handle ("goes by xX_name_Xx") — the
    // keyword-free form is what the classifier misses (Table 1's false
    // negatives, the paper's §7.3 "more subtle instances of doxing").
    let with_alias = rng.random_range(0.0..1.0) < 0.5;
    for (network, handle) in plan.osn.iter().take(2) {
        if with_alias {
            out.push_str(&format!(
                "{} is {}\n",
                network.label_aliases()[rng.random_range(0..network.label_aliases().len())],
                handle
            ));
        } else {
            out.push_str(&format!("goes by {handle} most places\n"));
        }
    }
    if plan.fields.phone && rng.random_range(0.0..1.0) < 0.4 {
        out.push_str(&format!(
            "number ends {}\n",
            &persona.phone[persona.phone.len() - 4..]
        ));
    }
}

/// A screencap-mirror stub: the dox content is behind a link; the text
/// names only the victim's alias (and at most one account). Uses the same
/// mirror/screencap vocabulary as benign link-sharing chat.
fn render_stub(out: &mut String, persona: &Persona, plan: &RenderPlan, rng: &mut ChaCha8Rng) {
    out.push_str(&format!(
        "dox of {} in the screencap, too long to type out\n",
        persona.usernames[0]
    ));
    out.push_str(&format!(
        "mirror: files.archive.example/{:08x}\n",
        rng.random_range(0..u32::MAX)
    ));
    if let Some((_, handle)) = plan.osn.first() {
        out.push_str(&format!("{handle} btw\n"));
    }
    let chatter = crate::names::THREAD_CHATTER;
    out.push_str(chatter[rng.random_range(0..chatter.len())]);
    out.push('\n');
}

fn render_osn_block(out: &mut String, plan: &RenderPlan, rng: &mut ChaCha8Rng) {
    for (network, handle) in &plan.osn {
        let reference = handles::render_reference(*network, handle, rng);
        let style = rng.random_range(0..4u8);
        let alias = network.label_aliases()[rng.random_range(0..network.label_aliases().len())];
        match style {
            // "Facebook: https://facebook.com/example"
            0 => out.push_str(&format!("{}: {}\n", network.name(), reference)),
            // "FB example"
            1 => out.push_str(&format!("{} {}\n", alias.to_uppercase(), handle)),
            // "fbs: example"
            2 => out.push_str(&format!("{alias}: {reference}\n")),
            // "facebooks; example"
            _ => out.push_str(&format!("{alias}; {handle}\n")),
        }
    }
}

fn motivation_text(motivation: Motivation, persona: &Persona, rng: &mut ChaCha8Rng) -> String {
    let first = &persona.first_name;
    match motivation {
        Motivation::Justice => [
            format!("why? {first} scammed half the forum and thought we forgot. justice served."),
            "this one snitched to the mods and got three people banned. now everyone knows who you are."
                .to_string(),
            format!("{first} ripped off buyers for months. consider this justice."),
        ][rng.random_range(0..3)]
        .clone(),
        Motivation::Revenge => [
            format!("you stole my girl {first}, now the internet knows everything about you. revenge is sweet."),
            "payback for what you did to me last summer. enjoy the attention.".to_string(),
            format!("{first} thought they could trash talk me and walk away. this is revenge."),
        ][rng.random_range(0..3)]
        .clone(),
        Motivation::Competitive => [
            "claimed to be undoxable. took us 20 minutes. better luck next time.".to_string(),
            "another 'anonymous' wannabe. we are simply better at this.".to_string(),
        ][rng.random_range(0..2)]
        .clone(),
        Motivation::Political => [
            "exposing another member of this hate group. they do not get to hide.".to_string(),
            "this person profits from animal abuse. the public deserves to know.".to_string(),
        ][rng.random_range(0..2)]
        .clone(),
    }
}

fn credit_line(credits: &[String], rng: &mut ChaCha8Rng) -> String {
    match (credits.len(), rng.random_range(0..2u8)) {
        (1, _) => format!("dropped by {}", credits[0]),
        (_, 0) => {
            let (last, rest) = credits.split_last().expect("len >= 2");
            format!("dropped by {} and {}", rest.join(", "), last)
        }
        _ => {
            let (first, rest) = credits.split_first().expect("len >= 2");
            format!(
                "dropped by {}, thanks to {} for the info",
                first,
                rest.join(" and ")
            )
        }
    }
}

fn format_ts(minutes: u64) -> String {
    let day = minutes / 1440;
    let rem = minutes % 1440;
    format!("2016-day{:03} {:02}:{:02}", day, rem / 60, rem % 60)
}

/// Build the [`DoxTruth`] record matching a rendered plan.
pub fn truth_of(
    persona: &Persona,
    plan: &RenderPlan,
    duplicate_of: Option<u64>,
    exact_duplicate: bool,
) -> DoxTruth {
    DoxTruth {
        persona_id: persona.id,
        age: persona.age,
        gender: persona.gender,
        primary_country: persona.primary_country,
        fields: plan.fields,
        osn_handles: plan.osn.clone(),
        community: if plan.show_community {
            persona.community
        } else {
            None
        },
        motivation: plan.motivation,
        credits: plan.credits.clone(),
        duplicate_of,
        exact_duplicate,
        sloppy: plan.sloppy,
        stub: plan.stub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persona::PersonaGenerator;
    use dox_geo::alloc::{AllocConfig, Allocation};
    use dox_geo::model::{World, WorldConfig};
    use rand_chacha::rand_core::SeedableRng;

    struct Fixture {
        world: World,
        personas: Vec<Persona>,
        doxers: DoxerPopulation,
        config: SynthConfig,
    }

    fn fixture() -> Fixture {
        let world = World::generate(&WorldConfig::default(), 3);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 3);
        let config = SynthConfig::test_scale();
        let mut g = PersonaGenerator::new(&world, &alloc, &config);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let personas = (0..200).map(|_| g.generate(&mut rng)).collect();
        Fixture {
            world,
            personas,
            doxers: DoxerPopulation::generate(5, 0.2),
            config,
        }
    }

    #[test]
    fn rendered_dox_contains_planned_fields() {
        let f = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let p = &f.personas[0];
        let mut plan = sample_plan(p, &f.config, false, &f.doxers, &mut rng);
        plan.sloppy = false;
        plan.template = 0;
        plan.fields.phone = true;
        plan.fields.ip = true;
        plan.fields.real_name = true;
        let text = render(p, &plan, &f.world, Variation::default(), &mut rng);
        assert!(text.contains(&p.phone));
        assert!(text.contains(&p.ip.to_string()));
        assert!(text.contains(&p.full_name()));
    }

    #[test]
    fn excluded_fields_do_not_leak() {
        let f = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let p = &f.personas[1];
        let mut plan = sample_plan(p, &f.config, false, &f.doxers, &mut rng);
        plan.sloppy = false;
        plan.template = 0;
        plan.fields.ssn = false;
        plan.fields.credit_card = false;
        plan.fields.passwords = false;
        let text = render(p, &plan, &f.world, Variation::default(), &mut rng);
        assert!(!text.contains(&p.ssn));
        assert!(!text.contains(&p.credit_card));
        assert!(!text.contains(&p.password));
    }

    #[test]
    fn osn_rates_approximate_table9() {
        let f = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let n = 4000;
        let mut fb = 0usize;
        for i in 0..n {
            let p = &f.personas[i % f.personas.len()];
            let plan = sample_plan(p, &f.config, false, &f.doxers, &mut rng);
            if plan.osn.iter().any(|(net, _)| *net == Network::Facebook) {
                fb += 1;
            }
        }
        // Table 9 target 17.8 %, generated at target/attenuation
        // (see OsnRates::paper_wild), dampened by account ownership 0.9.
        let expected = 0.178 / 0.78 * 0.9;
        let rate = fb as f64 / n as f64;
        assert!(
            (rate - expected).abs() < 0.02,
            "facebook rate {rate} vs {expected}"
        );
    }

    #[test]
    fn proof_of_work_doxes_richer() {
        let f = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let n = 2000;
        let count = |pow: bool, rng: &mut ChaCha8Rng| {
            (0..n)
                .map(|i| {
                    sample_plan(
                        &f.personas[i % f.personas.len()],
                        &f.config,
                        pow,
                        &f.doxers,
                        rng,
                    )
                    .osn
                    .len()
                })
                .sum::<usize>() as f64
                / n as f64
        };
        let wild = count(false, &mut rng);
        let pow = count(true, &mut rng);
        assert!(pow > wild * 2.0, "pow {pow} vs wild {wild}");
    }

    #[test]
    fn near_duplicate_differs_but_shares_content() {
        let f = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let p = &f.personas[2];
        let mut plan = sample_plan(p, &f.config, false, &f.doxers, &mut rng);
        plan.sloppy = false;
        plan.template = 0;
        plan.fields.real_name = true;
        let mut rng_a = ChaCha8Rng::seed_from_u64(100);
        let mut rng_b = ChaCha8Rng::seed_from_u64(100);
        let original = render(p, &plan, &f.world, Variation::default(), &mut rng_a);
        let dup = render(
            p,
            &plan,
            &f.world,
            Variation {
                timestamp: Some(12345),
                alt_insignia: true,
                update_section: true,
            },
            &mut rng_b,
        );
        assert_ne!(original, dup);
        assert!(dup.contains("UPDATE"));
        assert!(dup.contains(&p.full_name()));
        assert!(original.contains(&p.full_name()));
    }

    #[test]
    fn credit_lines_mention_all_credited() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let credits = vec![
            "DoxerA".to_string(),
            "@doxerb".to_string(),
            "DoxerC".to_string(),
        ];
        for _ in 0..10 {
            let line = credit_line(&credits, &mut rng);
            for c in &credits {
                assert!(line.contains(c.as_str()), "{line} missing {c}");
            }
            assert!(line.starts_with("dropped by"));
        }
    }

    #[test]
    fn motivation_rates_approximate_table8() {
        let f = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let n = 6000;
        let mut justice = 0usize;
        let mut any = 0usize;
        for i in 0..n {
            let plan = sample_plan(
                &f.personas[i % f.personas.len()],
                &f.config,
                false,
                &f.doxers,
                &mut rng,
            );
            if plan.motivation == Some(Motivation::Justice) {
                justice += 1;
            }
            if plan.motivation.is_some() {
                any += 1;
            }
        }
        let j = justice as f64 / n as f64;
        let a = any as f64 / n as f64;
        assert!((j - 0.147).abs() < 0.02, "justice {j}");
        assert!((a - 0.285).abs() < 0.025, "any motivation {a}");
    }

    #[test]
    fn truth_reflects_plan() {
        let f = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let p = &f.personas[3];
        let plan = sample_plan(p, &f.config, false, &f.doxers, &mut rng);
        let t = truth_of(p, &plan, Some(7), true);
        assert_eq!(t.persona_id, p.id);
        assert_eq!(t.fields, plan.fields);
        assert_eq!(t.osn_handles, plan.osn);
        assert_eq!(t.duplicate_of, Some(7));
        assert!(t.exact_duplicate);
    }

    #[test]
    fn sloppy_doxes_have_no_labels() {
        let f = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let p = &f.personas[4];
        let mut plan = sample_plan(p, &f.config, false, &f.doxers, &mut rng);
        plan.sloppy = true;
        plan.stub = false;
        plan.template = 0; // narrative variant
        let text = render(p, &plan, &f.world, Variation::default(), &mut rng);
        assert!(
            !text.contains("Name:"),
            "narrative must not use labels: {text}"
        );
    }

    #[test]
    fn fragment_doxes_share_chatter_with_discussions() {
        let f = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(26);
        let p = &f.personas[5];
        let mut plan = sample_plan(p, &f.config, false, &f.doxers, &mut rng);
        plan.sloppy = true;
        plan.stub = false;
        plan.template = 1; // fragment variant
        let text = render(p, &plan, &f.world, Variation::default(), &mut rng);
        let first_line = text.lines().next().unwrap();
        assert!(
            crate::names::THREAD_CHATTER.contains(&first_line),
            "fragment opens with shared chatter: {first_line}"
        );
    }

    #[test]
    fn stub_doxes_reveal_only_alias_and_mirror() {
        let f = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(27);
        let p = &f.personas[6];
        let mut plan = sample_plan(p, &f.config, false, &f.doxers, &mut rng);
        plan.stub = true;
        let text = render(p, &plan, &f.world, Variation::default(), &mut rng);
        assert!(text.contains("screencap"));
        assert!(text.contains("files.archive.example/"));
        assert!(text.contains(&p.usernames[0]));
        assert!(!text.contains(&p.phone), "stubs leak no phone");
        assert!(!text.contains(&p.full_name()), "stubs leak no real name");
    }
}
