//! Procedural name and word inventories.
//!
//! All names are synthetic: either drawn from short invented lists or
//! composed from syllables. No real-person data is embedded. The lists are
//! deliberately small — what matters for the pipeline is the *shape* of the
//! text (a name-looking token pair after "Name:"), not census realism.

use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Invented given names (mixed-gender pools the generator samples from).
pub const FIRST_NAMES_M: &[&str] = &[
    "Jaren", "Kolten", "Dastin", "Marek", "Torvin", "Eldan", "Rikard", "Soren", "Calder", "Bramm",
    "Ludek", "Ondrei", "Pavel", "Quinten", "Ragnar", "Stellan", "Tobin", "Ulric", "Vance",
    "Wendel", "Yorick", "Zane", "Anders", "Boris",
];

/// Invented given names, feminine pool.
pub const FIRST_NAMES_F: &[&str] = &[
    "Maren", "Kaia", "Della", "Sorcha", "Tilde", "Una", "Vesla", "Wren", "Ysolt", "Zelda",
    "Anneli", "Brenna", "Cerys", "Dagny", "Elin", "Freja", "Greta", "Hedda", "Ingrid", "Jorun",
    "Katla", "Liv", "Moira", "Nessa",
];

/// Syllables composed into surnames.
const SURNAME_FIRST: &[&str] = &[
    "Ald", "Berg", "Corn", "Dahl", "Eker", "Fisk", "Gran", "Holm", "Iver", "Jern", "Kvist", "Lind",
    "Mork", "Nord", "Oster", "Palm", "Quist", "Rosen", "Sand", "Thorn", "Ulv", "Vang", "West",
    "Yster",
];
const SURNAME_SECOND: &[&str] = &[
    "berg", "dal", "feld", "gren", "haug", "land", "lund", "mark", "nes", "rud", "stad", "strom",
    "vik", "wall", "by", "sen",
];

/// Street-name stems.
const STREET_FIRST: &[&str] = &[
    "Maple", "Cedar", "Birch", "Harbor", "Mill", "Quarry", "Summit", "Vale", "Willow", "Aspen",
    "Bluff", "Canal", "Drift", "Elm", "Fern", "Grove",
];
const STREET_SECOND: &[&str] = &[
    "Street", "Avenue", "Lane", "Road", "Court", "Drive", "Terrace", "Way",
];

/// School-name stems.
const SCHOOL_FIRST: &[&str] = &[
    "Northgate",
    "Riverview",
    "Stonebridge",
    "Lakecrest",
    "Fairhollow",
    "Westmere",
    "Oakhurst",
    "Pinefield",
];
const SCHOOL_KIND: &[&str] = &["High School", "Academy", "Middle School", "College"];

/// Email-provider domains (all under reserved example TLDs).
pub const EMAIL_DOMAINS: &[&str] = &[
    "mailbox.example",
    "quickmail.example",
    "postal.example",
    "inbox.example",
    "webmail.example",
];

/// Gaming-community sites used for the community classification (Table 7):
/// a dox listing ≥ 2 of these marks the victim as a gamer.
pub const GAMING_SITES: &[&str] = &[
    "steamcommunity.example",
    "minecraftforum.example",
    "speedrun.example",
    "clanhub.example",
    "gamebattles.example",
];

/// Hacking-community sites (Table 7): ≥ 2 marks the victim as a hacker.
pub const HACKING_SITES: &[&str] = &[
    "hackforums.example",
    "leakbase.example",
    "crackcommunity.example",
    "exploitden.example",
];

/// Relations used for family-member lines in dox files.
pub const RELATIONS: &[&str] = &[
    "mother",
    "father",
    "brother",
    "sister",
    "uncle",
    "aunt",
    "grandmother",
    "cousin",
];

/// Thread-chatter lines shared between dox *fragments* (subtle doxes that
/// attach real information) and dox *discussion* posts (no information).
/// Sharing one pool is deliberate: the only difference between the two
/// classes is the per-victim data itself, which is exactly the ambiguity
/// that caps a bag-of-words classifier's accuracy (paper Table 1).
pub const THREAD_CHATTER: &[&str] = &[
    "ok since everyone keeps asking in the thread",
    "took longer than expected but here it is",
    "posting what we have so far, more later",
    "the rest is easy to find once you have this",
    "anyone have the dox on this clown from the stream last night",
    "drop the dox or it didnt happen",
    "someone said his address got posted but the paste is gone",
    "the dox was fake, wrong name wrong state, embarrassing",
    "mods delete the dox threads within an hour anyway",
    "i saw the phone number before the delete, not posting it",
    "his skype and twitter were in the old paste",
    "first name was right but everything else was somebody else's",
    "check the archive before asking again",
    "this has been reposted like four times now",
    "last thread got nuked before i could save it",
    "pretty sure that paste was taken down within the hour",
    "somebody claimed they had the school too, never delivered",
    "the email bounced so that part is stale",
    "he changed all his usernames after the last thread",
    "stop spoonfeeding, the info is one search away",
    "half of it was recycled from the old drop",
    "if it gets deleted again someone mirror it this time",
    "the zip was wrong by one digit, fixed version when",
    "nobody verified the isp claim, take it with salt",
    "that is the sister's account not his, learn to read",
    "same guy who got dropped in november, old news",
    "the discord screenshots are worthless without the rest",
    "why do these threads always die before the good part",
];

/// A base vocabulary for the Markov prose generator: ordinary words so
/// non-dox "essay" pastes look like text, not noise.
pub const PROSE_SEED: &str = "\
the project started as a small idea and grew into something bigger than \
anyone expected over the first year the team shipped three releases and \
learned a lot about what users actually wanted from the product the hardest \
part was keeping the scope small while still making progress every week we \
wrote notes about what worked and what did not and those notes became the \
basis for the next plan when the server crashed during the demo everyone \
stayed calm and we recovered in under an hour which felt like a small \
victory the documentation needed work so we spent a month rewriting the \
guides and the tutorials after that support requests dropped by half and \
the forum became a friendlier place people started sharing their own \
configurations and scripts which we collected into a community repository \
the lesson we keep coming back to is that steady boring work beats clever \
tricks almost every time and that listening to the quiet users matters as \
much as answering the loud ones next quarter the plan is to clean up the \
build system migrate the old data and finally write the tests we keep \
postponing";

/// Pick a given name matching `feminine`.
pub fn first_name(rng: &mut ChaCha8Rng, feminine: bool) -> String {
    let pool = if feminine {
        FIRST_NAMES_F
    } else {
        FIRST_NAMES_M
    };
    pool[rng.random_range(0..pool.len())].to_string()
}

/// Compose a synthetic surname.
pub fn last_name(rng: &mut ChaCha8Rng) -> String {
    format!(
        "{}{}",
        SURNAME_FIRST[rng.random_range(0..SURNAME_FIRST.len())],
        SURNAME_SECOND[rng.random_range(0..SURNAME_SECOND.len())]
    )
}

/// Compose a street name ("Maple Street").
pub fn street_name(rng: &mut ChaCha8Rng) -> String {
    format!(
        "{} {}",
        STREET_FIRST[rng.random_range(0..STREET_FIRST.len())],
        STREET_SECOND[rng.random_range(0..STREET_SECOND.len())]
    )
}

/// Compose a school name ("Riverview High School").
pub fn school_name(rng: &mut ChaCha8Rng) -> String {
    format!(
        "{} {}",
        SCHOOL_FIRST[rng.random_range(0..SCHOOL_FIRST.len())],
        SCHOOL_KIND[rng.random_range(0..SCHOOL_KIND.len())]
    )
}

/// Pick an email domain.
pub fn email_domain(rng: &mut ChaCha8Rng) -> &'static str {
    EMAIL_DOMAINS[rng.random_range(0..EMAIL_DOMAINS.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn names_nonempty_and_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(first_name(&mut a, true), first_name(&mut b, true));
        assert_eq!(last_name(&mut a), last_name(&mut b));
        assert!(!street_name(&mut a).is_empty());
        assert!(!school_name(&mut a).is_empty());
    }

    #[test]
    fn pools_disjoint_by_gender() {
        for m in FIRST_NAMES_M {
            assert!(!FIRST_NAMES_F.contains(m));
        }
    }

    #[test]
    fn email_domains_are_reserved_tlds() {
        for d in EMAIL_DOMAINS {
            assert!(d.ends_with(".example"), "{d} must be a reserved TLD");
        }
    }

    #[test]
    fn community_site_lists_disjoint() {
        for g in GAMING_SITES {
            assert!(!HACKING_SITES.contains(g));
        }
    }

    #[test]
    fn street_names_have_two_parts() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..20 {
            let s = street_name(&mut rng);
            assert_eq!(s.split(' ').count(), 2);
        }
    }

    #[test]
    fn prose_seed_is_substantial() {
        assert!(PROSE_SEED.split_whitespace().count() > 150);
    }
}
