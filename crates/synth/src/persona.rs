//! Victim personas.
//!
//! A [`Persona`] is a fully realized synthetic person: demographics drawn
//! from Table 5's distributions, a home address in the synthetic world, an
//! IP address whose geolocation is *mostly* consistent with the address
//! (calibrated to §4.1's 32/36 close, 1/36 adjacent, 3/36 far), and a set
//! of online accounts. Dox files render a subset of these attributes; the
//! measurement pipeline then re-derives the distributions.

use crate::config::{DemographicRates, SynthConfig};
use crate::handles;
use crate::names;
use crate::truth::{Community, Gender};
use dox_geo::alloc::Allocation;
use dox_geo::model::{CityId, World};
use dox_geo::postal::PostalAddress;
use dox_osn::network::Network;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A family member mention.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FamilyMember {
    /// Relation ("mother", "brother", …).
    pub relation: String,
    /// Their (synthetic) name.
    pub name: String,
}

/// A fully realized synthetic victim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Persona {
    /// Stable id.
    pub id: u64,
    /// Given name.
    pub first_name: String,
    /// Surname.
    pub last_name: String,
    /// Age in years (Table 5: min 10, mean ≈ 21.7, max 74).
    pub age: u8,
    /// Gender (Table 5 shares).
    pub gender: Gender,
    /// Synthetic date of birth, consistent with `age`; `(year, month, day)`
    /// with year relative to the study year 2016.
    pub dob: (u16, u8, u8),
    /// Home address in the synthetic world.
    pub address: PostalAddress,
    /// Whether the persona lives in the primary (USA stand-in) country.
    pub primary_country: bool,
    /// Phone number (reserved 555-01xx style exchange).
    pub phone: String,
    /// Email address (reserved `.example` domain).
    pub email: String,
    /// Last-seen IP address.
    pub ip: Ipv4Addr,
    /// Name of the ISP owning that IP.
    pub isp_name: String,
    /// A password (synthetic) that "leaked".
    pub password: String,
    /// SSN-shaped identifier (random digits, 900+ area = invalid range).
    pub ssn: String,
    /// Credit-card-shaped number (prefix 9999 — not a valid IIN).
    pub credit_card: String,
    /// School attended.
    pub school: String,
    /// Physical description.
    pub physical: String,
    /// Criminal-record blurb.
    pub criminal: String,
    /// Other financial detail.
    pub financial: String,
    /// Family members.
    pub family: Vec<FamilyMember>,
    /// Miscellaneous usernames (non-OSN).
    pub usernames: Vec<String>,
    /// OSN accounts: `(network, handle)`. Which of these a given dox
    /// reveals is decided at render time.
    pub accounts: Vec<(Network, String)>,
    /// Community-site accounts: `(site, handle)` — drives Table 7 labels.
    pub community_accounts: Vec<(String, String)>,
    /// Ground-truth community, if any.
    pub community: Option<Community>,
}

impl Persona {
    /// Full display name.
    pub fn full_name(&self) -> String {
        format!("{} {}", self.first_name, self.last_name)
    }

    /// The handle this persona uses on `network`, if they have an account.
    pub fn handle_on(&self, network: Network) -> Option<&str> {
        self.accounts
            .iter()
            .find(|(n, _)| *n == network)
            .map(|(_, h)| h.as_str())
    }
}

/// Outcomes of the IP-vs-address consistency lottery (§4.1 calibration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IpPlacement {
    /// ISP homed in the persona's state (32/36).
    SameState,
    /// ISP in an adjacent state (1/36).
    AdjacentState,
    /// ISP anywhere else (3/36).
    Far,
}

/// Generates personas against a geographic world and IP allocation.
#[derive(Debug)]
pub struct PersonaGenerator<'w> {
    world: &'w World,
    alloc: &'w Allocation,
    demo: DemographicRates,
    next_id: u64,
}

impl<'w> PersonaGenerator<'w> {
    /// Create a generator.
    pub fn new(world: &'w World, alloc: &'w Allocation, config: &SynthConfig) -> Self {
        Self {
            world,
            alloc,
            demo: config.demographics,
            next_id: 0,
        }
    }

    /// Number of personas generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Generate the next persona.
    pub fn generate(&mut self, rng: &mut ChaCha8Rng) -> Persona {
        let id = self.next_id;
        self.next_id += 1;

        let gender = self.sample_gender(rng);
        let feminine = gender == Gender::Female;
        let first_name = names::first_name(rng, feminine);
        let last_name = names::last_name(rng);
        let age = self.sample_age(rng);
        let dob = sample_dob(age, rng);

        let primary_country = rng.random_range(0.0..1.0) < self.demo.primary_country;
        let city = self.sample_city(primary_country, rng);
        let city_info = self.world.city(city);
        let zip = rng.random_range(city_info.zip_range.0..=city_info.zip_range.1);
        let address = PostalAddress {
            number: rng.random_range(1..9999),
            street: names::street_name(rng),
            city,
            zip,
        };

        let (ip, isp_name) = self.sample_ip(city, rng);

        let base = handles::base_handle(&first_name, &last_name, rng);
        let base = handles::decorate(&base, rng);
        let email = format!(
            "{}@{}",
            base.replace(['-', '.'], "_"),
            names::email_domain(rng)
        );
        let phone = format!(
            "({:03}) 555-01{:02}",
            rng.random_range(200..989u32),
            rng.random_range(0..100u32)
        );

        // Every persona owns every network account with some probability;
        // dox files later reveal a subset. Ownership is generous so the
        // render-time Table 9 / Table 2 rates are the binding constraint.
        let mut accounts = Vec::new();
        for network in Network::ALL {
            if rng.random_range(0.0..1.0) < 0.9 {
                let h = handles::network_handle(&base, network, id, rng);
                accounts.push((network, h));
            }
        }

        let (community, community_accounts) = sample_community(&base, rng);

        let n_family = rng.random_range(1..4usize);
        let family = (0..n_family)
            .map(|_| {
                let rel = names::RELATIONS[rng.random_range(0..names::RELATIONS.len())];
                let fem = matches!(rel, "mother" | "sister" | "aunt" | "grandmother");
                FamilyMember {
                    relation: rel.to_string(),
                    name: format!("{} {}", names::first_name(rng, fem), last_name.clone()),
                }
            })
            .collect();

        let n_usernames = rng.random_range(1..4usize);
        let usernames = (0..n_usernames)
            .map(|_| handles::decorate(&base, rng))
            .collect();

        Persona {
            id,
            first_name,
            last_name,
            age,
            gender,
            dob,
            address,
            primary_country,
            phone,
            email,
            ip,
            isp_name,
            password: format!("hunter{}", rng.random_range(10..9999u32)),
            ssn: format!(
                "9{:02}-{:02}-{:04}",
                rng.random_range(0..100u32),
                rng.random_range(10..99u32),
                rng.random_range(0..10000u32)
            ),
            credit_card: format!(
                "9999 {:04} {:04} {:04}",
                rng.random_range(0..10000u32),
                rng.random_range(0..10000u32),
                rng.random_range(0..10000u32)
            ),
            school: names::school_name(rng),
            physical: format!(
                "{}'{}\" {} hair",
                rng.random_range(5..7u32),
                rng.random_range(0..12u32),
                ["brown", "black", "blond", "red"][rng.random_range(0..4)]
            ),
            criminal: ["shoplifting 2014", "vandalism 2013", "none found"][rng.random_range(0..3)]
                .to_string(),
            financial: format!("owes ${} on a car loan", rng.random_range(500..20000u32)),
            family,
            usernames,
            accounts,
            community_accounts,
            community,
        }
    }

    fn sample_gender(&self, rng: &mut ChaCha8Rng) -> Gender {
        let u: f64 = rng.random_range(0.0..1.0);
        if u < self.demo.male {
            Gender::Male
        } else if u < self.demo.male + self.demo.female {
            Gender::Female
        } else {
            Gender::Other
        }
    }

    fn sample_age(&self, rng: &mut ChaCha8Rng) -> u8 {
        let g = sample_gamma(self.demo.age_shape, self.demo.age_scale, rng);
        let age = self.demo.age_min as f64 + g;
        age.clamp(self.demo.age_min as f64, self.demo.age_max as f64)
            .round() as u8
    }

    fn sample_city(&self, primary: bool, rng: &mut ChaCha8Rng) -> CityId {
        let country = if primary {
            self.world.primary_country()
        } else {
            let others: Vec<_> = self
                .world
                .countries()
                .iter()
                .filter(|c| !c.primary)
                .collect();
            others[rng.random_range(0..others.len())]
        };
        let state = country.states[rng.random_range(0..country.states.len())];
        let cities = &self.world.state(state).cities;
        // Population-weighted choice.
        let weights: Vec<f64> = cities
            .iter()
            .map(|&c| self.world.city(c).population_weight)
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.random_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                return cities[i];
            }
            pick -= w;
        }
        *cities.last().expect("states have at least one city")
    }

    fn sample_ip(&self, home_city: CityId, rng: &mut ChaCha8Rng) -> (Ipv4Addr, String) {
        let placement = {
            let u: f64 = rng.random_range(0.0..1.0);
            // §4.1: 32/36 same-state, 1/36 adjacent, 3/36 far.
            if u < 32.0 / 36.0 {
                IpPlacement::SameState
            } else if u < 33.0 / 36.0 {
                IpPlacement::AdjacentState
            } else {
                IpPlacement::Far
            }
        };
        let home_state = self.world.city(home_city).state;
        let state = match placement {
            IpPlacement::SameState => home_state,
            IpPlacement::AdjacentState => {
                let adj: Vec<_> = self
                    .world
                    .states()
                    .iter()
                    .filter(|s| self.world.states_adjacent(s.id, home_state))
                    .map(|s| s.id)
                    .collect();
                if adj.is_empty() {
                    home_state
                } else {
                    adj[rng.random_range(0..adj.len())]
                }
            }
            IpPlacement::Far => {
                let far: Vec<_> = self
                    .world
                    .states()
                    .iter()
                    .filter(|s| s.id != home_state && !self.world.states_adjacent(s.id, home_state))
                    .map(|s| s.id)
                    .collect();
                far[rng.random_range(0..far.len())]
            }
        };
        let isps = self.alloc.isps_in_state(state);
        let isp = isps[rng.random_range(0..isps.len())];
        let block = &isp.blocks[rng.random_range(0..isp.blocks.len())];
        // Skip the network address itself.
        let offset = rng.random_range(1..block.size());
        let ip = block.nth(offset).expect("offset within block");
        (ip, isp.name.clone())
    }
}

/// Sample from Gamma(shape, scale) via Marsaglia–Tsang (shape ≥ 1).
fn sample_gamma(shape: f64, scale: f64, rng: &mut ChaCha8Rng) -> f64 {
    assert!(shape >= 1.0, "Marsaglia-Tsang needs shape >= 1");
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Box–Muller standard normal.
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

fn sample_dob(age: u8, rng: &mut ChaCha8Rng) -> (u16, u8, u8) {
    // Study year 2016.
    let year = 2016 - u16::from(age);
    (year, rng.random_range(1..13u8), rng.random_range(1..29u8))
}

fn sample_community(
    base: &str,
    rng: &mut ChaCha8Rng,
) -> (Option<Community>, Vec<(String, String)>) {
    // Community membership is decided at render time by the dox config
    // rates; the persona carries the *accounts* for every community type it
    // belongs to. Here we roll an independent membership to keep personas
    // reusable: ~14% gamers, ~5% hackers, ~1.3% celebrities (slightly above
    // Table 7 so render-time label rates bind).
    let u: f64 = rng.random_range(0.0..1.0);
    if u < 0.014 {
        (Some(Community::Celebrity), Vec::new())
    } else if u < 0.014 + 0.055 {
        let n = rng.random_range(2..4usize);
        let accounts = (0..n)
            .map(|i| {
                (
                    names::HACKING_SITES[i % names::HACKING_SITES.len()].to_string(),
                    format!("{base}_{i}"),
                )
            })
            .collect();
        (Some(Community::Hacker), accounts)
    } else if u < 0.014 + 0.055 + 0.14 {
        let n = rng.random_range(2..4usize);
        let accounts = (0..n)
            .map(|i| {
                (
                    names::GAMING_SITES[i % names::GAMING_SITES.len()].to_string(),
                    format!("{base}_{i}"),
                )
            })
            .collect();
        (Some(Community::Gamer), accounts)
    } else {
        (None, Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_geo::alloc::AllocConfig;
    use dox_geo::model::WorldConfig;
    use rand_chacha::rand_core::SeedableRng;

    struct Fixture {
        world: World,
        alloc: Allocation,
    }

    fn fixture() -> Fixture {
        let world = World::generate(
            &WorldConfig {
                countries: 4,
                states_per_country: 6,
                cities_per_state: 8,
            },
            77,
        );
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 77);
        Fixture { world, alloc }
    }

    fn make_personas(n: usize) -> Vec<Persona> {
        let f = fixture();
        let cfg = SynthConfig::test_scale();
        let mut g = PersonaGenerator::new(&f.world, &f.alloc, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        (0..n).map(|_| g.generate(&mut rng)).collect()
    }

    #[test]
    fn ids_sequential_and_unique() {
        let ps = make_personas(10);
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
    }

    #[test]
    fn age_distribution_matches_table5() {
        let ps = make_personas(5000);
        let ages: Vec<f64> = ps.iter().map(|p| p.age as f64).collect();
        let mean = ages.iter().sum::<f64>() / ages.len() as f64;
        let min = ages.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ages.iter().cloned().fold(0.0, f64::max);
        assert!((mean - 21.7).abs() < 1.0, "mean age {mean}");
        assert!(min >= 10.0);
        assert!(max <= 74.0);
    }

    #[test]
    fn gender_distribution_matches_table5() {
        let ps = make_personas(5000);
        let male = ps.iter().filter(|p| p.gender == Gender::Male).count() as f64 / 5000.0;
        let female = ps.iter().filter(|p| p.gender == Gender::Female).count() as f64 / 5000.0;
        assert!((male - 0.831).abs() < 0.02, "male {male}");
        assert!((female - 0.165).abs() < 0.02, "female {female}");
    }

    #[test]
    fn primary_country_share_matches_table5() {
        let ps = make_personas(5000);
        let primary = ps.iter().filter(|p| p.primary_country).count() as f64 / 5000.0;
        assert!((primary - 0.645).abs() < 0.02, "primary {primary}");
    }

    #[test]
    fn dob_consistent_with_age() {
        for p in make_personas(100) {
            assert_eq!(u16::from(p.age), 2016 - p.dob.0);
            assert!((1..=12).contains(&p.dob.1));
            assert!((1..=28).contains(&p.dob.2));
        }
    }

    #[test]
    fn ip_mostly_consistent_with_address() {
        let f = fixture();
        let cfg = SynthConfig::test_scale();
        let mut g = PersonaGenerator::new(&f.world, &f.alloc, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let db = dox_geo::geoip::GeoIpDb::build(&f.world, &f.alloc);
        let n = 3000;
        let mut same = 0usize;
        let mut adjacent = 0usize;
        for _ in 0..n {
            let p = g.generate(&mut rng);
            let rec = db.lookup(p.ip).expect("persona IPs are allocated");
            let home = p.address.state(&f.world);
            if rec.state == home {
                same += 1;
            } else if f.world.states_adjacent(rec.state, home) {
                adjacent += 1;
            }
        }
        let fs = same as f64 / n as f64;
        let fa = adjacent as f64 / n as f64;
        assert!((fs - 32.0 / 36.0).abs() < 0.03, "same-state {fs}");
        assert!((fa - 1.0 / 36.0).abs() < 0.02, "adjacent {fa}");
    }

    #[test]
    fn phone_uses_reserved_exchange() {
        for p in make_personas(50) {
            assert!(p.phone.contains("555-01"), "{}", p.phone);
        }
    }

    #[test]
    fn email_uses_reserved_tld() {
        for p in make_personas(50) {
            assert!(p.email.ends_with(".example"), "{}", p.email);
            assert_eq!(p.email.matches('@').count(), 1);
        }
    }

    #[test]
    fn ssn_and_cc_use_invalid_ranges() {
        for p in make_personas(50) {
            assert!(p.ssn.starts_with('9'), "SSN area 900+ is never issued");
            assert!(p.credit_card.starts_with("9999"), "IIN 9999 is unassigned");
        }
    }

    #[test]
    fn community_members_have_enough_accounts() {
        let ps = make_personas(3000);
        for p in &ps {
            match p.community {
                Some(Community::Gamer) | Some(Community::Hacker) => {
                    assert!(p.community_accounts.len() >= 2);
                }
                _ => {}
            }
        }
        let gamers = ps
            .iter()
            .filter(|p| p.community == Some(Community::Gamer))
            .count() as f64
            / ps.len() as f64;
        assert!((gamers - 0.14).abs() < 0.03, "gamers {gamers}");
    }

    #[test]
    fn most_personas_have_most_accounts() {
        let ps = make_personas(500);
        let avg = ps.iter().map(|p| p.accounts.len()).sum::<usize>() as f64 / 500.0;
        assert!(avg > 5.0, "avg accounts {avg}");
    }

    #[test]
    fn deterministic_generation() {
        let a = make_personas(5);
        let b = make_personas(5);
        assert_eq!(a, b);
    }
}
