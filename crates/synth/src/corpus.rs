//! The corpus stream generator.
//!
//! Produces the full two-period document stream at the paper's per-source
//! volumes (Figure 1 / Table 4), with the duplicate model of §3.1.4, the
//! pastebin deletion dynamics of Table 3, and HTML bodies for chan sources
//! (exercising the `html2text` pre-processing path). Also builds the
//! classifier's labeled training sets: 749 "proof-of-work" positives and
//! 4,220 random-crawl negatives (§3.1.2), scaled.

use crate::config::{SourceVolume, SynthConfig};
use crate::dox_render::{render, sample_plan, truth_of, RenderPlan, Variation};
use crate::doxers::DoxerPopulation;
use crate::pastes::PasteGenerator;
use crate::persona::{Persona, PersonaGenerator};
use crate::truth::GroundTruth;
use dox_geo::alloc::Allocation;
use dox_geo::model::World;
use dox_osn::clock::{SimDuration, SimTime, MINUTES_PER_DAY};
use dox_osn::filters::StudyPeriods;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::ops::ControlFlow;

/// The text-sharing sources the paper scrapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Source {
    /// pastebin.com (raw text).
    Pastebin,
    /// 4chan.org/b/ (HTML posts).
    Chan4B,
    /// 4chan.org/pol/ (HTML posts).
    Chan4Pol,
    /// 8ch.net/pol/ (HTML posts).
    Chan8Pol,
    /// 8ch.net/baphomet/ (HTML posts).
    Chan8Baphomet,
}

// The vendored serde cannot derive `Deserialize`; unit variants
// round-trip as their variant-name strings.
impl serde::Deserialize for Source {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        match value.as_str()? {
            "Pastebin" => Some(Source::Pastebin),
            "Chan4B" => Some(Source::Chan4B),
            "Chan4Pol" => Some(Source::Chan4Pol),
            "Chan8Pol" => Some(Source::Chan8Pol),
            "Chan8Baphomet" => Some(Source::Chan8Baphomet),
            _ => None,
        }
    }
}

impl Source {
    /// All sources, Figure 1 order.
    pub const ALL: [Source; 5] = [
        Source::Pastebin,
        Source::Chan4B,
        Source::Chan4Pol,
        Source::Chan8Pol,
        Source::Chan8Baphomet,
    ];

    /// Display name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            Source::Pastebin => "pastebin.com",
            Source::Chan4B => "4chan/b",
            Source::Chan4Pol => "4chan/pol",
            Source::Chan8Pol => "8ch/pol",
            Source::Chan8Baphomet => "8ch/baphomet",
        }
    }

    /// Whether postings arrive as HTML (chan boards) or raw text.
    pub fn is_html(self) -> bool {
        !matches!(self, Source::Pastebin)
    }
}

/// One document in the synthetic stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthDoc {
    /// Global document id (posting order).
    pub id: u64,
    /// Where it was posted.
    pub source: Source,
    /// When it was posted.
    pub posted_at: SimTime,
    /// The body as the scraper receives it (HTML for chan sources).
    pub body: String,
    /// For pastebin documents: when the paste was deleted, if it was
    /// (drives Table 3). Deletion is relative to `posted_at`.
    pub deleted_after: Option<SimDuration>,
    /// Ground truth (never visible to the pipeline's inference path).
    pub truth: GroundTruth,
}

// The vendored serde cannot derive `Deserialize`; service-mode ingest
// round-trips whole documents by hand, mirroring the derive's
// Serialize encoding.
impl serde::Deserialize for SynthDoc {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        use serde::value::Value;
        Some(SynthDoc {
            id: value.get("id")?.as_u64()?,
            source: Source::from_value(value.get("source")?)?,
            posted_at: SimTime::from_value(value.get("posted_at")?)?,
            body: value.get("body")?.as_str()?.to_string(),
            deleted_after: match value.get("deleted_after")? {
                Value::Null => None,
                other => Some(SimDuration::from_value(other)?),
            },
            truth: GroundTruth::from_value(value.get("truth")?)?,
        })
    }
}

/// A remembered dox posting, for the duplicate model.
#[derive(Debug, Clone)]
struct DoxRecord {
    doc_id: u64,
    persona_idx: usize,
    plan: RenderPlan,
    body: String,
}

/// Generates the full corpus stream.
pub struct CorpusGenerator<'w> {
    world: &'w World,
    config: SynthConfig,
    personas: PersonaGenerator<'w>,
    persona_store: Vec<Persona>,
    doxers: DoxerPopulation,
    pastes: PasteGenerator,
    periods: StudyPeriods,
    history: Vec<DoxRecord>,
    next_doc_id: u64,
    rng: ChaCha8Rng,
}

impl<'w> CorpusGenerator<'w> {
    /// Create a generator over a geographic world and IP allocation.
    pub fn new(world: &'w World, alloc: &'w Allocation, config: SynthConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xC0_7055);
        let doxers = DoxerPopulation::generate(config.seed, config.scale.max(0.02));
        let pastes = PasteGenerator::new(config.hard_negative_rate);
        let personas = PersonaGenerator::new(world, alloc, &config);
        Self {
            world,
            config,
            personas,
            persona_store: Vec::new(),
            doxers,
            pastes,
            periods: StudyPeriods::paper(),
            history: Vec::new(),
            next_doc_id: 0,
            rng,
        }
    }

    /// The study periods in force.
    pub fn periods(&self) -> &StudyPeriods {
        &self.periods
    }

    /// The doxer population (the stand-in for the Twitter follow graph the
    /// paper queried).
    pub fn doxers(&self) -> &DoxerPopulation {
        &self.doxers
    }

    /// Personas realized so far (victims of generated doxes).
    pub fn personas(&self) -> &[Persona] {
        &self.persona_store
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Generate period `which` (1 or 2), feeding each document to `sink`
    /// in chronological order (day-granular batches, time-sorted within a
    /// day so memory stays bounded at paper scale).
    ///
    /// The sink controls the stream: returning
    /// [`ControlFlow::Break`] stops
    /// generation immediately and the same `Break` is returned to the
    /// caller. An early stop leaves the generator mid-period — only a
    /// full run keeps the document stream a pure function of the seed.
    ///
    /// # Panics
    /// Panics if `which` is not 1 or 2.
    pub fn generate_period(
        &mut self,
        which: u8,
        sink: &mut dyn FnMut(SynthDoc) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        assert!(which == 1 || which == 2, "periods are 1 and 2");
        let (volumes, (start, end), dup_rate) = if which == 1 {
            (
                self.config.period1,
                self.periods.period1,
                self.config.duplicates.period1,
            )
        } else {
            (
                self.config.period2,
                self.periods.period2,
                self.config.duplicates.period2,
            )
        };
        let days = end.since(start).days().max(1);

        // Per-source daily quotas, with remainders spread over leading days.
        let sources = [
            (Source::Pastebin, volumes.pastebin),
            (Source::Chan4B, volumes.chan4_b),
            (Source::Chan4Pol, volumes.chan4_pol),
            (Source::Chan8Pol, volumes.chan8_pol),
            (Source::Chan8Baphomet, volumes.chan8_baphomet),
        ];

        for day in 0..days {
            let day_start = SimTime(start.0 + day * MINUTES_PER_DAY);
            let mut batch: Vec<SynthDoc> = Vec::new();
            for (source, vol) in sources {
                let (docs_today, doxes_today) = daily_quota(vol, day, days);
                if docs_today == 0 {
                    continue;
                }
                // Choose which of today's documents are doxes.
                let dox_slots = pick_slots(docs_today, doxes_today, &mut self.rng);
                for i in 0..docs_today {
                    let at = SimTime(day_start.0 + self.rng.random_range(0..MINUTES_PER_DAY));
                    let doc = if dox_slots.contains(&i) {
                        self.generate_dox_doc(source, at, dup_rate)
                    } else {
                        self.generate_paste_doc(source, at)
                    };
                    batch.push(doc);
                }
            }
            batch.sort_by_key(|d| d.posted_at);
            for doc in batch {
                if let ControlFlow::Break(()) = sink(doc) {
                    return ControlFlow::Break(());
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// Generate both periods into a vector (small scales / tests only).
    pub fn generate_collect(&mut self) -> Vec<SynthDoc> {
        let mut out = Vec::new();
        let _ = self.generate_period(1, &mut |d| {
            out.push(d);
            ControlFlow::Continue(())
        });
        let _ = self.generate_period(2, &mut |d| {
            out.push(d);
            ControlFlow::Continue(())
        });
        out
    }

    fn generate_dox_doc(&mut self, source: Source, at: SimTime, dup_rate: f64) -> SynthDoc {
        let id = self.take_doc_id();
        let is_dup = !self.history.is_empty() && self.rng.random_range(0.0..1.0) < dup_rate;
        let (plain, truth) = if is_dup {
            // Reposts favour the doxes worth spreading: ones that expose
            // accounts. Draw a few candidates and keep a rich one if any.
            let rec_idx = (0..4)
                .map(|_| self.rng.random_range(0..self.history.len()))
                .max_by_key(|&i| usize::from(!self.history[i].plan.osn.is_empty()))
                .expect("four candidates drawn");
            let exact = self.rng.random_range(0.0..1.0) < self.config.duplicates.exact_share;
            let (body, truth) = {
                let rec = &self.history[rec_idx];
                let persona = &self.persona_store[rec.persona_idx];
                if exact {
                    (
                        rec.body.clone(),
                        truth_of(persona, &rec.plan, Some(rec.doc_id), true),
                    )
                } else {
                    let variation = Variation {
                        timestamp: Some(at.0),
                        alt_insignia: self.rng.random_range(0.0..1.0) < 0.5,
                        update_section: self.rng.random_range(0.0..1.0) < 0.5,
                    };
                    let body = render(persona, &rec.plan, self.world, variation, &mut self.rng);
                    (body, truth_of(persona, &rec.plan, Some(rec.doc_id), false))
                }
            };
            (body, truth)
        } else {
            let persona = self.personas.generate(&mut self.rng);
            let plan = sample_plan(&persona, &self.config, false, &self.doxers, &mut self.rng);
            let body = render(
                &persona,
                &plan,
                self.world,
                Variation::default(),
                &mut self.rng,
            );
            let truth = truth_of(&persona, &plan, None, false);
            self.persona_store.push(persona);
            self.history.push(DoxRecord {
                doc_id: id,
                persona_idx: self.persona_store.len() - 1,
                plan,
                body: body.clone(),
            });
            (body, truth)
        };

        let body = if source.is_html() {
            wrap_chan_html(&plain, &mut self.rng)
        } else {
            plain
        };
        let deleted_after = self.sample_deletion(source, true);
        SynthDoc {
            id,
            source,
            posted_at: at,
            body,
            deleted_after,
            truth: GroundTruth::Dox(Box::new(truth)),
        }
    }

    fn generate_paste_doc(&mut self, source: Source, at: SimTime) -> SynthDoc {
        let id = self.take_doc_id();
        let paste = self.pastes.sample_paste(&mut self.rng);
        let body = if source.is_html() {
            wrap_chan_html(&paste.body, &mut self.rng)
        } else {
            paste.body
        };
        let deleted_after = self.sample_deletion(source, false);
        SynthDoc {
            id,
            source,
            posted_at: at,
            body,
            deleted_after,
            truth: GroundTruth::Paste { kind: paste.kind },
        }
    }

    fn sample_deletion(&mut self, source: Source, is_dox: bool) -> Option<SimDuration> {
        if source != Source::Pastebin {
            return None;
        }
        let p = if is_dox {
            self.config.deletion.dox_30d
        } else {
            self.config.deletion.other_30d
        };
        (self.rng.random_range(0.0..1.0) < p)
            .then(|| SimDuration(self.rng.random_range(60..30 * MINUTES_PER_DAY)))
    }

    fn take_doc_id(&mut self) -> u64 {
        let id = self.next_doc_id;
        self.next_doc_id += 1;
        id
    }

    /// Build the classifier's labeled training corpus: proof-of-work dox
    /// positives and random-crawl negatives (§3.1.2: 749 / 4,220 at paper
    /// scale, scaled but floored so small runs stay trainable).
    ///
    /// The negative crawl always includes a block of hard negatives
    /// (credential dumps, member lists, form submissions): annotators
    /// vetting a random crawl keep exactly those confusing files because
    /// they are the ones worth teaching the classifier about.
    ///
    /// Returns `(texts, labels)` with `true` marking doxes.
    pub fn training_sets(&mut self) -> (Vec<String>, Vec<bool>) {
        let n_pos = ((749.0 * self.config.scale) as usize).max(150);
        let n_neg = ((4220.0 * self.config.scale) as usize).max(800);
        let n_hard = (n_neg / 20).max(45);
        let mut texts = Vec::with_capacity(n_pos + n_neg + n_hard);
        let mut labels = Vec::with_capacity(n_pos + n_neg + n_hard);
        for i in 0..n_pos {
            let persona = self.personas.generate(&mut self.rng);
            // The paper's positive set mixes dox-for-hire proof-of-work
            // archives with the doxes found in the random crawl; ~1 in 3
            // of ours are wild-style (including the sloppy/narrative
            // renderings that drive recall below 1).
            let proof_of_work = i % 3 != 0;
            let plan = sample_plan(
                &persona,
                &self.config,
                proof_of_work,
                &self.doxers,
                &mut self.rng,
            );
            let body = render(
                &persona,
                &plan,
                self.world,
                Variation::default(),
                &mut self.rng,
            );
            self.persona_store.push(persona);
            texts.push(body);
            labels.push(true);
        }
        for _ in 0..n_neg {
            texts.push(self.pastes.sample_paste(&mut self.rng).body);
            labels.push(false);
        }
        // Weighted mix: the mechanically distinctive kinds (dumps, lists,
        // forms) are well represented and get learned cleanly; the
        // dox-adjacent kinds (profile cards, tutorials, discussion) are
        // scarce — annotators rarely encountered them — leaving residual
        // confusion that produces Table 1's false positives.
        use crate::truth::PasteKind::*;
        let block = [
            CredentialDump,
            UserList,
            FormData,
            CredentialDump,
            UserList,
            FormData,
            ProfileCard,
            DoxTutorial,
            DoxDiscussion,
            DoxDiscussion,
            DoxDiscussion,
            CredentialDump,
        ];
        for i in 0..n_hard {
            let kind = block[i % block.len()];
            texts.push(self.pastes.generate_kind(kind, &mut self.rng));
            labels.push(false);
        }
        (texts, labels)
    }

    /// Generate `n` hand-labelable proof-of-work doxes with their plans —
    /// the extractor-accuracy protocol (Table 2) labels 125 of these.
    pub fn proof_of_work_sample(&mut self, n: usize) -> Vec<(SynthDoc, Persona)> {
        (0..n)
            .map(|_| {
                let id = self.take_doc_id();
                let persona = self.personas.generate(&mut self.rng);
                let plan = sample_plan(&persona, &self.config, true, &self.doxers, &mut self.rng);
                let body = render(
                    &persona,
                    &plan,
                    self.world,
                    Variation::default(),
                    &mut self.rng,
                );
                let truth = truth_of(&persona, &plan, None, false);
                (
                    SynthDoc {
                        id,
                        source: Source::Pastebin,
                        posted_at: self.periods.period1.0,
                        body,
                        deleted_after: None,
                        truth: GroundTruth::Dox(Box::new(truth)),
                    },
                    persona.clone(),
                )
            })
            .collect()
    }
}

/// Spread `vol.total` documents (and `vol.doxes` doxes) across `days`,
/// remainder-first.
fn daily_quota(vol: SourceVolume, day: u64, days: u64) -> (u64, u64) {
    let per_day = vol.total / days;
    let extra = vol.total % days;
    let docs = per_day + u64::from(day < extra);
    let dper = vol.doxes / days;
    let dextra = vol.doxes % days;
    let doxes = dper + u64::from(day < dextra);
    (docs, doxes.min(docs))
}

/// Choose `k` distinct slot indices in `0..n`.
fn pick_slots(n: u64, k: u64, rng: &mut ChaCha8Rng) -> HashSet<u64> {
    let mut slots = HashSet::with_capacity(k as usize);
    while (slots.len() as u64) < k.min(n) {
        slots.insert(rng.random_range(0..n));
    }
    slots
}

/// Wrap plain text as a chan post: escaped HTML with `<br>` line breaks and
/// an optional quotelink header, as the boards serve it.
fn wrap_chan_html(plain: &str, rng: &mut ChaCha8Rng) -> String {
    let escaped = plain
        .replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('\'', "&#039;");
    let body = escaped.replace('\n', "<br>");
    if rng.random_range(0.0..1.0) < 0.3 {
        format!(
            "<a href=\"#p{}\" class=\"quotelink\">&gt;&gt;{}</a><br>{}",
            rng.random_range(10_000_000..99_999_999u64),
            rng.random_range(10_000_000..99_999_999u64),
            body
        )
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_geo::alloc::AllocConfig;
    use dox_geo::model::WorldConfig;

    fn fixture() -> (World, Allocation) {
        let world = World::generate(
            &WorldConfig {
                countries: 4,
                states_per_country: 6,
                cities_per_state: 8,
            },
            55,
        );
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 55);
        (world, alloc)
    }

    #[test]
    fn volumes_match_config_exactly() {
        let (world, alloc) = fixture();
        let config = SynthConfig::test_scale();
        let expect_total = config.total_documents();
        let expect_doxes = config.total_doxes();
        let mut gen = CorpusGenerator::new(&world, &alloc, config);
        let docs = gen.generate_collect();
        assert_eq!(docs.len() as u64, expect_total);
        let doxes = docs.iter().filter(|d| d.truth.is_dox()).count() as u64;
        assert_eq!(doxes, expect_doxes);
    }

    #[test]
    fn period1_is_pastebin_only() {
        let (world, alloc) = fixture();
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let mut sources = HashSet::new();
        let _ = gen.generate_period(1, &mut |d| {
            sources.insert(d.source);
            assert!(d.posted_at < SimTime::from_days(42));
            ControlFlow::Continue(())
        });
        assert_eq!(sources.len(), 1);
        assert!(sources.contains(&Source::Pastebin));
    }

    #[test]
    fn sink_break_stops_generation_early() {
        let (world, alloc) = fixture();
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let mut n = 0u64;
        let flow = gen.generate_period(1, &mut |_| {
            n += 1;
            if n == 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(n, 10, "generation stops at the tenth document");
    }

    #[test]
    fn period2_spans_all_sources_and_window() {
        let (world, alloc) = fixture();
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let mut sources = HashSet::new();
        let _ = gen.generate_period(2, &mut |d| {
            sources.insert(d.source);
            assert!(d.posted_at >= SimTime::from_days(152));
            assert!(d.posted_at < SimTime::from_days(201));
            ControlFlow::Continue(())
        });
        assert_eq!(sources.len(), 5);
    }

    #[test]
    fn stream_is_chronological() {
        let (world, alloc) = fixture();
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let docs = gen.generate_collect();
        for w in docs.windows(2) {
            assert!(w[0].posted_at <= w[1].posted_at, "out of order");
        }
    }

    #[test]
    fn chan_documents_are_html() {
        let (world, alloc) = fixture();
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let docs = gen.generate_collect();
        let chan_docs: Vec<_> = docs.iter().filter(|d| d.source.is_html()).collect();
        assert!(!chan_docs.is_empty());
        // chan bodies have no raw newlines and use <br>
        assert!(chan_docs
            .iter()
            .filter(|d| d.body.len() > 50)
            .all(|d| !d.body.contains('\n')));
        assert!(chan_docs.iter().any(|d| d.body.contains("<br>")));
        // pastebin bodies are plain
        assert!(docs
            .iter()
            .filter(|d| d.source == Source::Pastebin)
            .all(|d| !d.body.contains("<br>")));
    }

    #[test]
    fn duplicates_reference_earlier_docs() {
        let (world, alloc) = fixture();
        // larger scale so duplicates (and the rarer exact reposts) occur
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::at_scale(0.025));
        let docs = gen.generate_collect();
        let mut dup_count = 0usize;
        let mut exact_count = 0usize;
        for d in &docs {
            if let Some(t) = d.truth.as_dox() {
                if let Some(orig) = t.duplicate_of {
                    dup_count += 1;
                    assert!(orig < d.id, "duplicate precedes original");
                    if t.exact_duplicate {
                        exact_count += 1;
                        let orig_doc = docs.iter().find(|x| x.id == orig).unwrap();
                        // Compare plain content: the chan HTML wrapper varies.
                        if d.source == Source::Pastebin && orig_doc.source == Source::Pastebin {
                            assert_eq!(d.body, orig_doc.body, "exact dup differs");
                        }
                    }
                }
            }
        }
        let doxes = docs.iter().filter(|d| d.truth.is_dox()).count();
        let rate = dup_count as f64 / doxes as f64;
        // generated rate = 18.1 % measured target × 1.30 attenuation.
        assert!((rate - 0.235).abs() < 0.09, "duplicate rate {rate}");
        assert!(exact_count > 0, "some duplicates must be exact");
    }

    #[test]
    fn deletion_rates_match_table3() {
        let (world, alloc) = fixture();
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::at_scale(0.01));
        let docs = gen.generate_collect();
        let (mut dox_n, mut dox_del, mut other_n, mut other_del) = (0u64, 0u64, 0u64, 0u64);
        for d in docs.iter().filter(|d| d.source == Source::Pastebin) {
            if d.truth.is_dox() {
                dox_n += 1;
                dox_del += u64::from(d.deleted_after.is_some());
            } else {
                other_n += 1;
                other_del += u64::from(d.deleted_after.is_some());
            }
        }
        let dox_rate = dox_del as f64 / dox_n as f64;
        let other_rate = other_del as f64 / other_n as f64;
        // ~50 dox files at this scale: the binomial noise on dox_rate is
        // ±0.09 at 2σ, so only the coarse shape is asserted here; the 3x
        // ratio is checked at paper scale by the bench harness.
        assert!((dox_rate - 0.128).abs() < 0.10, "dox deletion {dox_rate}");
        assert!(
            (other_rate - 0.042).abs() < 0.01,
            "other deletion {other_rate}"
        );
        assert!(
            dox_rate > other_rate,
            "doxes delete more: {dox_rate} vs {other_rate}"
        );
    }

    #[test]
    fn chan_docs_never_marked_deleted() {
        let (world, alloc) = fixture();
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        for d in gen.generate_collect() {
            if d.source != Source::Pastebin {
                assert!(d.deleted_after.is_none());
            }
        }
    }

    #[test]
    fn training_sets_sized_and_labeled() {
        let (world, alloc) = fixture();
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let (texts, labels) = gen.training_sets();
        assert_eq!(texts.len(), labels.len());
        let pos = labels.iter().filter(|&&l| l).count();
        assert!(pos >= 150);
        assert!(labels.len() - pos >= 800);
        // positives mention dox-like content far more often
        let doxy = |t: &String| {
            let lower = t.to_lowercase();
            [
                "phone",
                "address",
                "addy",
                "lives around",
                "first name",
                "screencap",
                "goes by",
            ]
            .iter()
            .any(|k| lower.contains(k))
        };
        let pos_doxy = texts
            .iter()
            .zip(&labels)
            .filter(|(t, &l)| l && doxy(t))
            .count() as f64
            / pos as f64;
        assert!(
            pos_doxy > 0.6,
            "positives should look like doxes: {pos_doxy}"
        );
    }

    #[test]
    fn proof_of_work_sample_has_truth_and_personas() {
        let (world, alloc) = fixture();
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let sample = gen.proof_of_work_sample(25);
        assert_eq!(sample.len(), 25);
        for (doc, persona) in &sample {
            let t = doc.truth.as_dox().expect("all are doxes");
            assert_eq!(t.persona_id, persona.id);
        }
    }

    #[test]
    fn doc_ids_unique_and_ordered() {
        let (world, alloc) = fixture();
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let docs = gen.generate_collect();
        let mut ids: Vec<u64> = docs.iter().map(|d| d.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn daily_quota_sums_to_volume() {
        let vol = SourceVolume {
            total: 1000,
            doxes: 37,
        };
        let days = 42;
        let (mut t, mut d) = (0u64, 0u64);
        for day in 0..days {
            let (dt, dd) = daily_quota(vol, day, days);
            t += dt;
            d += dd;
        }
        assert_eq!(t, 1000);
        assert_eq!(d, 37);
    }

    #[test]
    fn pick_slots_exact_count_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let slots = pick_slots(100, 10, &mut rng);
        assert_eq!(slots.len(), 10);
        assert!(slots.iter().all(|&s| s < 100));
        // k > n clamps
        let all = pick_slots(5, 50, &mut rng);
        assert_eq!(all.len(), 5);
    }
}
