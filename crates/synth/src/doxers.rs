//! The attacker population: doxer aliases, teams and the Twitter follow
//! graph.
//!
//! Figure 2 of the paper builds an undirected graph over the 251 doxer
//! aliases observed in dox "credits": an edge connects two doxers who were
//! credited together on a dox, or who follow each other on Twitter (213 of
//! the 251 had Twitter handles; 34 measured accounts were private). The
//! cliques of size ≥ 4 span 61 doxers, the largest containing 11.
//!
//! We model that structure directly: the population is partitioned into
//! teams; teammates co-credit and (when both have public Twitter) follow
//! each other. The default team-size layout reproduces Figure 2's numbers
//! at scale 1.0: the teams of size ≥ 4 sum to 61 members.

use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One doxer alias.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Doxer {
    /// Index into the population.
    pub id: u32,
    /// The alias used in credits, e.g. "DoxLord_7".
    pub alias: String,
    /// Twitter handle, if the doxer has one (213/251 at paper scale).
    pub twitter: Option<String>,
    /// Whether the Twitter account is private (34 of the 213 — private
    /// accounts contribute no follow edges to the measured graph).
    pub twitter_private: bool,
    /// Team index (singletons get their own team).
    pub team: u32,
}

/// The full attacker population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DoxerPopulation {
    doxers: Vec<Doxer>,
    teams: Vec<Vec<u32>>,
}

const ALIAS_FIRST: &[&str] = &[
    "Dox", "Shadow", "Null", "Cipher", "Ghost", "Spect", "Vex", "Krypt", "Phant", "Zero", "Hex",
    "Raze", "Grim", "Byte", "Wraith", "Omen",
];
const ALIAS_SECOND: &[&str] = &[
    "Lord", "Hunter", "Reaper", "Smith", "King", "Viper", "Storm", "Fang", "Byte", "Wolf", "Crow",
    "Mancer",
];

/// The team-size layout that reproduces Figure 2 at paper scale:
/// sizes ≥ 4 sum to 61 (11 + 9 + 8 + 7 + 6 + 6 + 5 + 5 + 4), the rest are
/// pairs, trios and singletons totalling 251 doxers.
pub const PAPER_TEAM_SIZES: &[usize] = &[
    11, 9, 8, 7, 6, 6, 5, 5, 4, // 61 doxers in cliques of ≥ 4
    3, 3, 3, 3, 3, 3, 3, 3, // 24 in trios
    2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,
    2, // 40 in pairs
       // 126 singletons appended programmatically to reach 251
];

impl DoxerPopulation {
    /// Generate the paper-scale population (251 doxers, 213 with Twitter).
    pub fn paper(seed: u64) -> Self {
        Self::generate(seed, 1.0)
    }

    /// Generate at `scale` (team sizes are kept, team *counts* shrink).
    ///
    /// # Panics
    /// Panics unless `0.0 < scale <= 1.0`.
    pub fn generate(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD0E5);

        // Build team-size list: the fixed layout plus singletons to 251,
        // then thin by scale (always keep the biggest team so the clique
        // analysis has something to find).
        let mut sizes: Vec<usize> = PAPER_TEAM_SIZES.to_vec();
        let fixed: usize = sizes.iter().sum();
        sizes.extend(std::iter::repeat_n(1, 251 - fixed));
        let keep = ((sizes.len() as f64) * scale).ceil().max(1.0) as usize;
        // Keep a stratified prefix: big teams first so structure survives
        // small scales.
        sizes.truncate(keep.max(1));

        let mut doxers = Vec::new();
        let mut teams = Vec::new();
        for (team_idx, &size) in sizes.iter().enumerate() {
            let mut team = Vec::with_capacity(size);
            for _ in 0..size {
                let id = doxers.len() as u32;
                let alias = format!(
                    "{}{}_{}",
                    ALIAS_FIRST[rng.random_range(0..ALIAS_FIRST.len())],
                    ALIAS_SECOND[rng.random_range(0..ALIAS_SECOND.len())],
                    id
                );
                // 213/251 ≈ 84.9 % have Twitter; of those 34/213 ≈ 16 %
                // are private. Members of big teams always have public
                // Twitter so the team forms a clique in the union graph.
                let in_big_team = size >= 4;
                let has_twitter = in_big_team || rng.random_range(0.0..1.0) < 0.80;
                let twitter_private = !in_big_team && rng.random_range(0.0..1.0) < 0.20;
                doxers.push(Doxer {
                    id,
                    alias: alias.clone(),
                    twitter: has_twitter.then(|| format!("@{}", alias.to_lowercase())),
                    twitter_private,
                    team: team_idx as u32,
                });
                team.push(id);
            }
            teams.push(team);
        }
        Self { doxers, teams }
    }

    /// All doxers.
    pub fn doxers(&self) -> &[Doxer] {
        &self.doxers
    }

    /// All teams (lists of doxer ids).
    pub fn teams(&self) -> &[Vec<u32>] {
        &self.teams
    }

    /// Look up a doxer.
    pub fn get(&self, id: u32) -> &Doxer {
        &self.doxers[id as usize]
    }

    /// Whether `a` and `b` follow each other on Twitter: teammates with
    /// public Twitter accounts on both sides.
    pub fn mutual_follow(&self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        let (da, db) = (self.get(a), self.get(b));
        da.team == db.team
            && da.twitter.is_some()
            && db.twitter.is_some()
            && !da.twitter_private
            && !db.twitter_private
    }

    /// Sample a team for a credited dox, weighted by team size (bigger
    /// crews drop more doxes), then return `(author, credited_ids)`:
    /// the author plus 0–3 teammates.
    pub fn sample_credits(&self, rng: &mut ChaCha8Rng) -> (u32, Vec<u32>) {
        let total: usize = self.teams.iter().map(Vec::len).sum();
        let mut pick = rng.random_range(0..total);
        let mut team = &self.teams[0];
        for t in &self.teams {
            if pick < t.len() {
                team = t;
                break;
            }
            pick -= t.len();
        }
        let author = team[rng.random_range(0..team.len())];
        let mut credited = vec![author];
        let extra = rng.random_range(0..=3usize.min(team.len() - 1));
        let mut pool: Vec<u32> = team.iter().copied().filter(|&d| d != author).collect();
        for _ in 0..extra {
            if pool.is_empty() {
                break;
            }
            let k = rng.random_range(0..pool.len());
            credited.push(pool.swap_remove(k));
        }
        (author, credited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_population_has_251_doxers_213_with_twitter() {
        let p = DoxerPopulation::paper(1);
        assert_eq!(p.doxers().len(), 251);
        let with_twitter = p.doxers().iter().filter(|d| d.twitter.is_some()).count();
        assert!(
            (200..=226).contains(&with_twitter),
            "with twitter = {with_twitter}"
        );
    }

    #[test]
    fn big_team_members_sum_to_61() {
        let p = DoxerPopulation::paper(2);
        let in_big: usize = p
            .teams()
            .iter()
            .filter(|t| t.len() >= 4)
            .map(Vec::len)
            .sum();
        assert_eq!(in_big, 61);
        let max = p.teams().iter().map(Vec::len).max().unwrap();
        assert_eq!(max, 11);
    }

    #[test]
    fn big_teams_form_twitter_cliques() {
        let p = DoxerPopulation::paper(3);
        for team in p.teams().iter().filter(|t| t.len() >= 4) {
            for &a in team {
                for &b in team {
                    if a != b {
                        assert!(p.mutual_follow(a, b), "{a} and {b} should follow");
                    }
                }
            }
        }
    }

    #[test]
    fn follows_never_cross_teams() {
        let p = DoxerPopulation::paper(4);
        let a = p.teams()[0][0];
        let b = p.teams()[1][0];
        assert!(!p.mutual_follow(a, b));
        assert!(!p.mutual_follow(a, a));
    }

    #[test]
    fn aliases_unique() {
        let p = DoxerPopulation::paper(5);
        let mut aliases: Vec<&str> = p.doxers().iter().map(|d| d.alias.as_str()).collect();
        let n = aliases.len();
        aliases.sort_unstable();
        aliases.dedup();
        assert_eq!(aliases.len(), n);
    }

    #[test]
    fn credits_come_from_one_team() {
        let p = DoxerPopulation::paper(6);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..200 {
            let (author, credited) = p.sample_credits(&mut rng);
            assert!(credited.contains(&author));
            assert!(credited.len() <= 4);
            let team = p.get(credited[0]).team;
            for &c in &credited {
                assert_eq!(p.get(c).team, team);
            }
            // No duplicate credits.
            let mut sorted = credited.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), credited.len());
        }
    }

    #[test]
    fn scaled_population_keeps_biggest_team() {
        let p = DoxerPopulation::generate(7, 0.05);
        assert!(!p.doxers().is_empty());
        let max = p.teams().iter().map(Vec::len).max().unwrap();
        assert_eq!(max, 11, "big teams are kept first under scaling");
    }

    #[test]
    fn deterministic() {
        let a = DoxerPopulation::paper(8);
        let b = DoxerPopulation::paper(8);
        assert_eq!(a.doxers(), b.doxers());
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn bad_scale_panics() {
        DoxerPopulation::generate(0, 0.0);
    }
}
