//! Per-network username morphology.
//!
//! Handles derived from a persona's name plus decorations doxers see in the
//! wild: digits, underscores, leetspeak, "xX … Xx" wrappers. Derivation is
//! deterministic given the RNG stream, and every generated handle satisfies
//! `dox_textkit`-style handle grammar (ASCII alphanumerics, `_`, `-`, `.`),
//! so the extractor can validate candidates.

use dox_osn::network::Network;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Generate a base username from name parts.
pub fn base_handle(first: &str, last: &str, rng: &mut ChaCha8Rng) -> String {
    let f = first.to_lowercase();
    let l = last.to_lowercase();
    let style = rng.random_range(0..6u8);
    match style {
        0 => format!("{f}{l}"),
        1 => format!("{f}.{l}"),
        2 => format!("{f}_{l}"),
        3 => format!("{}{}", &f[..1.min(f.len())], l),
        4 => format!("{f}{}", rng.random_range(10..99u32)),
        _ => format!("{l}{f}"),
    }
}

/// Decorate a base handle in gamer/doxer style.
pub fn decorate(base: &str, rng: &mut ChaCha8Rng) -> String {
    match rng.random_range(0..8u8) {
        0 => format!("xX_{base}_Xx"),
        1 => format!("{base}{}", rng.random_range(1990..2010u32)),
        2 => base.replace('e', "3").replace('o', "0"),
        3 => format!("the_{base}"),
        4 => format!("{base}_tv"),
        _ => base.to_string(),
    }
}

/// Generate a handle for `network`, derived from the persona's base handle
/// but varied per network (people reuse names with small mutations).
pub fn network_handle(base: &str, network: Network, uid: u64, rng: &mut ChaCha8Rng) -> String {
    let variant = match network {
        Network::Facebook => base.replace('_', "."),
        // The canonical Google+ handle has no '+': the sigil is added at
        // render time (vanity-URL style), like '@' for Twitter.
        Network::GooglePlus => base.to_string(),
        Network::Twitter => truncate(base, 15),
        Network::Instagram => base.to_string(),
        Network::YouTube => format!("{base}channel"),
        Network::Twitch => format!("{base}_live"),
        Network::Skype => format!("live.{base}"),
    };
    // A per-network numeric suffix keeps handles globally unique across
    // personas (uid folds the persona id in).
    let salt = rng.random_range(0..10u32);
    let cleaned: String = variant
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | '+'))
        .collect();
    format!("{cleaned}{}{salt}", uid % 997)
}

fn truncate(s: &str, n: usize) -> String {
    s.chars().take(n).collect()
}

/// Render the handle the way a dox file would write it for `network`:
/// sometimes a full URL, sometimes bare.
pub fn render_reference(network: Network, handle: &str, rng: &mut ChaCha8Rng) -> String {
    let hosts = network.url_hosts();
    if hosts.is_empty() || rng.random_range(0.0..1.0) < 0.4 {
        // Bare references sometimes carry the network's sigil.
        match network {
            Network::GooglePlus if rng.random_range(0.0..1.0) < 0.5 => format!("+{handle}"),
            Network::Twitter if rng.random_range(0.0..1.0) < 0.5 => format!("@{handle}"),
            _ => handle.to_string(),
        }
    } else {
        let host = hosts[rng.random_range(0..hosts.len())];
        let path_handle = handle.trim_start_matches('+');
        match rng.random_range(0..3u8) {
            0 => format!("https://{host}/{path_handle}"),
            1 => format!("http://{host}/{path_handle}"),
            _ => format!("{host}/{path_handle}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn base_handles_lowercase_ascii() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let h = base_handle("Jaren", "Thornvik", &mut rng);
            assert!(h
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'));
        }
    }

    #[test]
    fn decorations_preserve_handle_grammar() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            let h = decorate("sorenkvistlund", &mut rng);
            assert!(h
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')));
        }
    }

    #[test]
    fn network_handles_vary_by_network() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let tw = network_handle("longbasehandle", Network::Twitter, 5, &mut rng);
        let yt = network_handle("longbasehandle", Network::YouTube, 5, &mut rng);
        assert_ne!(tw, yt);
        assert!(yt.contains("channel"));
    }

    #[test]
    fn twitter_handles_respect_length_cap_before_suffix() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let h = network_handle(
            "averyveryverylongbasehandlename",
            Network::Twitter,
            1,
            &mut rng,
        );
        // 15 chars + at most 5 suffix chars
        assert!(h.len() <= 20, "{h}");
    }

    #[test]
    fn url_references_use_known_hosts() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut saw_url = false;
        for _ in 0..50 {
            let r = render_reference(Network::Facebook, "some.handle1", &mut rng);
            if r.contains('/') {
                saw_url = true;
                assert!(
                    Network::Facebook.url_hosts().iter().any(|h| r.contains(h)),
                    "{r}"
                );
            }
        }
        assert!(saw_url);
    }

    #[test]
    fn skype_is_always_bare() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..20 {
            let r = render_reference(Network::Skype, "live.somebody3", &mut rng);
            assert!(!r.contains("://"));
        }
    }
}
