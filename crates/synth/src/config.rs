//! Generation rates — every number cited to the paper table it reproduces.
//!
//! [`SynthConfig::paper()`] is the full-scale configuration (1.74 M
//! documents); [`SynthConfig::at_scale`] shrinks absolute volumes while
//! preserving every rate, so tests and CI runs exercise identical code
//! paths at a fraction of the cost.

use serde::{Deserialize, Serialize};

/// Per-source document volumes for one collection period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceVolume {
    /// Total documents posted on this source in the period.
    pub total: u64,
    /// Of those, how many are dox postings (before de-duplication).
    pub doxes: u64,
}

/// Volumes for one collection period across all sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodVolumes {
    /// pastebin.com.
    pub pastebin: SourceVolume,
    /// 4chan.org/b/.
    pub chan4_b: SourceVolume,
    /// 4chan.org/pol/.
    pub chan4_pol: SourceVolume,
    /// 8ch.net/pol/.
    pub chan8_pol: SourceVolume,
    /// 8ch.net/baphomet/.
    pub chan8_baphomet: SourceVolume,
}

impl PeriodVolumes {
    /// Total documents in the period.
    pub fn total(&self) -> u64 {
        self.pastebin.total
            + self.chan4_b.total
            + self.chan4_pol.total
            + self.chan8_pol.total
            + self.chan8_baphomet.total
    }

    /// Total dox postings in the period.
    pub fn doxes(&self) -> u64 {
        self.pastebin.doxes
            + self.chan4_b.doxes
            + self.chan4_pol.doxes
            + self.chan8_pol.doxes
            + self.chan8_baphomet.doxes
    }

    fn scaled(&self, s: f64) -> Self {
        let f = |v: SourceVolume| SourceVolume {
            total: ((v.total as f64 * s).round() as u64).max(if v.total > 0 { 1 } else { 0 }),
            doxes: ((v.doxes as f64 * s).round() as u64).min(((v.total as f64 * s) as u64).max(1)),
        };
        Self {
            pastebin: f(self.pastebin),
            chan4_b: f(self.chan4_b),
            chan4_pol: f(self.chan4_pol),
            chan8_pol: f(self.chan8_pol),
            chan8_baphomet: f(self.chan8_baphomet),
        }
    }
}

/// Probability a dox file includes each demographic category — Table 6
/// percentages (of 464 manually labeled doxes). Zip inclusion is
/// conditional on address inclusion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldRates {
    /// Address (any form): 90.1 %.
    pub address: f64,
    /// Zip-level address precision, conditional on address: 48.9/90.1.
    pub zip_given_address: f64,
    /// Phone number: 61.2 %.
    pub phone: f64,
    /// Family info: 50.6 %.
    pub family: f64,
    /// Email address: 53.7 %.
    pub email: f64,
    /// Date of birth: 33.4 %.
    pub dob: f64,
    /// School: 10.3 %.
    pub school: f64,
    /// Other usernames: 40.1 %.
    pub usernames: f64,
    /// ISP name: 21.6 %.
    pub isp: f64,
    /// IP address: 40.3 %.
    pub ip: f64,
    /// Passwords: 8.6 %.
    pub passwords: f64,
    /// Physical traits: 2.6 %.
    pub physical: f64,
    /// Criminal records: 1.3 %.
    pub criminal: f64,
    /// Social security number: 2.6 %.
    pub ssn: f64,
    /// Credit card number: 4.3 %.
    pub credit_card: f64,
    /// Other financial info: 8.8 %.
    pub financial: f64,
    /// Age stated in the dox (Table 2 reports age extractable from 44.8 %,
    /// Table 5 computes a mean age, so most labeled doxes state one).
    pub age: f64,
    /// Real (first) name stated: Table 2, 82.4 %.
    pub real_name: f64,
}

impl FieldRates {
    /// Table 6 rates.
    pub fn paper() -> Self {
        Self {
            address: 0.901,
            zip_given_address: 0.489 / 0.901,
            phone: 0.612,
            family: 0.506,
            email: 0.537,
            dob: 0.334,
            school: 0.103,
            usernames: 0.401,
            isp: 0.216,
            ip: 0.403,
            passwords: 0.086,
            physical: 0.026,
            criminal: 0.013,
            ssn: 0.026,
            credit_card: 0.043,
            financial: 0.088,
            age: 0.70,
            real_name: 0.93,
        }
    }
}

/// Probability a dox references each social network — Table 9 (% of the
/// 5,530 detected doxes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OsnRates {
    /// Facebook: 17.8 %.
    pub facebook: f64,
    /// Google+: 7.3 %.
    pub google_plus: f64,
    /// Twitter: 8.1 %.
    pub twitter: f64,
    /// Instagram: 7.5 %.
    pub instagram: f64,
    /// YouTube: 5.7 %.
    pub youtube: f64,
    /// Twitch: 3.3 %.
    pub twitch: f64,
    /// Skype (Table 2 reports it in 55.2 % of the richer proof-of-work
    /// doxes; in the wild corpus we use a third of that).
    pub skype: f64,
}

impl OsnRates {
    /// Table 9 rates (wild doxes), divided by the measurement attenuation:
    /// Table 9 counts what the *extractor* recovers, and a reference only
    /// registers when the persona owns the account (0.9) and the extractor
    /// parses the mention (≈ 0.87). Generation rates are therefore the
    /// targets ÷ 0.78, so the measured table lands on the paper's values.
    pub fn paper_wild() -> Self {
        // Attenuation differs per network because the extractor's miss
        // rate does (Facebook's "FACE BOOK" two-word aliases and Google+'s
        // '+'-sigil forms are missed more often than Instagram's plain
        // handles) — measured on a paper-scale run.
        Self {
            facebook: 0.178 / 0.78,
            google_plus: 0.073 / 0.79,
            twitter: 0.081 / 0.80,
            instagram: 0.075 / 0.77,
            youtube: 0.057 / 0.75,
            twitch: 0.033 / 0.80,
            skype: 0.18 / 0.86,
        }
    }

    /// Table 2 rates (dox-for-hire proof-of-work sets are much richer).
    pub fn paper_proof_of_work() -> Self {
        Self {
            facebook: 0.480,
            google_plus: 0.184,
            twitter: 0.344,
            instagram: 0.112,
            youtube: 0.400,
            twitch: 0.096,
            skype: 0.552,
        }
    }
}

/// Victim community shares — Table 7 (% of labeled doxes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommunityRates {
    /// Gamer: 11.4 %.
    pub gamer: f64,
    /// Hacker: 3.7 %.
    pub hacker: f64,
    /// Celebrity: 1.1 %.
    pub celebrity: f64,
}

impl CommunityRates {
    /// Table 7 rates.
    pub fn paper() -> Self {
        Self {
            gamer: 0.114,
            hacker: 0.037,
            celebrity: 0.011,
        }
    }
}

/// Stated-motivation shares — Table 8 (% of labeled doxes; the remainder
/// state no motivation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotivationRates {
    /// Competitive: 1.5 %.
    pub competitive: f64,
    /// Revenge: 11.2 %.
    pub revenge: f64,
    /// Justice: 14.7 %.
    pub justice: f64,
    /// Political: 1.1 %.
    pub political: f64,
}

impl MotivationRates {
    /// Table 8 rates.
    pub fn paper() -> Self {
        Self {
            competitive: 0.015,
            revenge: 0.112,
            justice: 0.147,
            political: 0.011,
        }
    }
}

/// Demographic distribution — Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemographicRates {
    /// Gender shares (male 82.2 %, female 16.3 %, other 0.4 %, normalized).
    pub male: f64,
    /// Female share.
    pub female: f64,
    /// Fraction of victims living in the primary (USA stand-in) country:
    /// 64.5 % of the 300 with an address.
    pub primary_country: f64,
    /// Age model: `age = min_age + Gamma(shape, scale)`, clamped to
    /// `max_age`. Defaults give min 10, mean ≈ 21.7, max 74.
    pub age_min: u8,
    /// Age clamp.
    pub age_max: u8,
    /// Gamma shape.
    pub age_shape: f64,
    /// Gamma scale.
    pub age_scale: f64,
}

impl DemographicRates {
    /// Table 5 rates.
    pub fn paper() -> Self {
        Self {
            male: 0.822 / 0.989,
            female: 0.163 / 0.989,
            primary_country: 0.645,
            age_min: 10,
            age_max: 74,
            age_shape: 2.0,
            age_scale: 5.85,
        }
    }
}

/// Duplicate / repost model — §3.1.4 and Table 4. Rates are *per period*
/// fractions of dox postings that are duplicates of an earlier posting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DuplicateRates {
    /// Fraction of period-1 dox postings that duplicate an earlier dox
    /// (Table 4: (2,976 − 2,326) / 2,976).
    pub period1: f64,
    /// Same for period 2: (2,554 − 2,202) / 2,554.
    pub period2: f64,
    /// Of duplicates, the fraction that are byte-exact reposts
    /// (§3.1.4: 214 of 1,002 ≈ 21.4 %; the rest are near-duplicates with
    /// timestamps / ASCII-art tweaks / update sections).
    pub exact_share: f64,
}

impl DuplicateRates {
    /// Paper rates, inflated by the measured detection attenuation: the
    /// paper's 18.1 % duplicate share is what *their pipeline removed*;
    /// account-set matching misses a near-duplicate when either rendering's
    /// extraction disagrees (and chan re-wrapping breaks byte-equality),
    /// so generation runs ~1.3× hotter for the measured share to land on
    /// Table 4's numbers.
    pub fn paper() -> Self {
        const ATTENUATION: f64 = 1.30;
        Self {
            period1: (2976.0 - 2326.0) / 2976.0 * ATTENUATION,
            period2: (2554.0 - 2202.0) / 2554.0 * ATTENUATION,
            exact_share: 214.0 / 1002.0,
        }
    }
}

/// Deletion dynamics — Table 3: within one month of posting, 12.8 % of
/// pastebin dox files and 4.2 % of other files were deleted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeletionRates {
    /// P(dox paste deleted within 30 days).
    pub dox_30d: f64,
    /// P(non-dox paste deleted within 30 days).
    pub other_30d: f64,
}

impl DeletionRates {
    /// Table 3 rates.
    pub fn paper() -> Self {
        Self {
            dox_30d: 0.128,
            other_30d: 0.042,
        }
    }
}

/// The complete generation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Master seed; every substream derives from it.
    pub seed: u64,
    /// Scale factor applied to absolute volumes (1.0 = paper scale).
    pub scale: f64,
    /// Period-1 volumes (7/20–8/31/2016: pastebin only — Table 4).
    pub period1: PeriodVolumes,
    /// Period-2 volumes (12/19/2016–2/6/2017: all five sources).
    pub period2: PeriodVolumes,
    /// Field-inclusion rates (Table 6).
    pub fields: FieldRates,
    /// OSN reference rates for wild doxes (Table 9).
    pub osn_wild: OsnRates,
    /// OSN reference rates for proof-of-work doxes (Table 2).
    pub osn_pow: OsnRates,
    /// Community shares (Table 7).
    pub communities: CommunityRates,
    /// Motivation shares (Table 8).
    pub motivations: MotivationRates,
    /// Demographics (Table 5).
    pub demographics: DemographicRates,
    /// Duplicate model (§3.1.4 / Table 4).
    pub duplicates: DuplicateRates,
    /// Deletion model (Table 3).
    pub deletion: DeletionRates,
    /// Fraction of doxes carrying a "credits" line (drives Figure 2; the
    /// paper observed 251 credited aliases over 4,528 unique doxes).
    pub credit_rate: f64,
    /// Fraction of doxes that are "sloppy" (minimal labels, prose-like) —
    /// the classifier's false-negative fuel (Table 1 recall 0.89).
    pub sloppy_dox_rate: f64,
    /// Fraction of non-dox pastes that are hard negatives (credential
    /// dumps, user lists, registration forms) — false-positive fuel
    /// (Table 1 precision 0.81).
    pub hard_negative_rate: f64,
    /// Probability an OSN handle mentioned in a dox actually resolves to a
    /// registered account (dead links are common; calibrated so monitored
    /// account counts land near Table 10's n's).
    pub handle_resolution_rate: f64,
}

impl SynthConfig {
    /// The paper-scale configuration.
    ///
    /// Source volumes follow Figure 1 and Table 4: 1.45 M pastebin, 138 k
    /// 4chan/b, 144 k 4chan/pol, 3.4 k 8ch/pol, 512 8ch/baphomet; 2,976
    /// period-1 doxes and 2,554 period-2 doxes. The per-source dox split in
    /// period 2 is our modeling choice (documented in DESIGN.md): most
    /// doxes ride on pastebin, /baphomet/ is dox-dense, /b/ and /pol/
    /// contribute the rest.
    pub fn paper() -> Self {
        Self {
            seed: 0xD0C5,
            scale: 1.0,
            period1: PeriodVolumes {
                pastebin: SourceVolume {
                    total: 484_185,
                    doxes: 2_976,
                },
                chan4_b: SourceVolume { total: 0, doxes: 0 },
                chan4_pol: SourceVolume { total: 0, doxes: 0 },
                chan8_pol: SourceVolume { total: 0, doxes: 0 },
                chan8_baphomet: SourceVolume { total: 0, doxes: 0 },
            },
            period2: PeriodVolumes {
                pastebin: SourceVolume {
                    total: 967_790,
                    doxes: 1_950,
                },
                chan4_b: SourceVolume {
                    total: 138_000,
                    doxes: 250,
                },
                chan4_pol: SourceVolume {
                    total: 144_000,
                    doxes: 300,
                },
                chan8_pol: SourceVolume {
                    total: 3_400,
                    doxes: 24,
                },
                chan8_baphomet: SourceVolume {
                    total: 512,
                    doxes: 30,
                },
            },
            fields: FieldRates::paper(),
            osn_wild: OsnRates::paper_wild(),
            osn_pow: OsnRates::paper_proof_of_work(),
            communities: CommunityRates::paper(),
            motivations: MotivationRates::paper(),
            demographics: DemographicRates::paper(),
            duplicates: DuplicateRates::paper(),
            deletion: DeletionRates::paper(),
            credit_rate: 0.18,
            sloppy_dox_rate: 0.22,
            hard_negative_rate: 0.01,
            handle_resolution_rate: 0.70,
        }
    }

    /// The paper configuration with volumes scaled by `scale` (rates are
    /// untouched).
    ///
    /// # Panics
    /// Panics unless `0.0 < scale <= 1.0`.
    pub fn at_scale(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let base = Self::paper();
        Self {
            scale,
            period1: base.period1.scaled(scale),
            period2: base.period2.scaled(scale),
            ..base
        }
    }

    /// A fast configuration for unit/integration tests (~0.2 % scale).
    pub fn test_scale() -> Self {
        Self::at_scale(0.002)
    }

    /// Total documents across both periods.
    pub fn total_documents(&self) -> u64 {
        self.period1.total() + self.period2.total()
    }

    /// Total dox postings across both periods (before dedup).
    pub fn total_doxes(&self) -> u64 {
        self.period1.doxes() + self.period2.doxes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_volumes_match_table4() {
        let c = SynthConfig::paper();
        assert_eq!(c.period1.total(), 484_185);
        assert_eq!(c.period1.doxes(), 2_976);
        assert_eq!(c.period2.doxes(), 2_554);
        // Table 4 total: 1,737,887; our per-source split must sum close.
        let total = c.total_documents();
        assert!((total as i64 - 1_737_887).abs() < 1_000, "total = {total}");
        assert_eq!(c.total_doxes(), 5_530);
    }

    #[test]
    fn field_rates_match_table6() {
        let f = FieldRates::paper();
        assert!((f.address - 0.901).abs() < 1e-9);
        assert!((f.address * f.zip_given_address - 0.489).abs() < 1e-9);
        assert!((f.ip - 0.403).abs() < 1e-9);
    }

    #[test]
    fn duplicate_rates_match_table4() {
        let d = DuplicateRates::paper();
        // generated share = measured target (18.1 % — 1,002 of 5,530)
        // times the 1.30 detection-attenuation inflation.
        let overall = (2976.0 * d.period1 + 2554.0 * d.period2) / 5530.0;
        assert!((overall - 0.1812 * 1.30).abs() < 0.002, "overall {overall}");
        assert!((d.exact_share - 214.0 / 1002.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_preserves_rates_and_shrinks_volumes() {
        let c = SynthConfig::at_scale(0.01);
        assert_eq!(c.fields, FieldRates::paper());
        assert!((c.period1.total() as f64 - 4841.85).abs() < 2.0);
        assert!(c.period1.doxes() >= 29 && c.period1.doxes() <= 31);
    }

    #[test]
    fn test_scale_is_small_but_nonempty() {
        let c = SynthConfig::test_scale();
        assert!(c.total_documents() < 10_000);
        assert!(c.total_doxes() > 5);
        // every nonzero source keeps at least one document
        assert!(c.period2.chan8_baphomet.total >= 1);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_panics() {
        SynthConfig::at_scale(0.0);
    }

    #[test]
    fn gender_shares_normalized() {
        let d = DemographicRates::paper();
        assert!((d.male + d.female - 0.996).abs() < 0.01);
        assert!(d.male + d.female < 1.0);
    }
}
