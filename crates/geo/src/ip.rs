//! IPv4 address and CIDR-block utilities.
//!
//! `std::net::Ipv4Addr` covers parsing/formatting; this module adds the
//! prefix arithmetic the allocator and longest-prefix-match database need.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR block: a network address and a prefix length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cidr {
    network: u32,
    prefix_len: u8,
}

/// Errors parsing or constructing a [`Cidr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CidrError {
    /// Prefix length above 32.
    PrefixTooLong(u8),
    /// The address has host bits set below the prefix.
    HostBitsSet,
    /// Could not parse the textual form.
    Parse(String),
}

impl fmt::Display for CidrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PrefixTooLong(p) => write!(f, "prefix length {p} exceeds 32"),
            Self::HostBitsSet => write!(f, "network address has host bits set"),
            Self::Parse(s) => write!(f, "cannot parse CIDR from {s:?}"),
        }
    }
}

impl std::error::Error for CidrError {}

impl Cidr {
    /// Construct from a network address and prefix length.
    ///
    /// # Errors
    /// Fails when `prefix_len > 32` or host bits are set in `network`.
    pub fn new(network: Ipv4Addr, prefix_len: u8) -> Result<Self, CidrError> {
        if prefix_len > 32 {
            return Err(CidrError::PrefixTooLong(prefix_len));
        }
        let net = u32::from(network);
        let mask = Self::mask_of(prefix_len);
        if net & !mask != 0 {
            return Err(CidrError::HostBitsSet);
        }
        Ok(Self {
            network: net,
            prefix_len,
        })
    }

    fn mask_of(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(prefix_len))
        }
    }

    /// The netmask of this block.
    pub fn mask(&self) -> u32 {
        Self::mask_of(self.prefix_len)
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// The prefix length.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Number of addresses in the block (saturating at `u32::MAX` for /0).
    pub fn size(&self) -> u32 {
        if self.prefix_len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - u32::from(self.prefix_len))
        }
    }

    /// Whether `addr` falls inside this block.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & self.mask() == self.network
    }

    /// The `i`-th address of the block (`i = 0` is the network address).
    ///
    /// Returns `None` when `i` is outside the block.
    pub fn nth(&self, i: u32) -> Option<Ipv4Addr> {
        if self.prefix_len > 0 && i >= self.size() {
            return None;
        }
        Some(Ipv4Addr::from(self.network.wrapping_add(i)))
    }

    /// First address of the block as a raw `u32` (for ordering).
    pub fn start_u32(&self) -> u32 {
        self.network
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.prefix_len)
    }
}

impl FromStr for Cidr {
    type Err = CidrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| CidrError::Parse(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| CidrError::Parse(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| CidrError::Parse(s.to_string()))?;
        Self::new(addr, len)
    }
}

/// Scan `text` for IPv4 dotted-quad literals and return them with byte
/// offsets. Candidate tokens must be exactly four dot-separated decimal
/// octets in `0..=255`; version-like strings (`1.2.3.4.5`) are rejected.
pub fn find_ipv4_literals(text: &str) -> Vec<(usize, Ipv4Addr)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // Token = maximal run of digits and dots.
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
            i += 1;
        }
        let token = &text[start..i];
        // Reject if embedded in a larger word (e.g. "v1.2.3.4").
        let prev_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'.');
        if !prev_ok {
            continue;
        }
        let token = token.trim_end_matches('.');
        let parts: Vec<&str> = token.split('.').collect();
        if parts.len() != 4 {
            continue;
        }
        if !parts
            .iter()
            .all(|p| !p.is_empty() && p.len() <= 3 && p.parse::<u16>().is_ok_and(|v| v <= 255))
        {
            continue;
        }
        if let Ok(ip) = token.parse::<Ipv4Addr>() {
            out.push((start, ip));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cidr_roundtrip_display_parse() {
        let c: Cidr = "10.1.0.0/16".parse().unwrap();
        assert_eq!(c.to_string(), "10.1.0.0/16");
        assert_eq!(c.size(), 65536);
    }

    #[test]
    fn cidr_rejects_host_bits() {
        assert_eq!(
            Cidr::new(Ipv4Addr::new(10, 1, 0, 1), 16),
            Err(CidrError::HostBitsSet)
        );
    }

    #[test]
    fn cidr_rejects_long_prefix() {
        assert_eq!(
            Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 33),
            Err(CidrError::PrefixTooLong(33))
        );
    }

    #[test]
    fn cidr_contains_boundaries() {
        let c: Cidr = "192.168.4.0/22".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(192, 168, 4, 0)));
        assert!(c.contains(Ipv4Addr::new(192, 168, 7, 255)));
        assert!(!c.contains(Ipv4Addr::new(192, 168, 8, 0)));
        assert!(!c.contains(Ipv4Addr::new(192, 168, 3, 255)));
    }

    #[test]
    fn nth_in_and_out_of_range() {
        let c: Cidr = "10.0.0.0/30".parse().unwrap();
        assert_eq!(c.nth(0), Some(Ipv4Addr::new(10, 0, 0, 0)));
        assert_eq!(c.nth(3), Some(Ipv4Addr::new(10, 0, 0, 3)));
        assert_eq!(c.nth(4), None);
    }

    #[test]
    fn zero_prefix_contains_everything() {
        let c: Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(c.size(), u32::MAX);
    }

    #[test]
    fn parse_errors() {
        assert!("10.0.0.0".parse::<Cidr>().is_err());
        assert!("10.0.0.0/ab".parse::<Cidr>().is_err());
        assert!("999.0.0.0/8".parse::<Cidr>().is_err());
    }

    #[test]
    fn find_ips_basic() {
        let found = find_ipv4_literals("IP: 73.54.12.9 and 10.0.0.1.");
        let ips: Vec<String> = found.iter().map(|(_, ip)| ip.to_string()).collect();
        assert_eq!(ips, vec!["73.54.12.9", "10.0.0.1"]);
    }

    #[test]
    fn find_ips_rejects_versions_and_octet_overflow() {
        assert!(find_ipv4_literals("version 1.2.3.4.5 here").is_empty());
        assert!(find_ipv4_literals("v1.2.3.4").is_empty());
        assert!(find_ipv4_literals("300.1.1.1").is_empty());
    }

    #[test]
    fn find_ips_offsets() {
        let text = "x 1.2.3.4 y";
        let found = find_ipv4_literals(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 2);
    }
}
