//! Postal addresses and geocoding.
//!
//! Personas in `dox-synth` live at a synthetic [`PostalAddress`]; the
//! validation study geocodes the address (via its city) and compares the
//! result with the geolocation of the persona's IP.

use crate::coords::LatLon;
use crate::model::{CityId, StateId, World};
use serde::{Deserialize, Serialize};

/// A synthetic street address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PostalAddress {
    /// House number.
    pub number: u32,
    /// Street name, e.g. "Maple Street".
    pub street: String,
    /// City the address is in.
    pub city: CityId,
    /// Zip code (inside the city's assigned range).
    pub zip: u32,
}

impl PostalAddress {
    /// The state this address is in.
    pub fn state(&self, world: &World) -> StateId {
        world.city(self.city).state
    }

    /// Format the address the way dox files print it:
    /// `"<number> <street>, <City>, <ST> <zip>"`.
    pub fn format(&self, world: &World) -> String {
        let city = world.city(self.city);
        let state = world.state(city.state);
        format!(
            "{} {}, {}, {} {}",
            self.number, self.street, city.name, state.abbrev, self.zip
        )
    }

    /// Geocode to a coordinate: the city's location. Street-level precision
    /// does not exist in the synthetic world (just as commercial geocoders
    /// quantize to rooftop/street segments), and the consistency study only
    /// needs city/state granularity.
    pub fn geocode(&self, world: &World) -> LatLon {
        world.city(self.city).location
    }
}

/// Errors from [`parse_zip`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZipError {
    /// Input was not a 5-digit number.
    Malformed(String),
}

impl std::fmt::Display for ZipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(s) => write!(f, "malformed zip code {s:?}"),
        }
    }
}

impl std::error::Error for ZipError {}

/// Parse a 5-digit zip code from text (leading zeros allowed).
pub fn parse_zip(text: &str) -> Result<u32, ZipError> {
    let t = text.trim();
    if t.len() == 5 && t.bytes().all(|b| b.is_ascii_digit()) {
        t.parse().map_err(|_| ZipError::Malformed(text.to_string()))
    } else {
        Err(ZipError::Malformed(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WorldConfig;

    fn world() -> World {
        World::generate(&WorldConfig::default(), 11)
    }

    fn addr(world: &World) -> PostalAddress {
        let city = &world.cities()[4];
        PostalAddress {
            number: 1210,
            street: "Maple Street".into(),
            city: city.id,
            zip: city.zip_range.0,
        }
    }

    #[test]
    fn format_contains_all_parts() {
        let w = world();
        let a = addr(&w);
        let s = a.format(&w);
        assert!(s.contains("1210 Maple Street"));
        assert!(s.contains(&w.city(a.city).name));
        assert!(s.contains(&w.state(a.state(&w)).abbrev));
        assert!(s.contains(&a.zip.to_string()));
    }

    #[test]
    fn geocode_is_city_location() {
        let w = world();
        let a = addr(&w);
        assert_eq!(a.geocode(&w), w.city(a.city).location);
    }

    #[test]
    fn state_resolution() {
        let w = world();
        let a = addr(&w);
        assert_eq!(a.state(&w), w.city(a.city).state);
    }

    #[test]
    fn zip_parsing() {
        assert_eq!(parse_zip("60607"), Ok(60607));
        assert_eq!(parse_zip(" 00601 "), Ok(601));
        assert!(parse_zip("6060").is_err());
        assert!(parse_zip("606070").is_err());
        assert!(parse_zip("6o607").is_err());
        assert!(parse_zip("").is_err());
    }
}
