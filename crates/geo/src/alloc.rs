//! ASN and CIDR allocation over the synthetic world.
//!
//! Each autonomous system (a synthetic ISP) is homed in one state and owns a
//! handful of CIDR blocks. The resulting allocation table is what the
//! [`crate::geoip::GeoIpDb`] indexes, and what `dox-synth` samples from when
//! a persona needs a plausible IP address "located" near their home.

use crate::ip::Cidr;
use crate::model::{CityId, StateId, World};
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Identifier of an autonomous system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

/// A synthetic ISP: an ASN, a name, a home state and its address blocks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Isp {
    /// The autonomous system number.
    pub asn: Asn,
    /// Synthetic ISP name, e.g. "Norvik Telecom".
    pub name: String,
    /// The state the ISP serves (geolocation resolves into this state).
    pub home_state: StateId,
    /// The city the ISP's infrastructure geolocates to. Real geo-IP data is
    /// city-granular; a subscriber in another city of the same state
    /// geolocates "close but not exact" (§4.1).
    pub home_city: CityId,
    /// CIDR blocks owned by this ISP.
    pub blocks: Vec<Cidr>,
}

/// Configuration for [`Allocation::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocConfig {
    /// ISPs per state.
    pub isps_per_state: u16,
    /// CIDR blocks per ISP.
    pub blocks_per_isp: u16,
    /// Prefix length of each allocated block (e.g. 18 → 16k addresses).
    pub block_prefix_len: u8,
}

impl Default for AllocConfig {
    fn default() -> Self {
        Self {
            isps_per_state: 2,
            blocks_per_isp: 2,
            block_prefix_len: 18,
        }
    }
}

/// The complete address-space allocation of the synthetic internet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Allocation {
    isps: Vec<Isp>,
}

const ISP_FIRST: &[&str] = &[
    "Norvik", "Apex", "Cirrus", "Quanta", "Vantage", "Meridian", "Halcyon", "Summit", "Beacon",
    "Cobalt", "Drift", "Ember",
];
const ISP_SECOND: &[&str] = &[
    "Telecom",
    "Broadband",
    "Fiber",
    "Networks",
    "Online",
    "Cable",
    "Wireless",
    "Net",
];

impl Allocation {
    /// Allocate ISPs and address blocks for every state of `world`,
    /// deterministically from `seed`.
    ///
    /// Blocks are carved sequentially from `1.0.0.0` upward, so they are
    /// disjoint by construction.
    ///
    /// # Panics
    /// Panics if the configuration would exhaust the 32-bit address space
    /// or uses a prefix length outside `8..=30`.
    pub fn generate(world: &World, config: &AllocConfig, seed: u64) -> Self {
        assert!(
            (8..=30).contains(&config.block_prefix_len),
            "block prefix length must be within 8..=30"
        );
        let block_size = 1u64 << (32 - u32::from(config.block_prefix_len));
        let total_blocks = world.states().len() as u64
            * u64::from(config.isps_per_state)
            * u64::from(config.blocks_per_isp);
        let space_needed = total_blocks * block_size;
        assert!(
            0x0100_0000 + space_needed < u64::from(u32::MAX),
            "allocation exceeds the IPv4 space: {total_blocks} blocks of {block_size}"
        );

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA5A5);
        let mut isps = Vec::new();
        let mut cursor: u32 = 0x0100_0000; // 1.0.0.0 — skip reserved 0/8
        let mut next_asn = 64_500u32;

        for state in world.states() {
            for _ in 0..config.isps_per_state {
                let mut blocks = Vec::new();
                for _ in 0..config.blocks_per_isp {
                    let cidr = Cidr::new(Ipv4Addr::from(cursor), config.block_prefix_len)
                        .expect("cursor is always block-aligned");
                    blocks.push(cidr);
                    cursor = cursor
                        .checked_add(block_size as u32)
                        .expect("space checked above");
                }
                let name = format!(
                    "{} {}",
                    ISP_FIRST[rng.random_range(0..ISP_FIRST.len())],
                    ISP_SECOND[rng.random_range(0..ISP_SECOND.len())]
                );
                let home_city = state.cities[rng.random_range(0..state.cities.len())];
                isps.push(Isp {
                    asn: Asn(next_asn),
                    name,
                    home_state: state.id,
                    home_city,
                    blocks,
                });
                next_asn += 1;
            }
        }
        Self { isps }
    }

    /// All ISPs.
    pub fn isps(&self) -> &[Isp] {
        &self.isps
    }

    /// ISPs homed in `state`.
    pub fn isps_in_state(&self, state: StateId) -> Vec<&Isp> {
        self.isps.iter().filter(|i| i.home_state == state).collect()
    }

    /// Look up an ISP by ASN.
    pub fn isp(&self, asn: Asn) -> Option<&Isp> {
        self.isps.iter().find(|i| i.asn == asn)
    }

    /// Total number of allocated blocks.
    pub fn n_blocks(&self) -> usize {
        self.isps.iter().map(|i| i.blocks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WorldConfig;

    fn small() -> (World, Allocation) {
        let world = World::generate(
            &WorldConfig {
                countries: 2,
                states_per_country: 3,
                cities_per_state: 2,
            },
            5,
        );
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 5);
        (world, alloc)
    }

    #[test]
    fn every_state_has_isps() {
        let (world, alloc) = small();
        for st in world.states() {
            let isps = alloc.isps_in_state(st.id);
            assert_eq!(isps.len(), 2);
            for isp in isps {
                assert_eq!(isp.blocks.len(), 2);
            }
        }
    }

    #[test]
    fn blocks_are_disjoint() {
        let (_, alloc) = small();
        let mut starts: Vec<(u32, u32)> = alloc
            .isps()
            .iter()
            .flat_map(|i| i.blocks.iter().map(|b| (b.start_u32(), b.size())))
            .collect();
        starts.sort_unstable();
        for w in starts.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "blocks overlap");
        }
    }

    #[test]
    fn asns_unique() {
        let (_, alloc) = small();
        let mut asns: Vec<u32> = alloc.isps().iter().map(|i| i.asn.0).collect();
        let before = asns.len();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(before, asns.len());
    }

    #[test]
    fn deterministic() {
        let (world, _) = small();
        let a = Allocation::generate(&world, &AllocConfig::default(), 9);
        let b = Allocation::generate(&world, &AllocConfig::default(), 9);
        assert_eq!(a.isps().len(), b.isps().len());
        assert_eq!(a.isps()[0].name, b.isps()[0].name);
        assert_eq!(a.isps()[0].blocks, b.isps()[0].blocks);
    }

    #[test]
    fn isp_lookup() {
        let (_, alloc) = small();
        let first = &alloc.isps()[0];
        assert_eq!(alloc.isp(first.asn).unwrap().name, first.name);
        assert!(alloc.isp(Asn(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn rejects_tiny_prefix() {
        let (world, _) = small();
        Allocation::generate(
            &world,
            &AllocConfig {
                block_prefix_len: 4,
                ..AllocConfig::default()
            },
            0,
        );
    }
}
