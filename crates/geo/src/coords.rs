//! Geographic coordinates and great-circle distance.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres, as used by the haversine formula.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A latitude/longitude pair in degrees.
///
/// Latitude is clamped-by-construction to `[-90, 90]` and longitude to
/// `(-180, 180]` by [`LatLon::new`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl LatLon {
    /// Create a coordinate, clamping latitude and wrapping longitude into
    /// the canonical ranges.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0) % 360.0;
        if lon < 0.0 {
            lon += 360.0;
        }
        Self {
            lat,
            lon: lon - 180.0,
        }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: &LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = LatLon::new(41.88, -87.63);
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn known_distance_roughly_right() {
        // Two points one degree of latitude apart ≈ 111.19 km.
        let a = LatLon::new(10.0, 20.0);
        let b = LatLon::new(11.0, 20.0);
        let d = a.distance_km(&b);
        assert!((d - 111.19).abs() < 0.5, "d = {d}");
    }

    #[test]
    fn distance_symmetric() {
        let a = LatLon::new(41.0, -87.0);
        let b = LatLon::new(40.0, -74.0);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = LatLon::new(0.0, 0.0);
        let b = LatLon::new(0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((a.distance_km(&b) - half).abs() < 1.0);
    }

    #[test]
    fn latitude_clamped_longitude_wrapped() {
        let p = LatLon::new(95.0, 190.0);
        assert_eq!(p.lat, 90.0);
        assert!((p.lon - -170.0).abs() < 1e-9);
        let q = LatLon::new(0.0, -190.0);
        assert!((q.lon - 170.0).abs() < 1e-9);
    }
}
