//! Longest-prefix-match IP geolocation over an [`Allocation`].
//!
//! Mirrors the interface of a commercial geo-IP database: look up an IPv4
//! address, get back the owning ASN, ISP name, state and a representative
//! coordinate. Internally a sorted interval table with binary search —
//! `O(log n)` per query, which the benchmark suite measures.

use crate::alloc::{Allocation, Asn};
use crate::coords::LatLon;
use crate::model::{CityId, StateId, World};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The result of a successful geolocation query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoIpRecord {
    /// Owning autonomous system.
    pub asn: Asn,
    /// ISP name.
    pub isp: String,
    /// The state the address resolves into.
    pub state: StateId,
    /// The city-level resolution of the lookup (the ISP's home city —
    /// real geo-IP data is city-granular, not subscriber-granular).
    pub city: CityId,
    /// Representative coordinate (the resolved city's location).
    pub location: LatLon,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    start: u32,
    /// Inclusive end of the block.
    end: u32,
    asn: Asn,
    state: StateId,
    city: CityId,
}

/// A queryable geolocation database built from an [`Allocation`].
///
/// ```
/// use dox_geo::alloc::{AllocConfig, Allocation};
/// use dox_geo::geoip::GeoIpDb;
/// use dox_geo::model::{World, WorldConfig};
///
/// let world = World::generate(&WorldConfig::default(), 1);
/// let alloc = Allocation::generate(&world, &AllocConfig::default(), 1);
/// let db = GeoIpDb::build(&world, &alloc);
/// let isp = &alloc.isps()[0];
/// let record = db.lookup(isp.blocks[0].nth(5).unwrap()).unwrap();
/// assert_eq!(record.asn, isp.asn);
/// assert_eq!(record.state, isp.home_state);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoIpDb {
    entries: Vec<Entry>,
    isp_names: Vec<(Asn, String)>,
    city_locations: Vec<LatLon>,
}

impl GeoIpDb {
    /// Index `alloc` for querying. Blocks are assumed disjoint (guaranteed
    /// by [`Allocation::generate`]).
    pub fn build(world: &World, alloc: &Allocation) -> Self {
        let mut entries = Vec::with_capacity(alloc.n_blocks());
        let mut isp_names = Vec::with_capacity(alloc.isps().len());
        for isp in alloc.isps() {
            isp_names.push((isp.asn, isp.name.clone()));
            for block in &isp.blocks {
                let start = block.start_u32();
                let end = start + (block.size() - 1);
                entries.push(Entry {
                    start,
                    end,
                    asn: isp.asn,
                    state: isp.home_state,
                    city: isp.home_city,
                });
            }
        }
        entries.sort_unstable_by_key(|e| e.start);
        isp_names.sort_unstable_by_key(|(asn, _)| *asn);
        let city_locations = world.cities().iter().map(|c| c.location).collect();
        Self {
            entries,
            isp_names,
            city_locations,
        }
    }

    /// Number of indexed blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the database indexes no blocks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Geolocate `addr`. Returns `None` for unallocated space.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<GeoIpRecord> {
        let ip = u32::from(addr);
        let idx = match self.entries.binary_search_by_key(&ip, |e| e.start) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let entry = &self.entries[idx];
        if ip > entry.end {
            return None;
        }
        let isp = self
            .isp_names
            .binary_search_by_key(&entry.asn, |(a, _)| *a)
            .ok()
            .map(|i| self.isp_names[i].1.clone())
            .unwrap_or_default();
        Some(GeoIpRecord {
            asn: entry.asn,
            isp,
            state: entry.state,
            city: entry.city,
            location: self.city_locations[entry.city.0 as usize],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocConfig;
    use crate::model::WorldConfig;

    fn setup() -> (World, Allocation, GeoIpDb) {
        let world = World::generate(
            &WorldConfig {
                countries: 2,
                states_per_country: 4,
                cities_per_state: 2,
            },
            3,
        );
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 3);
        let db = GeoIpDb::build(&world, &alloc);
        (world, alloc, db)
    }

    #[test]
    fn every_allocated_address_resolves_to_owner() {
        let (_, alloc, db) = setup();
        for isp in alloc.isps() {
            for block in &isp.blocks {
                for probe in [0, block.size() / 2, block.size() - 1] {
                    let addr = block.nth(probe).unwrap();
                    let rec = db.lookup(addr).unwrap_or_else(|| panic!("miss at {addr}"));
                    assert_eq!(rec.asn, isp.asn);
                    assert_eq!(rec.state, isp.home_state);
                    assert_eq!(rec.isp, isp.name);
                }
            }
        }
    }

    #[test]
    fn unallocated_space_misses() {
        let (_, _, db) = setup();
        assert!(db.lookup(Ipv4Addr::new(0, 0, 0, 1)).is_none());
        assert!(db.lookup(Ipv4Addr::new(255, 255, 255, 255)).is_none());
    }

    #[test]
    fn boundary_just_past_block_misses_or_next_block() {
        let (_, alloc, db) = setup();
        // Address immediately before the very first block must miss.
        let first = alloc
            .isps()
            .iter()
            .flat_map(|i| &i.blocks)
            .map(|b| b.start_u32())
            .min()
            .unwrap();
        let before = Ipv4Addr::from(first - 1);
        assert!(db.lookup(before).is_none());
    }

    #[test]
    fn location_is_isp_home_city() {
        let (world, alloc, db) = setup();
        let isp = &alloc.isps()[0];
        let rec = db.lookup(isp.blocks[0].nth(1).unwrap()).unwrap();
        assert_eq!(rec.city, isp.home_city);
        assert_eq!(rec.location, world.city(isp.home_city).location);
        assert_eq!(world.city(rec.city).state, isp.home_state);
    }

    #[test]
    fn db_size_matches_allocation() {
        let (_, alloc, db) = setup();
        assert_eq!(db.len(), alloc.n_blocks());
        assert!(!db.is_empty());
    }
}
