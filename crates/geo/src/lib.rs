//! # dox-geo
//!
//! A synthetic geography substrate for the "validation by IP address" study
//! (paper §4.1).
//!
//! The paper samples dox files containing both an IP address and a postal
//! address, geolocates the IP, and classifies the pair as matching exactly,
//! being in the same state/region ("close"), in adjacent regions
//! ("ambiguous" in the paper's wording), or far apart. Reproducing that
//! requires a geolocation source; since shipping a real MaxMind-style
//! database is neither possible nor necessary, this crate builds a fully
//! synthetic planet:
//!
//! - [`model`] — countries, states and cities procedurally placed on a
//!   latitude/longitude grid, with deterministic names and zip codes.
//! - [`coords`] — coordinates and haversine distance.
//! - [`ip`] — IPv4 and CIDR utilities.
//! - [`alloc`] — ASN and CIDR allocation: each autonomous system is homed
//!   in a state and owns address blocks.
//! - [`geoip`] — a longest-prefix-match geolocation database over the
//!   allocations.
//! - [`postal`] — postal address representation and geocoding.
//! - [`consistency`] — the §4.1 comparison: classify an (IP, postal) pair
//!   as exact / close / adjacent / far.
//!
//! The synthetic world is a pure function of its seed: generating it twice
//! yields identical names, coordinates and allocations.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod consistency;
pub mod coords;
pub mod geoip;
pub mod ip;
pub mod model;
pub mod postal;

pub use consistency::{classify_pair, ConsistencyClass};
pub use coords::LatLon;
pub use geoip::GeoIpDb;
pub use model::{World, WorldConfig};
pub use postal::PostalAddress;
