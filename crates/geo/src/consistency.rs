//! The §4.1 "validation by IP address" comparison.
//!
//! The paper samples doxes containing both an IP and a postal address,
//! geolocates the IP and classifies the pair:
//!
//! - **exact** — geolocation and postal address coincide (rare: 4 of the 32
//!   close matches);
//! - **close** — same state/province/region;
//! - **adjacent** — the IP resolves to a neighbouring state ("ambiguous" in
//!   the paper: 1 of 36);
//! - **far** — a distant state or another country (3 of 36).

use crate::geoip::GeoIpDb;
use crate::model::World;
use crate::postal::PostalAddress;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Outcome classes of the IP/postal consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsistencyClass {
    /// The IP geolocates to the *same city* as the postal address — the
    /// paper's "the two match exactly" case (4 of 32 close matches).
    ExactMatch,
    /// Same state, different city ("the postal address included … detail
    /// that was not available from geolocation, or the two addresses were
    /// in different, but near-by cities").
    Close,
    /// Adjacent state in the same country.
    Adjacent,
    /// Anything farther, including unresolvable IPs.
    Far,
}

/// Classify an (IP, postal address) pair per §4.1.
///
/// An IP outside the geolocation database classifies as [`ConsistencyClass::Far`]
/// — an analyst faced with an unresolvable IP cannot corroborate the
/// address, which is the same conclusion.
pub fn classify_pair(
    world: &World,
    db: &GeoIpDb,
    ip: Ipv4Addr,
    address: &PostalAddress,
) -> ConsistencyClass {
    let Some(rec) = db.lookup(ip) else {
        return ConsistencyClass::Far;
    };
    let addr_state = address.state(world);
    if rec.state == addr_state {
        if rec.city == address.city {
            ConsistencyClass::ExactMatch
        } else {
            ConsistencyClass::Close
        }
    } else if world.states_adjacent(rec.state, addr_state) {
        ConsistencyClass::Adjacent
    } else {
        ConsistencyClass::Far
    }
}

/// Aggregate counts over a batch of classified pairs, in the shape the
/// paper reports (36 doxes: 32 close-or-exact, 1 adjacent, 3 far; of the
/// close ones, 4 exact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsistencySummary {
    /// Exact coordinate matches.
    pub exact: usize,
    /// Same-state matches (excluding exact).
    pub close: usize,
    /// Adjacent-state cases.
    pub adjacent: usize,
    /// Far mismatches.
    pub far: usize,
}

impl ConsistencySummary {
    /// Tally a batch of classifications.
    pub fn from_classes(classes: &[ConsistencyClass]) -> Self {
        let mut s = Self::default();
        for c in classes {
            match c {
                ConsistencyClass::ExactMatch => s.exact += 1,
                ConsistencyClass::Close => s.close += 1,
                ConsistencyClass::Adjacent => s.adjacent += 1,
                ConsistencyClass::Far => s.far += 1,
            }
        }
        s
    }

    /// Total classified pairs.
    pub fn total(&self) -> usize {
        self.exact + self.close + self.adjacent + self.far
    }

    /// "Close match" in the paper's sense: same state, including exact.
    pub fn close_or_exact(&self) -> usize {
        self.exact + self.close
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AllocConfig, Allocation};
    use crate::model::WorldConfig;

    struct Fixture {
        world: World,
        alloc: Allocation,
        db: GeoIpDb,
    }

    fn fixture() -> Fixture {
        let world = World::generate(
            &WorldConfig {
                countries: 2,
                states_per_country: 6,
                cities_per_state: 3,
            },
            21,
        );
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 21);
        let db = GeoIpDb::build(&world, &alloc);
        Fixture { world, alloc, db }
    }

    fn address_in_state(f: &Fixture, state_idx: usize) -> PostalAddress {
        let st = &f.world.states()[state_idx];
        let city = f.world.city(st.cities[0]);
        PostalAddress {
            number: 7,
            street: "Test Way".into(),
            city: city.id,
            zip: city.zip_range.0,
        }
    }

    fn ip_in_state(f: &Fixture, state_idx: usize) -> Ipv4Addr {
        let st = f.world.states()[state_idx].id;
        let isp = f.alloc.isps_in_state(st)[0];
        isp.blocks[0].nth(10).unwrap()
    }

    #[test]
    fn same_state_is_close_or_exact() {
        let f = fixture();
        let c = classify_pair(
            &f.world,
            &f.db,
            ip_in_state(&f, 0),
            &address_in_state(&f, 0),
        );
        assert!(
            matches!(c, ConsistencyClass::Close | ConsistencyClass::ExactMatch),
            "{c:?}"
        );
    }

    #[test]
    fn adjacent_state_is_adjacent() {
        let f = fixture();
        // states 0 and 1 are neighbouring grid columns in the same country
        let s0 = f.world.states()[0].id;
        let s1 = f.world.states()[1].id;
        assert!(f.world.states_adjacent(s0, s1));
        let c = classify_pair(
            &f.world,
            &f.db,
            ip_in_state(&f, 1),
            &address_in_state(&f, 0),
        );
        assert_eq!(c, ConsistencyClass::Adjacent);
    }

    #[test]
    fn other_country_is_far() {
        let f = fixture();
        // state 6 is in the second country (6 states per country)
        let c = classify_pair(
            &f.world,
            &f.db,
            ip_in_state(&f, 6),
            &address_in_state(&f, 0),
        );
        assert_eq!(c, ConsistencyClass::Far);
    }

    #[test]
    fn unresolvable_ip_is_far() {
        let f = fixture();
        let c = classify_pair(
            &f.world,
            &f.db,
            Ipv4Addr::new(0, 0, 0, 1),
            &address_in_state(&f, 0),
        );
        assert_eq!(c, ConsistencyClass::Far);
    }

    #[test]
    fn summary_tallies() {
        use ConsistencyClass::*;
        let s =
            ConsistencySummary::from_classes(&[ExactMatch, Close, Close, Adjacent, Far, Far, Far]);
        assert_eq!(s.exact, 1);
        assert_eq!(s.close, 2);
        assert_eq!(s.adjacent, 1);
        assert_eq!(s.far, 3);
        assert_eq!(s.total(), 7);
        assert_eq!(s.close_or_exact(), 3);
    }

    #[test]
    fn empty_summary() {
        let s = ConsistencySummary::from_classes(&[]);
        assert_eq!(s.total(), 0);
    }
}
