//! The synthetic world: countries, states and cities on a coordinate grid.
//!
//! Everything is generated procedurally from a seed. One country is flagged
//! as the "primary" English-speaking country (the stand-in for the United
//! States, where 64.5 % of dox victims with an address were located —
//! paper Table 5); persona generation in `dox-synth` weights addresses
//! accordingly.

use crate::coords::LatLon;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a country within a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CountryId(pub u16);

/// Identifier of a state within a [`World`] (global, not per-country).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateId(pub u16);

/// Identifier of a city within a [`World`] (global, not per-state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CityId(pub u32);

/// A country: a named collection of states laid out on a grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Country {
    /// Identifier.
    pub id: CountryId,
    /// Synthetic name, e.g. "Varnland".
    pub name: String,
    /// Whether this is the primary country (the USA stand-in).
    pub primary: bool,
    /// States belonging to this country.
    pub states: Vec<StateId>,
    /// Grid dimensions used to lay out states (needed for adjacency).
    pub grid_cols: u16,
}

/// A state/province: a named grid cell of a country containing cities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct State {
    /// Identifier.
    pub id: StateId,
    /// Owning country.
    pub country: CountryId,
    /// Synthetic name, e.g. "North Kelsia".
    pub name: String,
    /// Two-letter abbreviation used in postal addresses.
    pub abbrev: String,
    /// Position in the country's state grid `(row, col)`.
    pub grid_pos: (u16, u16),
    /// Centroid coordinate.
    pub center: LatLon,
    /// Cities in this state.
    pub cities: Vec<CityId>,
}

/// A city: a named point with a zip-code range.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// Identifier.
    pub id: CityId,
    /// Owning state.
    pub state: StateId,
    /// Synthetic name, e.g. "Brackford".
    pub name: String,
    /// Location.
    pub location: LatLon,
    /// Inclusive zip-code range `[lo, hi]` assigned to this city.
    pub zip_range: (u32, u32),
    /// Relative population weight (for sampling residents).
    pub population_weight: f64,
}

/// Configuration for [`World::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of countries (the first is primary). Must be ≥ 1.
    pub countries: u16,
    /// States per country (laid out on a near-square grid).
    pub states_per_country: u16,
    /// Cities per state.
    pub cities_per_state: u16,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            countries: 8,
            states_per_country: 12,
            cities_per_state: 6,
        }
    }
}

/// The fully generated synthetic world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    countries: Vec<Country>,
    states: Vec<State>,
    cities: Vec<City>,
    seed: u64,
}

const CITY_PREFIX: &[&str] = &[
    "Brack", "Hale", "Mor", "Thorn", "Wel", "Ash", "Crow", "Dun", "Els", "Fen", "Gren", "Holt",
    "Ives", "Kel", "Lun", "Marsh", "Nor", "Oak", "Pell", "Quar",
];
const CITY_SUFFIX: &[&str] = &[
    "ford", "ton", "ville", "burg", "haven", "field", "mouth", "wick", "stead", "port",
];
const STATE_FIRST: &[&str] = &[
    "Kelsia", "Varn", "Orsley", "Tarn", "Quill", "Meridia", "Sorrel", "Baxter", "Corvale",
    "Denholm", "Ferris", "Garland", "Hollis", "Ingram", "Jessup", "Lorane",
];
const STATE_PREFIX: &[&str] = &["North ", "South ", "East ", "West ", "New ", ""];
const COUNTRY_NAMES: &[&str] = &[
    "Amerigo",
    "Varnland",
    "Ostrea",
    "Caldonia",
    "Meridonia",
    "Tarvos",
    "Elandria",
    "Norvik",
    "Sundara",
    "Quorria",
    "Pellandria",
    "Vostia",
];

impl World {
    /// Generate a world deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `config.countries == 0` or any per-level count is zero.
    pub fn generate(config: &WorldConfig, seed: u64) -> Self {
        assert!(config.countries >= 1, "need at least one country");
        assert!(config.states_per_country >= 1, "need at least one state");
        assert!(config.cities_per_state >= 1, "need at least one city");

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6e0_6e0);
        let mut countries = Vec::new();
        let mut states = Vec::new();
        let mut cities = Vec::new();
        let mut next_zip = 10_000u32;

        let grid_cols = (config.states_per_country as f64).sqrt().ceil() as u16;

        for c in 0..config.countries {
            // Place each country centre on a coarse global grid so countries
            // are well separated (~30 degrees apart).
            let c_lat = -50.0 + 25.0 * f64::from(c % 5) + rng.random_range(-3.0..3.0);
            let c_lon = -160.0 + 40.0 * f64::from(c / 5 % 8) + rng.random_range(-5.0..5.0);
            let country_id = CountryId(c);
            let name = COUNTRY_NAMES[usize::from(c) % COUNTRY_NAMES.len()].to_string();
            let mut state_ids = Vec::new();

            for s in 0..config.states_per_country {
                let state_id = StateId(states.len() as u16);
                let (row, col) = (s / grid_cols, s % grid_cols);
                // States tile a ~10x10 degree country on a grid; each cell
                // is a few degrees across, so same-state points are within a
                // couple hundred km and different-state points are not.
                let s_lat = c_lat + 2.5 * f64::from(row) + rng.random_range(-0.3..0.3);
                let s_lon = c_lon + 2.5 * f64::from(col) + rng.random_range(-0.3..0.3);
                let center = LatLon::new(s_lat, s_lon);
                let first = STATE_FIRST[usize::from(state_id.0) % STATE_FIRST.len()];
                let prefix = STATE_PREFIX[usize::from(state_id.0 / 16) % STATE_PREFIX.len()];
                let sname = format!("{prefix}{first}");
                let abbrev = {
                    let letters: Vec<char> = sname.chars().filter(|c| c.is_alphabetic()).collect();
                    let a = letters.first().copied().unwrap_or('X');
                    let b = letters
                        .get(1 + usize::from(state_id.0) % 3)
                        .copied()
                        .unwrap_or('Y');
                    format!("{}{}", a.to_ascii_uppercase(), b.to_ascii_uppercase())
                };
                let mut city_ids = Vec::new();
                for k in 0..config.cities_per_state {
                    let city_id = CityId(cities.len() as u32);
                    let loc = LatLon::new(
                        center.lat + rng.random_range(-1.0..1.0),
                        center.lon + rng.random_range(-1.0..1.0),
                    );
                    let name = format!(
                        "{}{}",
                        CITY_PREFIX[rng.random_range(0..CITY_PREFIX.len())],
                        CITY_SUFFIX[rng.random_range(0..CITY_SUFFIX.len())]
                    );
                    let span = rng.random_range(3..12u32);
                    let zip_range = (next_zip, next_zip + span);
                    next_zip += span + 1;
                    // First city of a state is the "capital": biggest weight.
                    let population_weight = if k == 0 {
                        rng.random_range(5.0..10.0)
                    } else {
                        rng.random_range(0.5..3.0)
                    };
                    cities.push(City {
                        id: city_id,
                        state: state_id,
                        name,
                        location: loc,
                        zip_range,
                        population_weight,
                    });
                    city_ids.push(city_id);
                }
                states.push(State {
                    id: state_id,
                    country: country_id,
                    name: sname,
                    abbrev,
                    grid_pos: (row, col),
                    center,
                    cities: city_ids,
                });
                state_ids.push(state_id);
            }
            countries.push(Country {
                id: country_id,
                name,
                primary: c == 0,
                states: state_ids,
                grid_cols,
            });
        }
        Self {
            countries,
            states,
            cities,
            seed,
        }
    }

    /// The seed this world was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All countries.
    pub fn countries(&self) -> &[Country] {
        &self.countries
    }

    /// All states.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// All cities.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// Look up a country.
    pub fn country(&self, id: CountryId) -> &Country {
        &self.countries[usize::from(id.0)]
    }

    /// Look up a state.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[usize::from(id.0)]
    }

    /// Look up a city.
    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.0 as usize]
    }

    /// The primary (USA stand-in) country.
    pub fn primary_country(&self) -> &Country {
        self.countries
            .iter()
            .find(|c| c.primary)
            .expect("generate() always marks one country primary")
    }

    /// Find the city owning `zip`, if any.
    pub fn city_by_zip(&self, zip: u32) -> Option<&City> {
        self.cities
            .iter()
            .find(|c| zip >= c.zip_range.0 && zip <= c.zip_range.1)
    }

    /// Geocode by `(city name, state abbreviation)`, case-insensitive —
    /// what an analyst does with an address that lacks a zip code. City
    /// names are not globally unique; the state disambiguates.
    pub fn city_by_name_in_state(&self, name: &str, state_abbrev: &str) -> Option<&City> {
        self.cities.iter().find(|c| {
            c.name.eq_ignore_ascii_case(name)
                && self
                    .state(c.state)
                    .abbrev
                    .eq_ignore_ascii_case(state_abbrev)
        })
    }

    /// Whether two states are adjacent: same country and neighbouring grid
    /// cells (4-neighbourhood).
    pub fn states_adjacent(&self, a: StateId, b: StateId) -> bool {
        let (sa, sb) = (self.state(a), self.state(b));
        if sa.country != sb.country || a == b {
            return false;
        }
        let (ra, ca) = sa.grid_pos;
        let (rb, cb) = sb.grid_pos;
        let dr = (i32::from(ra) - i32::from(rb)).abs();
        let dc = (i32::from(ca) - i32::from(cb)).abs();
        dr + dc == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(&WorldConfig::default(), 42)
    }

    #[test]
    fn deterministic_generation() {
        let a = World::generate(&WorldConfig::default(), 7);
        let b = World::generate(&WorldConfig::default(), 7);
        assert_eq!(a.cities().len(), b.cities().len());
        assert_eq!(a.city(CityId(0)).name, b.city(CityId(0)).name);
        assert_eq!(a.state(StateId(3)).center, b.state(StateId(3)).center);
    }

    #[test]
    fn counts_match_config() {
        let cfg = WorldConfig {
            countries: 3,
            states_per_country: 4,
            cities_per_state: 5,
        };
        let w = World::generate(&cfg, 1);
        assert_eq!(w.countries().len(), 3);
        assert_eq!(w.states().len(), 12);
        assert_eq!(w.cities().len(), 60);
    }

    #[test]
    fn exactly_one_primary_country() {
        let w = world();
        assert_eq!(w.countries().iter().filter(|c| c.primary).count(), 1);
        assert_eq!(w.primary_country().id, CountryId(0));
    }

    #[test]
    fn zip_ranges_disjoint_and_resolvable() {
        let w = world();
        let mut ranges: Vec<(u32, u32)> = w.cities().iter().map(|c| c.zip_range).collect();
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 < pair[1].0, "zip ranges overlap: {pair:?}");
        }
        let c = w.city(CityId(5));
        assert_eq!(w.city_by_zip(c.zip_range.0).unwrap().id, c.id);
        assert_eq!(w.city_by_zip(c.zip_range.1).unwrap().id, c.id);
    }

    #[test]
    fn unknown_zip_is_none() {
        let w = world();
        assert!(w.city_by_zip(1).is_none());
    }

    #[test]
    fn cities_belong_to_their_state() {
        let w = world();
        for st in w.states() {
            for &cid in &st.cities {
                assert_eq!(w.city(cid).state, st.id);
            }
        }
    }

    #[test]
    fn adjacency_is_grid_neighbourhood() {
        let w = world();
        let country = &w.countries()[0];
        // Find two states in the same grid row, adjacent columns.
        let s0 = country.states[0];
        let s1 = country.states[1];
        assert!(w.states_adjacent(s0, s1));
        assert!(w.states_adjacent(s1, s0));
        assert!(!w.states_adjacent(s0, s0));
    }

    #[test]
    fn adjacency_never_crosses_countries() {
        let w = world();
        let a = w.countries()[0].states[0];
        let b = w.countries()[1].states[0];
        assert!(!w.states_adjacent(a, b));
    }

    #[test]
    fn same_state_cities_closer_than_cross_country() {
        let w = world();
        let st = &w.states()[0];
        let c0 = w.city(st.cities[0]);
        let c1 = w.city(st.cities[1]);
        let within = c0.location.distance_km(&c1.location);
        let other_country_city = w.city(w.state(w.countries()[1].states[0]).cities[0]);
        let across = c0.location.distance_km(&other_country_city.location);
        assert!(within < across, "within={within} across={across}");
    }

    #[test]
    #[should_panic(expected = "at least one country")]
    fn zero_countries_panics() {
        World::generate(
            &WorldConfig {
                countries: 0,
                ..WorldConfig::default()
            },
            0,
        );
    }
}
