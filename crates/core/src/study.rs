//! The study driver: the whole reproduction as a pure function of
//! `(StudyConfig, seed)`.
//!
//! [`Study::run`] wires every subsystem together in the order the original
//! measurement ran:
//!
//! 1. build the synthetic world (geography, IP allocation, geo-IP DB);
//! 2. train and evaluate the classifier (Table 1) and the extractor
//!    (Table 2) on labeled data;
//! 3. collect and process both study periods through the pipeline
//!    (Figure 1 / Table 4), recording ground-truth dox events on the side;
//! 4. realize the OSN world — control population, victim accounts,
//!    dox reactions, baseline churn, comment streams;
//! 5. monitor every referenced account on the paper's schedule;
//! 6. run every analysis (Tables 3, 5–10, Figures 2–3, §4.1, §5.3.2, §6.3)
//!    into one [`ExperimentReport`].

use crate::analysis::comments::{analyze_comments, CommentAnalysis};
use crate::analysis::community::{community_breakdown, CommunityBreakdown};
use crate::analysis::content::{content_breakdown, ContentBreakdown};
use crate::analysis::demographics::{demographics, Demographics};
use crate::analysis::doxnet::{build_graph, summarize, DoxerNetworkSummary};
use crate::analysis::motivation::{motivation_breakdown, MotivationBreakdown};
use crate::analysis::osn_presence::{osn_presence, OsnPresence};
use crate::analysis::sources::{source_breakdown, SourceBreakdown};
use crate::analysis::status_change::{
    doxed_vs_control_ratios, status_change_table, StatusChangeRow, StatusChangeTable,
};
use crate::analysis::timeline::{reaction_timing, timeline_panel, ReactionTiming, TimelinePanel};
use crate::analysis::validation::{validate_by_ip, DeletionValidation, IpValidation};
use crate::error::{Error, Result};
use crate::labeling::{label_sample, LabelingPlan};
use crate::monitor::{Monitor, Schedule};
use crate::pipeline::{Pipeline, PipelineCounters, PipelineOutput};
use crate::training::{ClassifierSummary, DoxClassifier};
use dox_engine::{
    DedupSpillConfig, DoxDetector, Engine, EngineConfig, EngineFaults, SessionCheckpoint,
};
use dox_extract::accuracy::{evaluate_extractor, ExtractorEvaluation};
use dox_fault::{BreakerConfig, CoverageGaps, FaultPlanConfig, FaultStats, RetryPolicy};
use dox_geo::alloc::{AllocConfig, Allocation};
use dox_geo::geoip::GeoIpDb;
use dox_geo::model::{World, WorldConfig};
use dox_obs::trace::fault_hop;
use dox_obs::{redact, Level, Registry, StageSpan, TraceConfig, Tracer};
use dox_osn::account::AccountId;
use dox_osn::clock::{SimDuration, SimTime};
use dox_osn::filters::{FilterEra, FilterSchedule, StudyPeriods};
use dox_osn::network::Network;
use dox_osn::platform::SimOsnWorld;
use dox_sites::collect::Collector;
use dox_store::{Store, StoreError, Table as StoreTable};
use dox_synth::config::SynthConfig;
use dox_synth::corpus::CorpusGenerator;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::Arc;

/// Where and how often a study persists resumable checkpoints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Durability {
    /// Directory for `study_checkpoint.json`; `None` disables
    /// checkpointing entirely.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint every this many ingested documents (0 is
    /// treated as the default below).
    pub checkpoint_every_docs: u64,
    /// Resume from the checkpoint in `checkpoint_dir` instead of starting
    /// fresh.
    pub resume: bool,
    /// Back the checkpoint and the dedup shards with a [`dox_store`]
    /// segment store in `checkpoint_dir/store` instead of a monolithic
    /// `study_checkpoint.json`. Dedup entries past the per-shard memory
    /// cap spill into the store, checkpoint snapshots shrink to the
    /// in-memory remainder, and resume cost is O(checkpoint), not
    /// O(entries ever seen).
    pub store: bool,
    /// In-memory dedup entries per shard before spilling to the store
    /// (0 is treated as the default below; only used with `store`).
    pub spill_cap_entries: usize,
}

impl Durability {
    /// Default checkpoint cadence when `checkpoint_every_docs` is 0.
    pub const DEFAULT_EVERY_DOCS: u64 = 10_000;

    /// Default per-shard in-memory dedup cap when `spill_cap_entries`
    /// is 0.
    pub const DEFAULT_SPILL_CAP: usize = 65_536;

    fn every(&self) -> u64 {
        if self.checkpoint_every_docs == 0 {
            Self::DEFAULT_EVERY_DOCS
        } else {
            self.checkpoint_every_docs
        }
    }

    fn spill_cap(&self) -> usize {
        if self.spill_cap_entries == 0 {
            Self::DEFAULT_SPILL_CAP
        } else {
            self.spill_cap_entries
        }
    }
}

/// Everything a full study run needs.
///
/// `#[non_exhaustive]`: construct through [`StudyConfig::builder`] (or the
/// [`paper`](StudyConfig::paper) / [`at_scale`](StudyConfig::at_scale) /
/// [`test_scale`](StudyConfig::test_scale) presets) so new knobs can be
/// added without breaking downstream crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct StudyConfig {
    /// Master seed.
    pub seed: u64,
    /// Corpus generation configuration (volumes + rates).
    pub synth: SynthConfig,
    /// Synthetic-world dimensions. Eight cities per state calibrates the
    /// §4.1 exact-match probability to the paper's 4-in-32.
    pub world: WorldConfig,
    /// IP allocation settings.
    pub alloc: AllocConfig,
    /// Monitoring schedule.
    pub schedule: Schedule,
    /// Manual-labeling plan (Table 4's 270 + 194).
    pub labeling: LabelingPlan,
    /// Instagram control-sample size (paper: 13,392).
    pub control_sample: usize,
    /// Background (non-victim) Instagram accounts to register.
    pub control_pool: usize,
    /// §4.1 sample size (paper: 50).
    pub ip_validation_sample: usize,
    /// Extractor-evaluation sample size (paper: 125).
    pub extractor_sample: usize,
    /// Ingest-engine topology ([`Study::run`]'s worker/shard/queue
    /// layout). Never affects the report — only throughput.
    pub engine: EngineConfig,
    /// Deterministic fault plan injected at the collection, probe,
    /// comment-fetch and engine-stage boundaries; `None` runs fault-free.
    /// A plan whose faults all recover produces a report byte-identical
    /// to the fault-free run.
    pub faults: Option<FaultPlanConfig>,
    /// Retry/backoff policy for injected faults.
    pub retry: RetryPolicy,
    /// Per-target circuit-breaker settings.
    pub breaker: BreakerConfig,
    /// Checkpoint/resume settings.
    pub durability: Durability,
    /// Causal-trace sampling rate, documents per million. 0 (the default)
    /// disables tracing entirely; [`dox_obs::SAMPLE_ALL`] traces every
    /// document. Tracing is pure observation — the report is byte-identical
    /// at any rate.
    pub trace_sample_ppm: u32,
    /// Bounded in-memory trace buffer capacity; the oldest trace (smallest
    /// document id) is evicted — and counted — when it fills.
    pub trace_capacity: usize,
}

impl StudyConfig {
    /// Start building a configuration; every knob defaults to the
    /// paper-scale value.
    pub fn builder() -> StudyConfigBuilder {
        StudyConfigBuilder {
            config: Self::paper(),
        }
    }

    /// Paper-scale configuration. A full run processes 1.74 M documents —
    /// use `--release`.
    pub fn paper() -> Self {
        Self::with_synth(SynthConfig::paper(), 13_392, 40_000)
    }

    /// Scaled configuration: volumes shrink, rates stay.
    ///
    /// # Panics
    /// Panics unless `0 < scale <= 1`.
    pub fn at_scale(scale: f64) -> Self {
        let control = ((13_392.0 * scale) as usize).max(300);
        let pool = (control * 3).max(2_000);
        Self::with_synth(SynthConfig::at_scale(scale), control, pool)
    }

    /// Fast configuration for tests (≈ 0.5 % scale — small enough for
    /// debug-mode CI, large enough that a few dozen accounts get
    /// monitored).
    pub fn test_scale() -> Self {
        Self::at_scale(0.005)
    }

    fn with_synth(synth: SynthConfig, control_sample: usize, control_pool: usize) -> Self {
        Self {
            seed: synth.seed,
            synth,
            world: WorldConfig {
                countries: 6,
                states_per_country: 8,
                cities_per_state: 8,
            },
            alloc: AllocConfig::default(),
            schedule: Schedule::paper(),
            labeling: LabelingPlan::default(),
            control_sample,
            control_pool,
            ip_validation_sample: 50,
            extractor_sample: 125,
            engine: EngineConfig::default(),
            faults: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            durability: Durability::default(),
            trace_sample_ppm: 0,
            trace_capacity: 4096,
        }
    }
}

/// Builder for [`StudyConfig`]. Defaults to the paper-scale run; each
/// setter overrides one knob.
///
/// ```
/// use dox_core::study::StudyConfig;
///
/// let config = StudyConfig::builder().seed(7).scale(0.01).build();
/// assert_eq!(config.seed, 7);
/// ```
#[derive(Debug, Clone)]
#[must_use = "builders do nothing until build() is called"]
pub struct StudyConfigBuilder {
    config: StudyConfig,
}

impl StudyConfigBuilder {
    /// Set the master seed (also re-seeds corpus generation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self.config.synth.seed = seed;
        self
    }

    /// Shrink the whole study to `scale` of the paper's volumes
    /// (`0 < scale <= 1`), like [`StudyConfig::at_scale`].
    ///
    /// # Panics
    /// Panics unless `0 < scale <= 1`.
    pub fn scale(mut self, scale: f64) -> Self {
        let seed = self.config.seed;
        let engine = self.config.engine.clone();
        let faults = self.config.faults.clone();
        let retry = self.config.retry;
        let breaker = self.config.breaker;
        let durability = self.config.durability.clone();
        let trace_sample_ppm = self.config.trace_sample_ppm;
        let trace_capacity = self.config.trace_capacity;
        self.config = StudyConfig::at_scale(scale);
        self.config.seed = seed;
        self.config.synth.seed = seed;
        self.config.engine = engine;
        self.config.faults = faults;
        self.config.retry = retry;
        self.config.breaker = breaker;
        self.config.durability = durability;
        self.config.trace_sample_ppm = trace_sample_ppm;
        self.config.trace_capacity = trace_capacity;
        self
    }

    /// Replace the corpus configuration wholesale.
    pub fn synth(mut self, synth: SynthConfig) -> Self {
        self.config.synth = synth;
        self
    }

    /// Replace the monitoring schedule.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Replace the manual-labeling plan.
    pub fn labeling(mut self, labeling: LabelingPlan) -> Self {
        self.config.labeling = labeling;
        self
    }

    /// Set the ingest-engine topology (workers, shards, queue depth).
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.config.engine = engine;
        self
    }

    /// Inject a deterministic fault plan at every I/O boundary.
    pub fn faults(mut self, plan: FaultPlanConfig) -> Self {
        self.config.faults = Some(plan);
        self
    }

    /// Set the retry/backoff policy for injected faults.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Set the circuit-breaker settings.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.config.breaker = breaker;
        self
    }

    /// Persist resumable checkpoints into `dir` during ingest.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.durability.checkpoint_dir = Some(dir.into());
        self
    }

    /// Checkpoint every `docs` ingested documents (0 restores the
    /// default cadence).
    pub fn checkpoint_every(mut self, docs: u64) -> Self {
        self.config.durability.checkpoint_every_docs = docs;
        self
    }

    /// Back checkpoints and dedup state with a segment store under the
    /// checkpoint dir (see [`Durability::store`]).
    pub fn store_backed(mut self, store: bool) -> Self {
        self.config.durability.store = store;
        self
    }

    /// In-memory dedup entries per shard before spilling to the store.
    pub fn spill_cap(mut self, entries: usize) -> Self {
        self.config.durability.spill_cap_entries = entries;
        self
    }

    /// Resume from the checkpoint in the configured checkpoint dir.
    pub fn resume(mut self, resume: bool) -> Self {
        self.config.durability.resume = resume;
        self
    }

    /// Trace `ppm` documents per million through the whole pipeline
    /// (0 disables tracing, [`dox_obs::SAMPLE_ALL`] traces everything).
    pub fn trace_sample(mut self, ppm: u32) -> Self {
        self.config.trace_sample_ppm = ppm;
        self
    }

    /// Retain at most `capacity` traces in the bounded buffer.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.config.trace_capacity = capacity;
        self
    }

    /// Finish building.
    pub fn build(self) -> StudyConfig {
        self.config
    }
}

/// One recorded ground-truth dox event (drives victim reactions).
struct DoxEvent {
    posted_at: SimTime,
    handles: Vec<(Network, String)>,
}

/// Record the ground-truth dox event carried by a collected document (if
/// any). Rebuilt on every pass over the corpus — resume and service-mode
/// replay regenerate the same events, so the OSN world sees the same
/// reactions either way.
fn record_dox_event(events: &mut Vec<DoxEvent>, collected: &dox_sites::collect::CollectedDoc) {
    if let Some(truth) = collected.doc.truth.as_dox() {
        if truth.duplicate_of.is_none() {
            events.push(DoxEvent {
                posted_at: collected.doc.posted_at,
                handles: truth.osn_handles.clone(),
            });
        }
    }
}

/// What phase 2 (labeled data) produces: the trained classifier and the
/// two evaluation tables derived alongside it.
struct TrainedStage {
    classifier: DoxClassifier,
    summary: ClassifierSummary,
    extractor_eval: ExtractorEvaluation,
}

/// Everything phases 4–6 need from the earlier phases: the world, the
/// post-collection generator and collector state, the recorded
/// ground-truth events, the evaluation tables and the pipeline output.
struct AnalysisInputs<'a> {
    world: &'a World,
    geoip: &'a GeoIpDb,
    gen: &'a CorpusGenerator<'a>,
    collector: &'a Collector,
    events: &'a [DoxEvent],
    classifier_summary: ClassifierSummary,
    extractor_eval: ExtractorEvaluation,
    output: &'a PipelineOutput,
}

/// The complete result set — one field per paper table/figure.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentReport {
    /// Figure 1 / Table 4 funnel counters.
    pub pipeline: PipelineCounters,
    /// Table 1.
    pub classifier: ClassifierSummary,
    /// Table 2.
    pub extractor: ExtractorEvaluation,
    /// Table 3.
    pub deletion: DeletionValidation,
    /// Table 4's "manually labeled" row: per-period labeled counts.
    pub labeled_per_period: [usize; 2],
    /// Table 5.
    pub demographics: Demographics,
    /// Table 6.
    pub content: ContentBreakdown,
    /// Table 7.
    pub community: CommunityBreakdown,
    /// Table 8.
    pub motivation: MotivationBreakdown,
    /// Table 9.
    pub osn_presence: OsnPresence,
    /// Figure 1 depth: per-source dox density.
    pub sources: SourceBreakdown,
    /// Table 10's doxed rows.
    pub status_changes: StatusChangeTable,
    /// Table 10's Instagram Default (control) row.
    pub control_row: StatusChangeRow,
    /// The §6.2.1 future-work comparison: the control restricted to
    /// *active* accounts (≥ 1 post every two weeks). Active users churn
    /// their settings more, so this baseline is strictly hotter than the
    /// all-accounts row — quantifying how much the paper's random control
    /// understates the "typical active user" baseline.
    pub control_row_active: StatusChangeRow,
    /// §6.2.2 ratios: `(any-change, more-private)` doxed ÷ control.
    pub doxed_vs_control: (f64, f64),
    /// Figure 2 summary.
    pub doxer_network: DoxerNetworkSummary,
    /// Figure 3 panels: FB pre, FB post, IG pre, IG post.
    pub timelines: Vec<TimelinePanel>,
    /// §6.3 reaction timing.
    pub reaction_timing: ReactionTiming,
    /// §5.3.2 comment analysis.
    pub comments: CommentAnalysis,
    /// §4.1 IP validation.
    pub ip_validation: IpValidation,
    /// Monitored accounts per network (Figure 1's bottom row / Table 10 n).
    pub monitored_per_network: BTreeMap<Network, usize>,
    /// Ground truth: total dox postings generated (recall denominator).
    pub truth_total_doxes: u64,
    /// Detection quality: `(true positives, false positives)`.
    pub detection: (u64, u64),
    /// Operations lost to exhausted fault retries — explicit coverage
    /// gaps, never silent drops. All-zero for fault-free runs *and* for
    /// fault plans whose every fault recovered, which is what makes a
    /// recovered run byte-identical to the clean one.
    pub coverage: CoverageGaps,
}

/// The on-disk resumable state of a study: the engine session checkpoint
/// plus enough identity to refuse resuming under a different experiment.
#[derive(Debug, Clone, Serialize)]
struct StudyCheckpoint {
    /// Fingerprint of `(seed, corpus volume, shards, fault plan)`.
    fingerprint: u64,
    /// Collected documents ingested into the engine so far. On resume the
    /// deterministic generation/collection replays and the first
    /// `docs_ingested` deliveries skip the (already absorbed) ingest.
    docs_ingested: u64,
    /// The engine's quiescent state.
    session: SessionCheckpoint,
}

impl serde::Deserialize for StudyCheckpoint {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        Some(StudyCheckpoint {
            fingerprint: value.get("fingerprint")?.as_u64()?,
            docs_ingested: value.get("docs_ingested")?.as_u64()?,
            session: SessionCheckpoint::from_value(value.get("session")?)?,
        })
    }
}

/// What a resumed run must match: the corpus identity (seed + volume),
/// the dedup partitioning (shards) and the fault schedule. Worker count,
/// queue depth and chunk size may all change freely between the killed
/// run and the resume.
fn config_fingerprint(cfg: &StudyConfig) -> u64 {
    let plan = cfg.faults.as_ref().map_or(0, FaultPlanConfig::fingerprint);
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for v in [
        cfg.seed,
        cfg.synth.total_documents(),
        cfg.engine.shards as u64,
        plan,
    ] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        h ^= h >> 29;
    }
    h
}

/// The study runner.
pub struct Study {
    config: StudyConfig,
    registry: Registry,
    tracer: Tracer,
}

impl Study {
    /// Create a study instrumented against the process-global registry.
    pub fn new(config: StudyConfig) -> Self {
        Self::with_registry(config, dox_obs::global().clone())
    }

    /// Create a study recording its phase spans, pipeline funnel and
    /// events into `registry` instead of the process-global one.
    pub fn with_registry(config: StudyConfig, registry: Registry) -> Self {
        let tracer = if config.trace_sample_ppm == 0 {
            Tracer::disabled()
        } else {
            Tracer::new(TraceConfig {
                seed: config.seed,
                sample_ppm: config.trace_sample_ppm,
                capacity: config.trace_capacity,
            })
        };
        Self {
            config,
            registry,
            tracer,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The metrics registry this study records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The causal tracer this study's documents flow through. Disabled —
    /// every call a no-op — unless `trace_sample_ppm > 0`; export its
    /// buffer with [`Tracer::export_jsonl`] after [`Study::run`].
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Execute the full reproduction through the streaming ingest engine
    /// (topology from [`StudyConfig::engine`]).
    ///
    /// The report is a pure function of `(config, seed)`: any worker or
    /// shard count produces byte-identical output (asserted by the
    /// engine determinism suite against [`Study::run_reference`]).
    pub fn run(&self) -> Result<ExperimentReport> {
        self.run_inner(false)
    }

    /// Execute the full reproduction through the sequential reference
    /// [`Pipeline`] instead of the engine. Kept as the executable
    /// specification the engine is compared against.
    pub fn run_reference(&self) -> Result<ExperimentReport> {
        self.run_inner(true)
    }

    /// Phases 1–2: the synthetic world and the trained classifier +
    /// extractor evaluation. Every entry point — [`Study::run`],
    /// [`Study::train_detector`], [`Study::report_from_ingest`] — replays
    /// these phases identically, which is what keeps the corpus stream
    /// and every downstream table a pure function of `(config, seed)`.
    fn train_stage(&self, gen: &mut CorpusGenerator<'_>) -> Result<TrainedStage> {
        let cfg = &self.config;
        let obs = &self.registry;
        let phase = StageSpan::enter(obs, "study.phase.training");
        let (texts, labels) = gen.training_sets();
        let (classifier, summary) = DoxClassifier::train(&texts, &labels, cfg.seed);
        obs.events().emit(
            Level::Info,
            "study",
            "classifier trained",
            vec![
                ("corpus".into(), texts.len().to_string()),
                ("dox_f1".into(), format!("{:.3}", summary.report.dox.f1)),
            ],
        );
        let mut extractor_sample = Vec::with_capacity(cfg.extractor_sample);
        for (doc, persona) in gen.proof_of_work_sample(cfg.extractor_sample) {
            let truth = doc.truth.as_dox().cloned().ok_or_else(|| {
                Error::Training(format!("proof-of-work doc {} is not labeled a dox", doc.id))
            })?;
            extractor_sample.push((doc.body, truth, persona));
        }
        let extractor_eval = evaluate_extractor(&extractor_sample);
        drop(phase);
        Ok(TrainedStage {
            classifier,
            summary,
            extractor_eval,
        })
    }

    /// Train the study's classifier and hand it back as an engine
    /// detector, leaving collection to the caller.
    ///
    /// This is the service-mode entry point: a resident daemon trains
    /// once per tenant, feeds the detector to an
    /// [`Engine::session_builder`](dox_engine::Engine::session_builder)
    /// session, and streams documents in as they arrive. The training
    /// replay is identical to what [`Study::run`] performs, so the
    /// detector classifies exactly as the batch run would.
    ///
    /// # Errors
    /// [`Error::Training`] if the generated proof-of-work corpus violates
    /// its labeling invariant.
    pub fn train_detector(&self) -> Result<Arc<dyn DoxDetector>> {
        let cfg = &self.config;
        let phase = StageSpan::enter(&self.registry, "study.phase.world_gen");
        let world = World::generate(&cfg.world, cfg.seed);
        let alloc = Allocation::generate(&world, &cfg.alloc, cfg.seed);
        drop(phase);
        let mut gen = CorpusGenerator::new(&world, &alloc, cfg.synth.clone());
        let trained = self.train_stage(&mut gen)?;
        Ok(Arc::new(trained.classifier))
    }

    /// Build the full [`ExperimentReport`] from a
    /// [`PipelineOutput`] produced by an externally driven engine session
    /// (service mode), instead of collecting and ingesting here.
    ///
    /// The world, training and ground-truth replay are pure functions of
    /// `(config, seed)`, so when the session ingested exactly the
    /// documents the study's collector would have collected — in order —
    /// the report is byte-identical to [`Study::run`]. Mid-stream
    /// outputs are also accepted: detection and funnel numbers then
    /// reflect only what was ingested so far, while ground-truth
    /// denominators (e.g. `truth_total_doxes`) still describe the whole
    /// corpus.
    ///
    /// # Errors
    /// [`Error::ServiceMode`] when the config carries a fault plan —
    /// injected collection faults cannot be replayed here, so resident
    /// sessions must run fault-free.
    pub fn report_from_ingest(&self, output: &PipelineOutput) -> Result<ExperimentReport> {
        let cfg = &self.config;
        if cfg.faults.is_some() {
            return Err(Error::ServiceMode(
                "fault plans are not supported for resident sessions".into(),
            ));
        }
        let phase = StageSpan::enter(&self.registry, "study.phase.world_gen");
        let world = World::generate(&cfg.world, cfg.seed);
        let alloc = Allocation::generate(&world, &cfg.alloc, cfg.seed);
        let geoip = GeoIpDb::build(&world, &alloc);
        drop(phase);
        let mut gen = CorpusGenerator::new(&world, &alloc, cfg.synth.clone());
        let trained = self.train_stage(&mut gen)?;

        // Replay collection without a pipeline behind it: the sink only
        // records ground-truth events, but the pass still advances the
        // generator RNG, persona store and site hubs exactly as the batch
        // run does — the deletion survey and OSN world depend on it.
        let mut collector = Collector::new(cfg.seed);
        let mut events: Vec<DoxEvent> = Vec::new();
        for period in [1u8, 2] {
            let _ = collector.collect_period(&mut gen, period, &mut |collected| {
                record_dox_event(&mut events, &collected);
                ControlFlow::Continue(())
            });
        }
        self.analyze(AnalysisInputs {
            world: &world,
            geoip: &geoip,
            gen: &gen,
            collector: &collector,
            events: &events,
            classifier_summary: trained.summary,
            extractor_eval: trained.extractor_eval,
            output,
        })
    }

    /// Replay the study's deterministic document stream — the exact
    /// `(period, document)` sequence [`Study::run`] would ingest — into
    /// `sink`, without running a pipeline.
    ///
    /// This is the client half of service mode: feed the yielded
    /// documents, in order, to a resident engine session (local or over
    /// `dox-serve`'s ingest API) and ask [`Study::report_from_ingest`]
    /// for the report; the result is byte-identical to [`Study::run`].
    /// Returning [`ControlFlow::Break`] from `sink` stops the replay
    /// early.
    ///
    /// # Errors
    /// [`Error::ServiceMode`] when the config carries a fault plan, and
    /// [`Error::Training`] if the proof-of-work replay fails its
    /// labeling invariant.
    pub fn synthetic_stream(
        &self,
        sink: &mut dyn FnMut(u8, dox_sites::collect::CollectedDoc) -> ControlFlow<()>,
    ) -> Result<()> {
        let cfg = &self.config;
        if cfg.faults.is_some() {
            return Err(Error::ServiceMode(
                "fault plans are not supported for resident sessions".into(),
            ));
        }
        let world = World::generate(&cfg.world, cfg.seed);
        let alloc = Allocation::generate(&world, &cfg.alloc, cfg.seed);
        let mut gen = CorpusGenerator::new(&world, &alloc, cfg.synth.clone());
        // Advance the generator through training exactly as run() does —
        // the corpus stream is a pure function of the whole call sequence.
        self.train_stage(&mut gen)?;
        let mut collector = Collector::new(cfg.seed);
        for period in [1u8, 2] {
            let flow = collector
                .collect_period(&mut gen, period, &mut |collected| sink(period, collected));
            if flow == ControlFlow::Break(()) {
                return Ok(());
            }
        }
        Ok(())
    }

    fn run_inner(&self, reference: bool) -> Result<ExperimentReport> {
        let cfg = &self.config;
        let seed = cfg.seed;
        let obs = &self.registry;

        // 1. Synthetic world.
        let phase = StageSpan::enter(obs, "study.phase.world_gen");
        let world = World::generate(&cfg.world, seed);
        let alloc = Allocation::generate(&world, &cfg.alloc, seed);
        let geoip = GeoIpDb::build(&world, &alloc);
        drop(phase);

        // 2. Labeled data: classifier + extractor evaluation.
        let mut gen = CorpusGenerator::new(&world, &alloc, cfg.synth.clone());
        let TrainedStage {
            classifier,
            summary: classifier_summary,
            extractor_eval,
        } = self.train_stage(&mut gen)?;

        // 3. Collection + pipeline, recording ground-truth dox events.
        // The streaming engine fans the pure classify/extract work over
        // its worker pool and shards dedup state; results are
        // bit-identical to the sequential reference pipeline.
        let phase = StageSpan::enter(obs, "study.phase.collection");
        let mut collector = match &cfg.faults {
            Some(plan) => Collector::with_faults(seed, plan.clone(), cfg.retry, cfg.breaker),
            None => Collector::new(seed),
        };
        // Sampled documents are admitted to the tracer here, at the
        // sequential collection boundary — the head of every causal trace.
        collector.instrument(obs, &self.tracer);
        let mut events: Vec<DoxEvent> = Vec::new();
        let output: PipelineOutput = if reference {
            let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            obs.gauge("pipeline.batch.threads")
                .set(i64::try_from(threads).unwrap_or(i64::MAX));
            const BATCH: usize = 8_192;
            let mut pipeline = Pipeline::with_registry(classifier, obs);
            for period in [1u8, 2] {
                let mut batch: Vec<dox_sites::collect::CollectedDoc> = Vec::with_capacity(BATCH);
                let _ = collector.collect_period(&mut gen, period, &mut |collected| {
                    record_dox_event(&mut events, &collected);
                    batch.push(collected);
                    if batch.len() >= BATCH {
                        pipeline.process_batch(&batch, period, threads);
                        batch.clear();
                    }
                    ControlFlow::Continue(())
                });
                pipeline.process_batch(&batch, period, threads);
            }
            pipeline.into_output()
        } else {
            let mut engine_cfg = cfg.engine.clone();
            if let Some(plan) = &cfg.faults {
                engine_cfg.faults = Some(EngineFaults {
                    plan: plan.clone(),
                    policy: cfg.retry,
                });
            }
            let engine = Engine::from_config(engine_cfg)?;
            let detector: Arc<dyn DoxDetector> = Arc::new(classifier);

            // Durability: `resume` replays the deterministic corpus and
            // skips the deliveries the checkpointed engine has already
            // absorbed; periodic checkpoints snapshot the quiesced engine.
            let fingerprint = config_fingerprint(cfg);
            let store_mode = cfg.durability.store;
            let checkpoint_path = if store_mode {
                // Store mode keeps the checkpoint *inside* the store so
                // one manifest swap commits spilled dedup entries and
                // the study checkpoint atomically.
                None
            } else {
                cfg.durability
                    .checkpoint_dir
                    .as_ref()
                    .map(|d| d.join("study_checkpoint.json"))
            };
            let every = cfg.durability.every();
            // The kill switches model an external SIGKILL; a resumed run
            // has already "survived" them, so they only arm on fresh runs.
            let kill_after = if cfg.durability.resume {
                None
            } else {
                cfg.faults.as_ref().and_then(|p| p.kill_after_docs)
            };
            let store: Option<Arc<Store>> =
                match (&cfg.durability.checkpoint_dir, store_mode) {
                    (Some(dir), true) => {
                        let store_dir = dir.join("store");
                        if !cfg.durability.resume {
                            // A fresh run owns the store directory — stale
                            // segments from an earlier experiment would
                            // resurrect dedup state into the new corpus.
                            let _ = std::fs::remove_dir_all(&store_dir);
                        }
                        let store = Store::open(&store_dir, obs)
                            .map_err(|e| Error::Checkpoint(format!("open store: {e}")))?;
                        if !cfg.durability.resume {
                            if let Some((nth, point)) = cfg.faults.as_ref().and_then(|p| {
                                p.kill_at_store_commit.map(|n| (n, p.kill_store_point))
                            }) {
                                store.arm_kill(nth, point);
                            }
                        }
                        Some(Arc::new(store))
                    }
                    _ => None,
                };
            let ck_table: Option<StoreTable<String, String>> = store
                .as_ref()
                .map(|s| StoreTable::new(Arc::clone(s), "study"));
            let resume_skipped = obs.counter("study.resume.skipped_docs");
            let resume_replayed = obs.counter("study.resume.replayed_docs");
            let mut skip: u64 = 0;
            let mut session = {
                let mut builder = engine
                    .session_builder()
                    .detector(detector)
                    .registry(obs)
                    .tracer(&self.tracer);
                if let Some(store) = &store {
                    builder = builder.spill(DedupSpillConfig {
                        store: Arc::clone(store),
                        cap_entries: cfg.durability.spill_cap(),
                    });
                }
                if cfg.durability.resume {
                    let text = if let Some(table) = &ck_table {
                        table
                            .get(&"checkpoint".to_string())
                            .map_err(|e| Error::Checkpoint(format!("read store checkpoint: {e}")))?
                            .ok_or_else(|| {
                                Error::Checkpoint("store holds no checkpoint to resume".into())
                            })?
                    } else {
                        let path = checkpoint_path.as_ref().ok_or_else(|| {
                            Error::Checkpoint("resume requested without a checkpoint dir".into())
                        })?;
                        std::fs::read_to_string(path).map_err(|e| {
                            Error::Checkpoint(format!("read {}: {e}", path.display()))
                        })?
                    };
                    let loaded: StudyCheckpoint = serde_json::from_str(&text)?;
                    if loaded.fingerprint != fingerprint {
                        return Err(Error::Checkpoint(
                            "checkpoint belongs to a different experiment \
                             (seed, scale, shard count or fault plan changed)"
                                .into(),
                        ));
                    }
                    skip = loaded.docs_ingested;
                    // Debug level: the resume notice must not perturb the
                    // Info-level event stream, which stays byte-identical
                    // between a clean run and a killed+resumed one.
                    obs.events().emit(
                        Level::Debug,
                        "study",
                        "resuming from checkpoint",
                        vec![("docs_ingested".into(), skip.to_string())],
                    );
                    builder.resume_from(loaded.session).start()?
                } else {
                    if let Some(dir) = &cfg.durability.checkpoint_dir {
                        std::fs::create_dir_all(dir).map_err(|e| {
                            Error::Checkpoint(format!("create {}: {e}", dir.display()))
                        })?;
                    }
                    builder.start()?
                }
            };

            let mut delivered: u64 = 0;
            let mut halted = false;
            let mut ingest_err: Option<Error> = None;
            'collect: for period in [1u8, 2] {
                let flow = collector.collect_period(&mut gen, period, &mut |collected| {
                    // Ground-truth dox events are rebuilt on every pass —
                    // resume replays generation, so the OSN world sees the
                    // same reactions either way.
                    record_dox_event(&mut events, &collected);
                    delivered += 1;
                    if delivered <= skip {
                        // Replay accounting: the checkpoint already covers
                        // this doc, so only generation replays, not ingest.
                        resume_skipped.inc();
                        return ControlFlow::Continue(());
                    }
                    if kill_after.is_some_and(|k| delivered > k) {
                        // Simulated SIGKILL: stop dead, do NOT checkpoint —
                        // resume must work from the last periodic snapshot.
                        halted = true;
                        return ControlFlow::Break(());
                    }
                    if skip > 0 && delivered <= skip {
                        // Pinned at zero by the fault matrix: a non-zero
                        // count means a checkpointed doc reached ingest
                        // again (O(checkpoint) resume broken).
                        resume_replayed.inc();
                    }
                    if let Err(e) = session.ingest(period, collected) {
                        ingest_err = Some(e.into());
                        return ControlFlow::Break(());
                    }
                    if (checkpoint_path.is_some() || ck_table.is_some())
                        && delivered.is_multiple_of(every)
                    {
                        match session.checkpoint() {
                            Ok(snapshot) => {
                                let checkpoint = StudyCheckpoint {
                                    fingerprint,
                                    docs_ingested: delivered,
                                    session: snapshot,
                                };
                                let wrote = if let Some(table) = &ck_table {
                                    commit_checkpoint_to_store(table, &checkpoint)
                                } else if let Some(path) = &checkpoint_path {
                                    write_checkpoint(path, &checkpoint)
                                } else {
                                    Ok(())
                                };
                                if let Err(e) = wrote {
                                    ingest_err = Some(e);
                                    return ControlFlow::Break(());
                                }
                            }
                            Err(e) => {
                                ingest_err = Some(e.into());
                                return ControlFlow::Break(());
                            }
                        }
                    }
                    ControlFlow::Continue(())
                });
                if flow == ControlFlow::Break(()) {
                    break 'collect;
                }
            }
            if let Some(e) = ingest_err {
                return Err(e);
            }
            if halted {
                return Err(Error::Halted {
                    docs_ingested: delivered.saturating_sub(1),
                });
            }
            session.finish()?
        };
        // The first unique dox doubles as a sanity probe in the event
        // log. Its body is PII-dense by construction, so only a redacted
        // length + fingerprint may leave the pipeline (dox-lint pii-taint).
        let first_dox = output.unique_doxes().next();
        obs.events().emit(
            Level::Info,
            "study",
            "collection complete",
            vec![
                ("documents".into(), output.counters().total.to_string()),
                (
                    "classified_dox".into(),
                    output.counters().classified_dox.to_string(),
                ),
                (
                    "first_dox".into(),
                    first_dox.map_or_else(|| "[none]".into(), |d| redact(&d.text).to_string()),
                ),
            ],
        );
        drop(phase);

        self.analyze(AnalysisInputs {
            world: &world,
            geoip: &geoip,
            gen: &gen,
            collector: &collector,
            events: &events,
            classifier_summary,
            extractor_eval,
            output: &output,
        })
    }

    /// Phases 4–6: realize the OSN world from the recorded ground-truth
    /// events, monitor every referenced account, and run every analysis
    /// into the final report. Pure with respect to *how* the
    /// [`PipelineOutput`] was produced — batch ingest ([`Study::run`])
    /// and service-mode ingest ([`Study::report_from_ingest`]) of the
    /// same document stream yield byte-identical reports.
    fn analyze(&self, inputs: AnalysisInputs<'_>) -> Result<ExperimentReport> {
        let AnalysisInputs {
            world,
            geoip,
            gen,
            collector,
            events,
            classifier_summary,
            extractor_eval,
            output,
        } = inputs;
        let cfg = &self.config;
        let seed = cfg.seed;
        let obs = &self.registry;

        // 4. The OSN world.
        let phase = StageSpan::enter(obs, "study.phase.osn_world");
        let periods = StudyPeriods::paper();
        let filters = FilterSchedule::paper();
        let mut osn = SimOsnWorld::new(seed);
        let mix = osn.behavior().mix;
        let mut reg_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0C0A_7E57);

        for i in 0..cfg.control_pool {
            osn.register_with_status_mix(
                Network::Instagram,
                &format!("bg_user_{i}"),
                SimTime::EPOCH,
                mix.private,
                mix.inactive,
            );
        }
        for persona in gen.personas() {
            for (network, handle) in &persona.accounts {
                let resolves = reg_rng.random_range(0.0..1.0) < cfg.synth.handle_resolution_rate;
                if resolves && osn.resolve(*network, handle).is_none() {
                    osn.register_with_status_mix(
                        *network,
                        handle,
                        SimTime::EPOCH,
                        mix.private,
                        mix.inactive,
                    );
                }
            }
        }
        // Victim reactions fire at ground-truth dox posting times.
        for event in events {
            for (network, handle) in &event.handles {
                if let Some(id) = osn.resolve(*network, handle) {
                    osn.notify_doxed(id, event.posted_at);
                }
            }
        }
        // Baseline churn animates every registry over the study window.
        for network in Network::MONITORED {
            osn.run_baseline_churn(network, (periods.period1.0, periods.period2.1));
        }
        drop(phase);

        // 5. Monitoring: doxed accounts on the paper schedule. The fault
        // plan (when present) shadows the probe and comment-fetch
        // boundaries; the control monitor below stays fault-free — the
        // paper's control sample is a *measurement baseline*, and the
        // comparison wants its weather constant.
        let phase = StageSpan::enter(obs, "study.phase.monitoring");
        let mut monitor = match &cfg.faults {
            Some(plan) => Monitor::with_faults(
                cfg.schedule.clone(),
                obs,
                plan.clone(),
                cfg.retry,
                cfg.breaker,
            ),
            None => Monitor::with_registry(cfg.schedule.clone(), obs),
        };
        // Store-backed runs persist the monitor's schedule and probe
        // cursors: a restored account re-enrolls as a no-op, so a
        // re-run over an already-monitored store issues zero probes for
        // covered accounts and still reports identical histories.
        if cfg.durability.store {
            if let Some(dir) = &cfg.durability.checkpoint_dir {
                let store = Store::open(dir.join("store"), obs)
                    .map_err(|e| Error::Checkpoint(format!("open store for monitor: {e}")))?;
                monitor
                    .attach_store(Arc::new(store))
                    .map_err(|e| Error::Checkpoint(format!("restore monitor state: {e}")))?;
            }
        }
        let mut monitored_ids: Vec<AccountId> = Vec::new();
        let unique: Vec<&crate::pipeline::DetectedDox> = output.unique_doxes().collect();
        for d in &unique {
            for r in &d.extracted.osn {
                // Skype has no profile page to probe (§3.1.5 monitors the
                // six profile-bearing networks).
                if !Network::MONITORED.contains(&r.network) {
                    continue;
                }
                if let Some(id) = osn.resolve(r.network, &r.handle) {
                    let round = monitor.enroll_and_probe(&osn, id, d.observed_at);
                    // Extend the detecting document's causal trace into
                    // monitoring: the hop carries the round's probe count
                    // and aggregate fault weather. A zero-probe round is a
                    // re-enrollment no-op and adds no hop.
                    if round.probes > 0 && self.tracer.sampled(d.doc_id) {
                        self.tracer.hop(
                            d.doc_id,
                            fault_hop(
                                "monitor",
                                d.observed_at.0,
                                round.attempts,
                                round.delay,
                                round.breaker_trips,
                                format!(
                                    "network={} probes={} missed={}",
                                    r.network.name(),
                                    round.probes,
                                    round.missed_probes
                                ),
                            ),
                        );
                    }
                    monitored_ids.push(id);
                }
            }
        }
        monitored_ids.sort_unstable();
        monitored_ids.dedup();

        // Control monitoring: weekly probes across the whole study.
        let control_schedule = Schedule {
            early_days: vec![0],
            repeat_days: 7,
            horizon_days: periods.period2.1.since(periods.period1.0).days(),
            jitter_minutes: 0,
        };
        let mut control_monitor = Monitor::with_registry(control_schedule, obs);
        let control_ids = osn.sample_instagram_uids(cfg.control_sample);
        for id in &control_ids {
            control_monitor.enroll_and_probe(&osn, *id, periods.period1.0);
        }
        let mut control_row = StatusChangeRow::default();
        let mut control_row_active = StatusChangeRow::default();
        for h in control_monitor.histories() {
            control_row.add(h);
            let active = osn.account(h.account).is_some_and(|a| a.is_active());
            if active {
                control_row_active.add(h);
            }
        }

        // Comment streams for monitored accounts, then §5.3.2.
        osn.generate_baseline_comments(&monitored_ids, (periods.period1.0, periods.period2.1));
        let comments = analyze_comments(&osn, &mut monitor);
        monitor
            .persist()
            .map_err(|e| Error::Checkpoint(format!("persist monitor state: {e}")))?;
        obs.events().emit(
            Level::Info,
            "study",
            "monitoring complete",
            vec![
                ("accounts".into(), monitor.len().to_string()),
                ("probes".into(), monitor.requests_made().to_string()),
            ],
        );
        drop(phase);

        // 6. Analyses.
        let phase = StageSpan::enter(obs, "study.phase.analysis");
        let detected = output.detected();
        let labeled = label_sample(detected, &cfg.labeling, seed);
        let labeled_per_period = [
            labeled.iter().filter(|l| l.period == 1).count(),
            labeled.iter().filter(|l| l.period == 2).count(),
        ];

        let doxers = gen.doxers();
        let alias_index: BTreeMap<String, u32> = doxers
            .doxers()
            .iter()
            .filter_map(|d| {
                d.twitter
                    .as_ref()
                    .map(|t| (t.trim_start_matches('@').to_lowercase(), d.id))
            })
            .collect();
        let follow_oracle = |a: &str, b: &str| -> bool {
            match (
                alias_index.get(&a.to_lowercase()),
                alias_index.get(&b.to_lowercase()),
            ) {
                (Some(&x), Some(&y)) => doxers.mutual_follow(x, y),
                _ => false,
            }
        };
        let doxer_network = summarize(&build_graph(detected, &follow_oracle));

        let status_changes = status_change_table(monitor.histories(), &filters);
        let histories: Vec<_> = monitor.histories().cloned().collect();
        let timelines = vec![
            timeline_panel(
                histories.iter(),
                Network::Facebook,
                FilterEra::PreFilter,
                &filters,
            ),
            timeline_panel(
                histories.iter(),
                Network::Facebook,
                FilterEra::PostFilter,
                &filters,
            ),
            timeline_panel(
                histories.iter(),
                Network::Instagram,
                FilterEra::PreFilter,
                &filters,
            ),
            timeline_panel(
                histories.iter(),
                Network::Instagram,
                FilterEra::PostFilter,
                &filters,
            ),
        ];
        let timing = reaction_timing(histories.iter());

        let mut monitored_per_network: BTreeMap<Network, usize> = BTreeMap::new();
        for h in &histories {
            *monitored_per_network.entry(h.account.network).or_insert(0) += 1;
        }

        // §6.2.2: Instagram doxed (both eras pooled) vs control.
        let mut ig_doxed = StatusChangeRow::default();
        for h in histories
            .iter()
            .filter(|h| h.account.network == Network::Instagram)
        {
            ig_doxed.add(h);
        }
        let doxed_vs_control = doxed_vs_control_ratios(&ig_doxed, &control_row);

        let deletion: DeletionValidation = collector
            .hub()
            .pastebin()
            .deletion_survey(periods.period1, SimDuration::from_days(30), &|id| {
                output.labeled_dox(id)
            })
            .into();

        let ip_validation = validate_by_ip(detected, world, geoip, cfg.ip_validation_sample, seed);
        drop(phase);

        // Coverage gaps: everything the fault plan cost us, explicitly.
        let mut coverage = collector.coverage_gaps();
        coverage.absorb(&monitor.coverage_gaps());
        coverage.stage_exhausted_docs += output.stage_gap_docs;
        if cfg.faults.is_some() {
            let mut fault_stats: FaultStats = collector.fault_stats();
            fault_stats.absorb(&monitor.fault_stats());
            obs.events().emit(
                Level::Info,
                "study",
                "fault summary",
                vec![
                    ("ops".into(), fault_stats.ops.to_string()),
                    ("faults".into(), fault_stats.faults_injected.to_string()),
                    ("retries".into(), fault_stats.retries.to_string()),
                    ("exhausted".into(), fault_stats.exhausted.to_string()),
                    (
                        "breaker_opens".into(),
                        fault_stats.breaker_opens.to_string(),
                    ),
                    ("coverage_gaps".into(), coverage.total().to_string()),
                ],
            );
            if let Some(breakers) = collector.breakers() {
                for (target, breaker) in breakers.iter() {
                    obs.gauge(&format!("fault.breaker.{target}"))
                        .set(breaker.state().as_gauge());
                }
            }
        }

        Ok(ExperimentReport {
            pipeline: output.counters().clone(),
            classifier: classifier_summary,
            extractor: extractor_eval,
            deletion,
            labeled_per_period,
            demographics: demographics(&labeled),
            content: content_breakdown(&labeled),
            community: community_breakdown(&labeled),
            motivation: motivation_breakdown(&labeled),
            osn_presence: osn_presence(detected),
            sources: source_breakdown(output.counters(), detected),
            status_changes,
            control_row,
            control_row_active,
            doxed_vs_control,
            doxer_network,
            timelines,
            reaction_timing: timing,
            comments,
            ip_validation,
            monitored_per_network,
            truth_total_doxes: cfg.synth.total_doxes(),
            detection: output.detection_quality(),
            coverage,
        })
    }
}

/// Atomically persist a checkpoint via the shared tmp + fsync + rename
/// discipline, so a kill mid-write can never leave a torn checkpoint.
fn write_checkpoint(path: &std::path::Path, checkpoint: &StudyCheckpoint) -> Result<()> {
    let json = serde_json::to_string(checkpoint)?;
    dox_fault::write_file_atomic(path, json.as_bytes())
        .map_err(|e| Error::Checkpoint(format!("write {}: {e}", path.display())))
}

/// Persist a checkpoint into the segment store: the JSON goes into the
/// `study` table and the store checkpoint's manifest swap commits it
/// *and* any dedup entries spilled since the last commit in one atomic
/// step — a crash can never separate the two.
///
/// A fault-drill kill armed on this commit surfaces as [`Error::Halted`],
/// the same way the ingest kill switch does: the process is "dead" and
/// must resume from the last durable commit.
fn commit_checkpoint_to_store(
    table: &StoreTable<String, String>,
    checkpoint: &StudyCheckpoint,
) -> Result<()> {
    let json = serde_json::to_string(checkpoint)?;
    table
        .put(&"checkpoint".to_string(), &json)
        .map_err(|e| Error::Checkpoint(format!("stage store checkpoint: {e}")))?;
    match table.store().checkpoint() {
        Ok(()) => Ok(()),
        Err(StoreError::Killed { .. }) => Err(Error::Halted {
            docs_ingested: checkpoint.docs_ingested,
        }),
        Err(e) => Err(Error::Checkpoint(format!("commit store checkpoint: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared test-scale run (the study is deterministic, so computing
    /// it once per test binary is sound).
    fn report() -> &'static ExperimentReport {
        use std::sync::OnceLock;
        static REPORT: OnceLock<ExperimentReport> = OnceLock::new();
        REPORT.get_or_init(|| {
            Study::new(StudyConfig::test_scale())
                .run()
                .expect("test-scale study runs")
        })
    }

    #[test]
    fn report_from_ingest_matches_batch_run() {
        // Drive the engine externally — the way dox-serve hosts a
        // resident session — and ask for the report afterwards. It must
        // match the batch run byte for byte.
        let registry = Registry::new();
        let study = Study::with_registry(StudyConfig::test_scale(), registry.clone());
        let detector = study.train_detector().expect("detector trains");
        let engine =
            Engine::from_config(study.config().engine.clone()).expect("valid engine config");
        let mut session = engine
            .session_builder()
            .detector(detector)
            .registry(&registry)
            .start()
            .expect("session starts");
        let mut ingest_err = None;
        study
            .synthetic_stream(&mut |period, doc| {
                if let Err(e) = session.ingest(period, doc) {
                    ingest_err = Some(e);
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            })
            .expect("stream replays");
        assert!(ingest_err.is_none(), "{ingest_err:?}");
        let output = session.finish().expect("engine drains");
        let service = study.report_from_ingest(&output).expect("service report");
        let batch = report();
        assert_eq!(
            serde_json::to_string(&service).expect("serializes"),
            serde_json::to_string(batch).expect("serializes"),
            "service-mode report must be byte-identical to the batch run"
        );
    }

    #[test]
    fn report_from_ingest_rejects_fault_plans() {
        let config = StudyConfig::builder()
            .scale(0.005)
            .faults(FaultPlanConfig::default())
            .build();
        let study = Study::with_registry(config, Registry::new());
        let err = study
            .report_from_ingest(&PipelineOutput::default())
            .expect_err("fault plans must be rejected");
        assert!(matches!(err, Error::ServiceMode(_)), "{err}");
    }

    #[test]
    fn funnel_counts_consistent() {
        let r = report();
        let cfg = StudyConfig::test_scale();
        assert_eq!(r.pipeline.total, cfg.synth.total_documents());
        assert!(r.pipeline.classified_dox > 0);
        assert!(r.pipeline.unique_doxes() <= r.pipeline.classified_dox);
        assert_eq!(r.truth_total_doxes, cfg.synth.total_doxes());
    }

    #[test]
    fn classifier_quality_reasonable() {
        let r = report();
        assert!(
            r.classifier.report.dox.f1 > 0.7,
            "{:?}",
            r.classifier.report
        );
        let (tp, fp) = r.detection;
        assert!(tp > 0);
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        assert!(precision > 0.6, "precision {precision}");
    }

    #[test]
    fn monitoring_found_accounts() {
        let r = report();
        let total: usize = r.monitored_per_network.values().sum();
        assert!(total > 0, "some referenced accounts must resolve");
        // Facebook is the most-referenced network (Table 9) and should be
        // among the most-monitored.
        let fb = r
            .monitored_per_network
            .get(&Network::Facebook)
            .copied()
            .unwrap_or(0);
        assert!(fb > 0);
    }

    #[test]
    fn doxed_accounts_change_more_than_control() {
        let r = report();
        // Pool every doxed row: per-network counts are tiny at test scale.
        let mut pooled = StatusChangeRow::default();
        for row in r.status_changes.rows.values() {
            pooled.more_private += row.more_private;
            pooled.more_public += row.more_public;
            pooled.any_change += row.any_change;
            pooled.total += row.total;
        }
        assert!(pooled.total > 0, "no monitored accounts at all");
        // At test scale only a handful of accounts are monitored, so the
        // reaction count can legitimately be zero; the statistical claim
        // is asserted at 4 % scale by tests/pipeline_shapes.rs.
        if pooled.total >= 15 {
            assert!(
                pooled.any_change > 0,
                "doxed accounts should show some reaction: {pooled:?}"
            );
            let (any, _) = doxed_vs_control_ratios(&pooled, &r.control_row);
            assert!(
                any > 1.0 || any.is_infinite(),
                "pooled any-change ratio {any} ({pooled:?} vs {:?})",
                r.control_row
            );
        }
    }

    #[test]
    fn labeled_sample_analyses_populated() {
        let r = report();
        assert!(r.labeled_per_period[0] > 0);
        assert!(r.demographics.total > 0);
        assert_eq!(
            r.demographics.total,
            r.labeled_per_period[0] + r.labeled_per_period[1]
        );
        assert!(r.content.row("Address (any)").unwrap().fraction > 0.5);
        assert!(r.motivation.justice >= r.motivation.political);
    }

    #[test]
    fn deletion_survey_shape_holds() {
        let r = report();
        assert!(r.deletion.dox_total > 0);
        assert!(r.deletion.other_total > r.deletion.dox_total);
        // At test scale the dox pool is a handful of files, so the rate
        // comparison is only meaningful with enough deletions to observe;
        // the paper-scale shape (3x) is asserted by the bench harness.
        if r.deletion.dox_deleted + r.deletion.other_deleted >= 20 && r.deletion.dox_total >= 50 {
            assert!(
                r.deletion.dox_rate() > r.deletion.other_rate(),
                "dox {} vs other {}",
                r.deletion.dox_rate(),
                r.deletion.other_rate()
            );
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let r = report();
        let json = serde_json::to_string(r).expect("report must serialize");
        assert!(json.contains("pipeline"));
        assert!(json.contains("classifier"));
    }
}
