//! Networks referenced in dox files (paper Table 9).
//!
//! Counts, over **all classified doxes** (Table 9's denominator is the
//! 5,530 detected files, pre-dedup), how many reference each of the six
//! measured networks — via the pipeline's extractor, exactly as the paper
//! generated these counts (§6.1: "We generated these counts using the
//! account extractor described in section 3.1.3").

use crate::pipeline::DetectedDox;
use dox_osn::network::Network;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The Table 9 counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OsnPresence {
    /// Doxes referencing each network.
    pub per_network: BTreeMap<Network, usize>,
    /// Total classified doxes (the denominator).
    pub total_doxes: usize,
}

impl OsnPresence {
    /// Count for a network.
    pub fn count(&self, network: Network) -> usize {
        self.per_network.get(&network).copied().unwrap_or(0)
    }

    /// Fraction of doxes referencing a network.
    pub fn fraction(&self, network: Network) -> f64 {
        if self.total_doxes == 0 {
            0.0
        } else {
            self.count(network) as f64 / self.total_doxes as f64
        }
    }
}

/// Compute Table 9 over every detected dox.
pub fn osn_presence(detected: &[DetectedDox]) -> OsnPresence {
    let mut p = OsnPresence {
        total_doxes: detected.len(),
        ..OsnPresence::default()
    };
    for d in detected {
        let mut seen = std::collections::BTreeSet::new();
        for r in &d.extracted.osn {
            seen.insert(r.network);
        }
        for n in seen {
            *p.per_network.entry(n).or_insert(0) += 1;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_osn::clock::SimTime;
    use dox_synth::corpus::Source;

    fn detected(text: &str) -> DetectedDox {
        DetectedDox {
            doc_id: 0,
            source: Source::Pastebin,
            period: 1,
            posted_at: SimTime::EPOCH,
            observed_at: SimTime::EPOCH,
            text: text.to_string(),
            extracted: dox_extract::record::extract(text),
            duplicate: None,
            truth: None,
        }
    }

    #[test]
    fn networks_counted_once_per_dox() {
        let docs = vec![
            detected("facebook: victim.one1\nfb: victim.two2\ntwitter: victim_tw1"),
            detected("facebook.com/victim.three3"),
            detected("no accounts here"),
        ];
        let p = osn_presence(&docs);
        assert_eq!(p.total_doxes, 3);
        assert_eq!(p.count(Network::Facebook), 2, "two docs, not three handles");
        assert_eq!(p.count(Network::Twitter), 1);
        assert_eq!(p.count(Network::Twitch), 0);
        assert!((p.fraction(Network::Facebook) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let p = osn_presence(&[]);
        assert_eq!(p.total_doxes, 0);
        assert_eq!(p.fraction(Network::Facebook), 0.0);
    }
}
