//! The paper's analyses — one module per reported table or figure.
//!
//! | Module | Paper result |
//! |---|---|
//! | [`demographics`] | Table 5 — victim demographics |
//! | [`content`] | Table 6 — sensitive-information categories |
//! | [`community`] | Table 7 — victim communities |
//! | [`motivation`] | Table 8 — stated motivations |
//! | [`osn_presence`] | Table 9 — networks referenced in doxes |
//! | [`sources`] | Figure 1 depth — per-source dox density |
//! | [`status_change`] | Table 10 + §6.2.2 — account status changes |
//! | [`timeline`] | Figure 3 + §6.3 — 14-day status timelines |
//! | [`doxnet`] | Figure 2 — doxer cliques |
//! | [`comments`] | §5.3.2 — cross-account commenter search |
//! | [`validation`] | §4.1 + Table 3 — IP consistency, deletion survey |

pub mod comments;
pub mod community;
pub mod content;
pub mod demographics;
pub mod doxnet;
pub mod motivation;
pub mod osn_presence;
pub mod sources;
pub mod status_change;
pub mod timeline;
pub mod validation;
