//! Sensitive-information categories (paper Table 6).
//!
//! Counts, over the manually labeled doxes, how many include each
//! demographic/sensitive category. Mirrors the paper's privacy-preserving
//! datastore: only booleans per category, never values.

use crate::labeling::LabeledDox;
use serde::Serialize;

/// One Table 6 row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CategoryCount {
    /// Category label, matching the paper's row names.
    pub label: &'static str,
    /// Doxes including the category.
    pub count: usize,
    /// As a fraction of labeled doxes.
    pub fraction: f64,
}

/// The full Table 6.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ContentBreakdown {
    /// Rows in the paper's order (common categories, then rare ones).
    pub rows: Vec<CategoryCount>,
    /// Labeled doxes.
    pub total: usize,
}

/// Compute Table 6 over the labeled sample.
pub fn content_breakdown(labeled: &[LabeledDox]) -> ContentBreakdown {
    let total = labeled.len();
    let count = |f: &dyn Fn(&LabeledDox) -> bool| labeled.iter().filter(|l| f(l)).count();
    let row = |label: &'static str, c: usize| CategoryCount {
        label,
        count: c,
        fraction: if total == 0 {
            0.0
        } else {
            c as f64 / total as f64
        },
    };
    let rows = vec![
        row("Address (any)", count(&|l| l.truth.fields.address)),
        row("Phone Number", count(&|l| l.truth.fields.phone)),
        row("Family Info", count(&|l| l.truth.fields.family)),
        row("Email", count(&|l| l.truth.fields.email)),
        row("Address (zip)", count(&|l| l.truth.fields.zip)),
        row("Date of Birth", count(&|l| l.truth.fields.dob)),
        row("School", count(&|l| l.truth.fields.school)),
        row("Usernames", count(&|l| l.truth.fields.usernames)),
        row("ISP", count(&|l| l.truth.fields.isp)),
        row("IP Address", count(&|l| l.truth.fields.ip)),
        row("Passwords", count(&|l| l.truth.fields.passwords)),
        row("Physical Traits", count(&|l| l.truth.fields.physical)),
        row("Criminal Records", count(&|l| l.truth.fields.criminal)),
        row("Social Security #", count(&|l| l.truth.fields.ssn)),
        row("Credit Card #", count(&|l| l.truth.fields.credit_card)),
        row("Other Financial Info", count(&|l| l.truth.fields.financial)),
    ];
    ContentBreakdown { rows, total }
}

impl ContentBreakdown {
    /// Find a row by label.
    pub fn row(&self, label: &str) -> Option<&CategoryCount> {
        self.rows.iter().find(|r| r.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_synth::truth::{DoxTruth, Gender, IncludedFields};

    fn labeled(fields: IncludedFields) -> LabeledDox {
        LabeledDox {
            doc_id: 0,
            period: 1,
            truth: DoxTruth {
                persona_id: 0,
                age: 20,
                gender: Gender::Male,
                primary_country: true,
                fields,
                osn_handles: vec![],
                community: None,
                motivation: None,
                credits: vec![],
                duplicate_of: None,
                exact_duplicate: false,
                sloppy: false,
                stub: false,
            },
        }
    }

    #[test]
    fn counts_and_fractions() {
        let sample = vec![
            labeled(IncludedFields {
                address: true,
                zip: true,
                phone: true,
                ..IncludedFields::default()
            }),
            labeled(IncludedFields {
                address: true,
                ..IncludedFields::default()
            }),
        ];
        let b = content_breakdown(&sample);
        assert_eq!(b.total, 2);
        assert_eq!(b.row("Address (any)").unwrap().count, 2);
        assert_eq!(b.row("Address (zip)").unwrap().count, 1);
        assert!((b.row("Phone Number").unwrap().fraction - 0.5).abs() < 1e-9);
        assert_eq!(b.row("Passwords").unwrap().count, 0);
    }

    #[test]
    fn row_order_matches_paper() {
        let b = content_breakdown(&[]);
        assert_eq!(b.rows[0].label, "Address (any)");
        assert_eq!(b.rows.last().unwrap().label, "Other Financial Info");
        assert_eq!(b.rows.len(), 16);
    }

    #[test]
    fn empty_sample_fractions_zero() {
        let b = content_breakdown(&[]);
        assert!(b.rows.iter().all(|r| r.fraction == 0.0 && r.count == 0));
    }
}
