//! Per-source dox density (Figure 1 depth).
//!
//! Figure 1 shows wildly different volumes per source; dividing the
//! detected doxes by them shows *where doxing concentrates*: 8ch/baphomet
//! — a board created for harassment — is orders of magnitude denser than
//! pastebin's firehose, even though pastebin hosts the most doxes in
//! absolute terms.

use crate::pipeline::{DetectedDox, PipelineCounters};
use dox_synth::corpus::Source;
use serde::Serialize;
use std::collections::BTreeMap;

/// One source's row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SourceDensity {
    /// Documents collected from the source.
    pub documents: u64,
    /// Doxes detected on the source.
    pub doxes: u64,
}

impl SourceDensity {
    /// Doxes per 10,000 documents.
    pub fn per_10k(&self) -> f64 {
        if self.documents == 0 {
            0.0
        } else {
            self.doxes as f64 / self.documents as f64 * 10_000.0
        }
    }
}

/// Per-source density table.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SourceBreakdown {
    /// Rows keyed by the source's display name.
    pub rows: BTreeMap<String, SourceDensity>,
}

impl SourceBreakdown {
    /// The densest source (by doxes per 10k documents), if any row has
    /// documents.
    pub fn densest(&self) -> Option<(&str, f64)> {
        self.rows
            .iter()
            .filter(|(_, d)| d.documents > 0)
            .map(|(name, d)| (name.as_str(), d.per_10k()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Compute the density table from pipeline state.
pub fn source_breakdown(counters: &PipelineCounters, detected: &[DetectedDox]) -> SourceBreakdown {
    let mut per_source_dox: BTreeMap<Source, u64> = BTreeMap::new();
    for d in detected {
        *per_source_dox.entry(d.source).or_insert(0) += 1;
    }
    let mut rows = BTreeMap::new();
    for source in Source::ALL {
        let documents = counters.per_source.get(source.name()).copied().unwrap_or(0);
        let doxes = per_source_dox.get(&source).copied().unwrap_or(0);
        rows.insert(
            source.name().to_string(),
            SourceDensity { documents, doxes },
        );
    }
    SourceBreakdown { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_osn::clock::SimTime;

    fn detected(source: Source, n: usize) -> Vec<DetectedDox> {
        (0..n)
            .map(|i| DetectedDox {
                doc_id: i as u64,
                source,
                period: 1,
                posted_at: SimTime::EPOCH,
                observed_at: SimTime::EPOCH,
                text: String::new(),
                extracted: Default::default(),
                duplicate: None,
                truth: None,
            })
            .collect()
    }

    fn counters(pairs: &[(Source, u64)]) -> PipelineCounters {
        let mut c = PipelineCounters::default();
        for (s, n) in pairs {
            c.per_source.insert(s.name().to_string(), *n);
        }
        c
    }

    #[test]
    fn density_math() {
        let d = SourceDensity {
            documents: 10_000,
            doxes: 30,
        };
        assert!((d.per_10k() - 30.0).abs() < 1e-9);
        assert_eq!(
            SourceDensity {
                documents: 0,
                doxes: 0
            }
            .per_10k(),
            0.0
        );
    }

    #[test]
    fn densest_source_found() {
        let c = counters(&[(Source::Pastebin, 100_000), (Source::Chan8Baphomet, 100)]);
        let mut det = detected(Source::Pastebin, 50);
        det.extend(detected(Source::Chan8Baphomet, 6));
        let b = source_breakdown(&c, &det);
        let (name, density) = b.densest().unwrap();
        assert_eq!(name, "8ch/baphomet");
        assert!((density - 600.0).abs() < 1e-9);
        assert_eq!(b.rows["pastebin.com"].doxes, 50);
    }

    #[test]
    fn all_sources_present_even_with_zero_traffic() {
        let b = source_breakdown(&PipelineCounters::default(), &[]);
        assert_eq!(b.rows.len(), Source::ALL.len());
        assert!(b.densest().is_none());
    }
}
