//! Victim demographics (paper Table 5).
//!
//! Computed over the manually labeled doxes: age range and mean, gender
//! shares, and — among labeled doxes that include an address — the
//! fraction of victims located in the primary (USA stand-in) country.

use crate::labeling::LabeledDox;
use dox_synth::truth::Gender;
use serde::{Deserialize, Serialize};

/// The Table 5 row values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Demographics {
    /// Minimum stated age.
    pub min_age: u8,
    /// Maximum stated age.
    pub max_age: u8,
    /// Mean stated age.
    pub mean_age: f64,
    /// Fraction female.
    pub female: f64,
    /// Fraction male.
    pub male: f64,
    /// Fraction other.
    pub other: f64,
    /// Fraction in the primary country, among labeled doxes with an
    /// address.
    pub primary_country: f64,
    /// Labeled doxes with an address (the denominator for the row above —
    /// the paper's footnote: "percentage of the 300 dox files that
    /// included an address").
    pub with_address: usize,
    /// Total labeled doxes.
    pub total: usize,
}

/// Compute Table 5 over the labeled sample.
///
/// Ages count only doxes that state an age or date of birth (an annotator
/// can't know an unstated age). Gender is recorded for every labeled dox
/// (dox files state or imply it).
pub fn demographics(labeled: &[LabeledDox]) -> Demographics {
    let mut d = Demographics {
        min_age: u8::MAX,
        total: labeled.len(),
        ..Demographics::default()
    };
    let mut age_sum = 0u64;
    let mut age_n = 0u64;
    let (mut male, mut female, mut other) = (0usize, 0usize, 0usize);
    let mut primary = 0usize;

    for l in labeled {
        let t = &l.truth;
        if t.fields.age || t.fields.dob {
            d.min_age = d.min_age.min(t.age);
            d.max_age = d.max_age.max(t.age);
            age_sum += u64::from(t.age);
            age_n += 1;
        }
        match t.gender {
            Gender::Male => male += 1,
            Gender::Female => female += 1,
            Gender::Other => other += 1,
        }
        if t.fields.address {
            d.with_address += 1;
            primary += usize::from(t.primary_country);
        }
    }
    if age_n > 0 {
        d.mean_age = age_sum as f64 / age_n as f64;
    } else {
        d.min_age = 0;
    }
    let n = labeled.len().max(1) as f64;
    d.male = male as f64 / n;
    d.female = female as f64 / n;
    d.other = other as f64 / n;
    d.primary_country = if d.with_address > 0 {
        primary as f64 / d.with_address as f64
    } else {
        0.0
    };
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_synth::truth::{DoxTruth, IncludedFields};

    fn labeled(age: u8, stated: bool, gender: Gender, address: bool, primary: bool) -> LabeledDox {
        LabeledDox {
            doc_id: 0,
            period: 1,
            truth: DoxTruth {
                persona_id: 0,
                age,
                gender,
                primary_country: primary,
                fields: IncludedFields {
                    age: stated,
                    address,
                    ..IncludedFields::default()
                },
                osn_handles: vec![],
                community: None,
                motivation: None,
                credits: vec![],
                duplicate_of: None,
                exact_duplicate: false,
                sloppy: false,
                stub: false,
            },
        }
    }

    #[test]
    fn ages_only_counted_when_stated() {
        let sample = vec![
            labeled(10, true, Gender::Male, true, true),
            labeled(30, true, Gender::Female, true, false),
            labeled(99, false, Gender::Male, false, false), // unstated age
        ];
        let d = demographics(&sample);
        assert_eq!(d.min_age, 10);
        assert_eq!(d.max_age, 30);
        assert!((d.mean_age - 20.0).abs() < 1e-9);
    }

    #[test]
    fn gender_shares() {
        let sample = vec![
            labeled(20, true, Gender::Male, false, false),
            labeled(20, true, Gender::Male, false, false),
            labeled(20, true, Gender::Female, false, false),
            labeled(20, true, Gender::Other, false, false),
        ];
        let d = demographics(&sample);
        assert!((d.male - 0.5).abs() < 1e-9);
        assert!((d.female - 0.25).abs() < 1e-9);
        assert!((d.other - 0.25).abs() < 1e-9);
    }

    #[test]
    fn primary_country_uses_address_denominator() {
        let sample = vec![
            labeled(20, true, Gender::Male, true, true),
            labeled(20, true, Gender::Male, true, false),
            labeled(20, true, Gender::Male, false, true), // no address: excluded
        ];
        let d = demographics(&sample);
        assert_eq!(d.with_address, 2);
        assert!((d.primary_country - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_sample_is_safe() {
        let d = demographics(&[]);
        assert_eq!(d.total, 0);
        assert_eq!(d.mean_age, 0.0);
        assert_eq!(d.min_age, 0);
        assert_eq!(d.primary_country, 0.0);
    }
}
