//! The validation studies (paper §4).
//!
//! 1. **Validation by IP address** (§4.1): sample 50 detected doxes that
//!    include an IP address, keep those that also include a postal
//!    address, geolocate the IP, and classify the pair as exact / close /
//!    adjacent / far. The paper: 36 doxes had both, 32 were close (4 of
//!    them exact), 1 adjacent, 3 far.
//! 2. **Validation by post deletion** (Table 3): within one month of
//!    posting, dox-labeled pastebin files were deleted 3× as often as
//!    other files (12.8 % vs 4.2 %).

use crate::pipeline::DetectedDox;
use dox_geo::consistency::{classify_pair, ConsistencyClass, ConsistencySummary};
use dox_geo::geoip::GeoIpDb;
use dox_geo::model::World;
use dox_geo::postal::PostalAddress;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// §4.1's result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpValidation {
    /// Doxes sampled (paper: 50).
    pub sampled: usize,
    /// Of those, doxes with both an IP and a postal address (paper: 36).
    pub with_both: usize,
    /// Consistency outcome counts.
    pub summary: ConsistencySummary,
}

/// Run §4.1: sample up to `sample_size` unique detected doxes whose
/// extraction found an IP, then classify those that also carry a zip-coded
/// address.
///
/// The postal side is reconstructed from the extracted zip code via the
/// world's zip index — exactly the information a dox reader would use to
/// geocode the address.
pub fn validate_by_ip(
    detected: &[DetectedDox],
    world: &World,
    db: &GeoIpDb,
    sample_size: usize,
    seed: u64,
) -> IpValidation {
    let mut with_ip: Vec<&DetectedDox> = detected
        .iter()
        .filter(|d| d.duplicate.is_none() && !d.extracted.fields.ips.is_empty())
        .collect();
    // Deterministic sample of `sample_size`.
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1BAD_D00D);
    for i in 0..with_ip.len().min(sample_size) {
        let j = rng.random_range(i..with_ip.len());
        with_ip.swap(i, j);
    }
    with_ip.truncate(sample_size);

    let mut v = IpValidation {
        sampled: with_ip.len(),
        ..IpValidation::default()
    };
    let mut classes: Vec<ConsistencyClass> = Vec::new();
    for d in &with_ip {
        let Some(city) = geocode_extracted_address(world, d) else {
            continue;
        };
        let address = PostalAddress {
            number: 1,
            street: String::new(),
            city: city.id,
            zip: city.zip_range.0,
        };
        let ip = d.extracted.fields.ips[0];
        v.with_both += 1;
        classes.push(classify_pair(world, db, ip, &address));
    }
    v.summary = ConsistencySummary::from_classes(&classes);
    v
}

/// Geocode a detection's extracted postal address: by zip code when one
/// was extracted, else by the `…, City, ST` tail of the address line —
/// the same two strategies a human analyst would use.
fn geocode_extracted_address<'w>(
    world: &'w World,
    d: &DetectedDox,
) -> Option<&'w dox_geo::model::City> {
    if let Some(zip) = d.extracted.fields.zip {
        if let Some(city) = world.city_by_zip(zip) {
            return Some(city);
        }
    }
    let address = d.extracted.fields.address.as_deref()?;
    // "1210 Maple Street, Brackford, NK 10234" or "…, Brackford, NK".
    let mut parts = address.rsplit(',').map(str::trim);
    let last = parts.next()?;
    let city_name = parts.next()?;
    let state_abbrev = last.split_whitespace().next()?;
    world.city_by_name_in_state(city_name, state_abbrev)
}

/// Table 3's result, re-exported from the site substrate with the paper's
/// framing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeletionValidation {
    /// Dox-labeled pastes posted in period 1.
    pub dox_total: u64,
    /// Deleted within a month.
    pub dox_deleted: u64,
    /// Other pastes.
    pub other_total: u64,
    /// Deleted within a month.
    pub other_deleted: u64,
}

impl DeletionValidation {
    /// Dox deletion rate.
    pub fn dox_rate(&self) -> f64 {
        if self.dox_total == 0 {
            0.0
        } else {
            self.dox_deleted as f64 / self.dox_total as f64
        }
    }

    /// Non-dox deletion rate.
    pub fn other_rate(&self) -> f64 {
        if self.other_total == 0 {
            0.0
        } else {
            self.other_deleted as f64 / self.other_total as f64
        }
    }

    /// The paper's headline: dox files delete ≈ 3× as often.
    pub fn ratio(&self) -> f64 {
        let o = self.other_rate();
        if o == 0.0 {
            f64::INFINITY
        } else {
            self.dox_rate() / o
        }
    }
}

impl From<dox_sites::pastebin::DeletionSurvey> for DeletionValidation {
    fn from(s: dox_sites::pastebin::DeletionSurvey) -> Self {
        Self {
            dox_total: s.dox_total,
            dox_deleted: s.dox_deleted,
            other_total: s.other_total,
            other_deleted: s.other_deleted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_extract::record::extract;
    use dox_geo::alloc::{AllocConfig, Allocation};
    use dox_geo::model::WorldConfig;
    use dox_osn::clock::SimTime;
    use dox_synth::corpus::Source;

    fn fixture() -> (World, Allocation, GeoIpDb) {
        let world = World::generate(
            &WorldConfig {
                countries: 3,
                states_per_country: 6,
                cities_per_state: 8,
            },
            91,
        );
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 91);
        let db = GeoIpDb::build(&world, &alloc);
        (world, alloc, db)
    }

    fn detected_with(text: String) -> DetectedDox {
        DetectedDox {
            doc_id: 0,
            source: Source::Pastebin,
            period: 1,
            posted_at: SimTime::EPOCH,
            observed_at: SimTime::EPOCH,
            extracted: extract(&text),
            text,
            duplicate: None,
            truth: None,
        }
    }

    #[test]
    fn consistent_pairs_classify_close_or_exact() {
        let (world, alloc, db) = fixture();
        // Build doxes whose IP and zip are deliberately consistent.
        let mut docs = Vec::new();
        for i in 0..20 {
            let state = &world.states()[i % world.states().len()];
            let city = world.city(state.cities[0]);
            let isp = alloc.isps_in_state(state.id)[0];
            let ip = isp.blocks[0].nth(7 + i as u32).unwrap();
            docs.push(detected_with(format!(
                "Name: Victim {i}\nAddress: 1 Test Way, {}, {} {}\nIP: {ip}\n",
                city.name,
                world.state(state.id).abbrev,
                city.zip_range.0
            )));
        }
        let v = validate_by_ip(&docs, &world, &db, 50, 1);
        assert_eq!(v.sampled, 20);
        assert_eq!(v.with_both, 20);
        assert_eq!(
            v.summary.close_or_exact(),
            20,
            "same-state IPs must classify close: {:?}",
            v.summary
        );
    }

    #[test]
    fn doxes_without_zip_dont_count_toward_both() {
        let (world, alloc, db) = fixture();
        let isp = &alloc.isps()[0];
        let ip = isp.blocks[0].nth(3).unwrap();
        let docs = vec![detected_with(format!("IP: {ip}\nno address here"))];
        let v = validate_by_ip(&docs, &world, &db, 50, 2);
        assert_eq!(v.sampled, 1);
        assert_eq!(v.with_both, 0);
    }

    #[test]
    fn sample_size_respected() {
        let (world, alloc, db) = fixture();
        let isp = &alloc.isps()[0];
        let docs: Vec<DetectedDox> = (0..100)
            .map(|i| {
                let ip = isp.blocks[0].nth(10 + i).unwrap();
                detected_with(format!("IP: {ip}"))
            })
            .collect();
        let v = validate_by_ip(&docs, &world, &db, 50, 3);
        assert_eq!(v.sampled, 50);
    }

    #[test]
    fn duplicates_excluded_from_sampling() {
        let (world, alloc, db) = fixture();
        let isp = &alloc.isps()[0];
        let ip = isp.blocks[0].nth(3).unwrap();
        let mut doc = detected_with(format!("IP: {ip}"));
        doc.duplicate = Some((crate::dedup::DuplicateKind::ExactBody, 0));
        let v = validate_by_ip(&[doc], &world, &db, 50, 4);
        assert_eq!(v.sampled, 0);
    }

    #[test]
    fn deletion_validation_rates() {
        let v = DeletionValidation {
            dox_total: 1122,
            dox_deleted: 144,
            other_total: 483_063,
            other_deleted: 20_501,
        };
        assert!((v.dox_rate() - 0.128).abs() < 0.001);
        assert!((v.other_rate() - 0.042).abs() < 0.001);
        assert!(v.ratio() > 3.0);
    }

    #[test]
    fn empty_deletion_validation() {
        let v = DeletionValidation::default();
        assert_eq!(v.dox_rate(), 0.0);
        assert!(v.ratio().is_infinite());
    }
}
