//! Stated motivations (paper Table 8).
//!
//! Counts the doxes whose text states a motivation the annotator could
//! infer: competitive, revenge, justice or political. The remainder
//! (≈ 71.6 % in the paper) state none.

use crate::labeling::LabeledDox;
use dox_synth::truth::Motivation;
use serde::{Deserialize, Serialize};

/// The Table 8 counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MotivationBreakdown {
    /// Competitive doxes.
    pub competitive: usize,
    /// Revenge doxes.
    pub revenge: usize,
    /// Justice doxes.
    pub justice: usize,
    /// Political doxes.
    pub political: usize,
    /// Labeled doxes.
    pub total: usize,
}

impl MotivationBreakdown {
    /// Doxes with any inferable motivation.
    pub fn with_motivation(&self) -> usize {
        self.competitive + self.revenge + self.justice + self.political
    }

    /// Fraction of labeled doxes.
    pub fn fraction(&self, count: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            count as f64 / self.total as f64
        }
    }
}

/// Compute Table 8 over the labeled sample.
pub fn motivation_breakdown(labeled: &[LabeledDox]) -> MotivationBreakdown {
    let mut b = MotivationBreakdown {
        total: labeled.len(),
        ..MotivationBreakdown::default()
    };
    for l in labeled {
        match l.truth.motivation {
            Some(Motivation::Competitive) => b.competitive += 1,
            Some(Motivation::Revenge) => b.revenge += 1,
            Some(Motivation::Justice) => b.justice += 1,
            Some(Motivation::Political) => b.political += 1,
            None => {}
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_synth::truth::{DoxTruth, Gender, IncludedFields};

    fn labeled(motivation: Option<Motivation>) -> LabeledDox {
        LabeledDox {
            doc_id: 0,
            period: 1,
            truth: DoxTruth {
                persona_id: 0,
                age: 20,
                gender: Gender::Male,
                primary_country: true,
                fields: IncludedFields::default(),
                osn_handles: vec![],
                community: None,
                motivation,
                credits: vec![],
                duplicate_of: None,
                exact_duplicate: false,
                sloppy: false,
                stub: false,
            },
        }
    }

    #[test]
    fn motivations_counted() {
        let sample = vec![
            labeled(Some(Motivation::Justice)),
            labeled(Some(Motivation::Justice)),
            labeled(Some(Motivation::Revenge)),
            labeled(Some(Motivation::Competitive)),
            labeled(Some(Motivation::Political)),
            labeled(None),
        ];
        let b = motivation_breakdown(&sample);
        assert_eq!(b.justice, 2);
        assert_eq!(b.revenge, 1);
        assert_eq!(b.with_motivation(), 5);
        assert!((b.fraction(b.justice) - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sample() {
        let b = motivation_breakdown(&[]);
        assert_eq!(b.with_motivation(), 0);
        assert_eq!(b.fraction(3), 0.0);
    }
}
