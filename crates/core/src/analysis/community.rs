//! Victim communities (paper Table 7) and stated motivations helper types.
//!
//! The paper classifies a labeled victim as a *gamer* or *hacker* when the
//! dox lists more than two accounts on the corresponding community sites,
//! and as a *celebrity* when the victim is publicly known. The annotator's
//! evidence is the dox text itself; here the ground-truth `community`
//! field plays that role (the generator only sets it when the dox actually
//! exposes the community accounts).

use crate::labeling::LabeledDox;
use dox_synth::truth::Community;
use serde::{Deserialize, Serialize};

/// The Table 7 counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommunityBreakdown {
    /// Hackers.
    pub hacker: usize,
    /// Gamers.
    pub gamer: usize,
    /// Celebrities.
    pub celebrity: usize,
    /// Labeled doxes.
    pub total: usize,
}

impl CommunityBreakdown {
    /// Victims assigned to any category.
    pub fn categorized(&self) -> usize {
        self.hacker + self.gamer + self.celebrity
    }

    /// Fraction of labeled doxes in a category.
    pub fn fraction(&self, count: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            count as f64 / self.total as f64
        }
    }
}

/// Compute Table 7 over the labeled sample.
pub fn community_breakdown(labeled: &[LabeledDox]) -> CommunityBreakdown {
    let mut b = CommunityBreakdown {
        total: labeled.len(),
        ..CommunityBreakdown::default()
    };
    for l in labeled {
        match l.truth.community {
            Some(Community::Hacker) => b.hacker += 1,
            Some(Community::Gamer) => b.gamer += 1,
            Some(Community::Celebrity) => b.celebrity += 1,
            None => {}
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_synth::truth::{DoxTruth, Gender, IncludedFields};

    fn labeled(community: Option<Community>) -> LabeledDox {
        LabeledDox {
            doc_id: 0,
            period: 1,
            truth: DoxTruth {
                persona_id: 0,
                age: 20,
                gender: Gender::Male,
                primary_country: true,
                fields: IncludedFields::default(),
                osn_handles: vec![],
                community,
                motivation: None,
                credits: vec![],
                duplicate_of: None,
                exact_duplicate: false,
                sloppy: false,
                stub: false,
            },
        }
    }

    #[test]
    fn categories_counted() {
        let sample = vec![
            labeled(Some(Community::Gamer)),
            labeled(Some(Community::Gamer)),
            labeled(Some(Community::Hacker)),
            labeled(Some(Community::Celebrity)),
            labeled(None),
            labeled(None),
        ];
        let b = community_breakdown(&sample);
        assert_eq!(b.gamer, 2);
        assert_eq!(b.hacker, 1);
        assert_eq!(b.celebrity, 1);
        assert_eq!(b.categorized(), 4);
        assert!((b.fraction(b.gamer) - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sample() {
        let b = community_breakdown(&[]);
        assert_eq!(b.categorized(), 0);
        assert_eq!(b.fraction(0), 0.0);
    }
}
