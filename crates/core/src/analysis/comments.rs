//! Cross-account commenter search (paper §5.3.2).
//!
//! The paper recorded 33,570 comments on the public accounts of doxing
//! victims from 9,792 distinct commenters and looked for commenters active
//! on multiple victims' accounts (possible evidence of doxers following
//! their victims) — finding none. The reproduction fetches the public
//! comments of every monitored account through the scraper and runs the
//! same search.

use crate::monitor::Monitor;
use dox_osn::account::AccountId;
use dox_osn::platform::SimOsnWorld;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// §5.3.2's numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommentAnalysis {
    /// Comments recorded on victims' public accounts.
    pub total_comments: usize,
    /// Distinct commenters.
    pub distinct_commenters: usize,
    /// Commenters seen on more than one victim's account.
    pub cross_account_commenters: usize,
    /// Accounts whose comments were fetched.
    pub accounts_fetched: usize,
}

/// Fetch comments for every monitored account (at its final probe time)
/// and run the cross-account search.
pub fn analyze_comments(world: &SimOsnWorld, monitor: &mut Monitor) -> CommentAnalysis {
    let targets: Vec<(AccountId, dox_osn::clock::SimTime)> = monitor
        .histories()
        .filter_map(|h| h.observations.last().map(|o| (h.account, o.at)))
        .collect();
    let mut per_commenter: BTreeMap<String, BTreeSet<AccountId>> = BTreeMap::new();
    let mut total = 0usize;
    let mut fetched = 0usize;
    for (account, at) in targets {
        // Rate limits are retried and injected faults recovered inside the
        // monitor; a `None` here is an explicitly counted miss, not a
        // silent drop.
        let Some(comments) = monitor.fetch_comments_recovering(world, account, at) else {
            continue;
        };
        fetched += 1;
        for c in comments {
            total += 1;
            per_commenter
                .entry(c.commenter)
                .or_default()
                .insert(account);
        }
    }
    let cross = per_commenter.values().filter(|s| s.len() > 1).count();
    CommentAnalysis {
        total_comments: total,
        distinct_commenters: per_commenter.len(),
        cross_account_commenters: cross,
        accounts_fetched: fetched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Schedule;
    use dox_osn::account::AccountStatus;
    use dox_osn::clock::SimTime;
    use dox_osn::network::Network;

    #[test]
    fn comments_counted_and_no_cross_account_by_construction() {
        let mut world = SimOsnWorld::new(77);
        let mut ids = Vec::new();
        for i in 0..20 {
            ids.push(world.register(
                Network::Instagram,
                &format!("victim{i}"),
                SimTime::EPOCH,
                AccountStatus::Public,
            ));
        }
        world.generate_baseline_comments(&ids, (SimTime::EPOCH, SimTime::from_days(10)));
        for &id in &ids {
            world.notify_doxed(id, SimTime::from_days(12));
        }
        let mut monitor = Monitor::new(Schedule::paper());
        for &id in &ids {
            monitor.enroll_and_probe(&world, id, SimTime::from_days(12));
        }
        let analysis = analyze_comments(&world, &mut monitor);
        assert!(analysis.total_comments > 0);
        assert!(analysis.distinct_commenters > 0);
        assert_eq!(
            analysis.cross_account_commenters, 0,
            "commenter pools are disjoint per account"
        );
        assert!(analysis.accounts_fetched <= 20);
        // each comment has a commenter; distinct ≤ total
        assert!(analysis.distinct_commenters <= analysis.total_comments);
    }

    #[test]
    fn private_accounts_contribute_nothing() {
        let mut world = SimOsnWorld::new(78);
        let id = world.register(
            Network::Instagram,
            "hidden",
            SimTime::EPOCH,
            AccountStatus::Private,
        );
        world.generate_baseline_comments(&[id], (SimTime::EPOCH, SimTime::from_days(10)));
        let mut monitor = Monitor::new(Schedule::paper());
        monitor.enroll_and_probe(&world, id, SimTime::from_days(12));
        let analysis = analyze_comments(&world, &mut monitor);
        assert_eq!(analysis.total_comments, 0);
    }

    #[test]
    fn empty_monitor() {
        let world = SimOsnWorld::new(79);
        let mut monitor = Monitor::new(Schedule::paper());
        let analysis = analyze_comments(&world, &mut monitor);
        assert_eq!(analysis, CommentAnalysis::default());
    }
}
