//! 14-day status timelines (paper Figure 3) and reaction timing (§6.3).
//!
//! Figure 3 plots, for Facebook and Instagram accounts in each filter era,
//! the day-by-day status (public / private / inactive) of the accounts
//! that changed status within two weeks of being doxed. §6.3 additionally
//! reports how quickly "more-private" changes land: 35.8 % within 24
//! hours, 90.6 % within 7 days.

use crate::monitor::AccountHistory;
use dox_osn::account::AccountStatus;
use dox_osn::filters::{FilterEra, FilterSchedule};
use dox_osn::network::Network;
use serde::{Deserialize, Serialize};

/// Day-by-day status counts for one (network, era) panel of Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelinePanel {
    /// The network.
    pub network: Network,
    /// The filter era.
    pub era: FilterEra,
    /// Accounts in the panel (those that changed within 14 days).
    pub changed_accounts: usize,
    /// All monitored accounts of this (network, era).
    pub total_accounts: usize,
    /// `counts[day] = (public, private, inactive)` for day 0..=14, over
    /// the changed accounts.
    pub counts: Vec<(usize, usize, usize)>,
}

impl TimelinePanel {
    /// Fraction of monitored accounts that changed within two weeks.
    pub fn changed_fraction(&self) -> f64 {
        if self.total_accounts == 0 {
            0.0
        } else {
            self.changed_accounts as f64 / self.total_accounts as f64
        }
    }
}

/// Whether a history shows any status change within `days` of first
/// observation.
fn changed_within(h: &AccountHistory, days: u64) -> bool {
    let mut prev: Option<AccountStatus> = None;
    for d in 0..=days {
        let Some(s) = h.status_as_of_day(d) else {
            continue;
        };
        if let Some(p) = prev {
            if p != s {
                return true;
            }
        }
        prev = Some(s);
    }
    false
}

/// Build one Figure 3 panel.
pub fn timeline_panel<'a>(
    histories: impl Iterator<Item = &'a AccountHistory>,
    network: Network,
    era: FilterEra,
    filters: &FilterSchedule,
) -> TimelinePanel {
    let mut panel = TimelinePanel {
        network,
        era,
        changed_accounts: 0,
        total_accounts: 0,
        counts: vec![(0, 0, 0); 15],
    };
    for h in histories {
        if h.account.network != network {
            continue;
        }
        if filters.era(network, h.first_observed) != era {
            continue;
        }
        panel.total_accounts += 1;
        if !changed_within(h, 14) {
            continue;
        }
        panel.changed_accounts += 1;
        for day in 0..=14u64 {
            let status = h.status_as_of_day(day);
            let slot = &mut panel.counts[day as usize];
            match status {
                Some(AccountStatus::Public) => slot.0 += 1,
                Some(AccountStatus::Private) => slot.1 += 1,
                Some(AccountStatus::Inactive) => slot.2 += 1,
                None => {}
            }
        }
    }
    panel
}

/// §6.3 reaction timing over every monitored account: of the observed
/// "more-private" transitions, the fraction landing within 24 hours and
/// within 7 days of the dox being observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReactionTiming {
    /// More-private changes observed.
    pub total: usize,
    /// Within 24 hours.
    pub within_day: usize,
    /// Within 7 days.
    pub within_week: usize,
}

impl ReactionTiming {
    /// Fraction within 24 h.
    pub fn frac_within_day(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.within_day as f64 / self.total as f64
        }
    }

    /// Fraction within 7 days.
    pub fn frac_within_week(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.within_week as f64 / self.total as f64
        }
    }
}

/// Compute §6.3 reaction timing.
///
/// Note the vantage-point caveat: a change is *observed* at the probe that
/// first sees it, so the measured delay quantizes to the probe schedule —
/// the same quantization the paper's numbers carry.
pub fn reaction_timing<'a>(histories: impl Iterator<Item = &'a AccountHistory>) -> ReactionTiming {
    let mut t = ReactionTiming::default();
    // A change first seen at the day-1 (resp. day-7) probe counts as
    // within 24 h (resp. 7 days); probes carry up to ±6 h of queue jitter,
    // so the thresholds absorb it.
    const DAY1_PROBE: f64 = 1.3;
    const DAY7_PROBE: f64 = 7.3;
    for h in histories {
        if let Some(delay) = h.first_more_private_delay() {
            t.total += 1;
            if delay.days_f64() <= DAY1_PROBE {
                t.within_day += 1;
            }
            if delay.days_f64() <= DAY7_PROBE {
                t.within_week += 1;
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_osn::account::AccountId;
    use dox_osn::clock::SimTime;
    use dox_osn::scraper::Observation;

    fn history(
        network: Network,
        uid: u64,
        observed_day: u64,
        day_status: &[(u64, AccountStatus)],
    ) -> AccountHistory {
        let account = AccountId { network, uid };
        AccountHistory {
            account,
            first_observed: SimTime::from_days(observed_day),
            observations: day_status
                .iter()
                .map(|&(d, s)| Observation {
                    account,
                    at: SimTime::from_days(observed_day + d),
                    status: s,
                })
                .collect(),
        }
    }

    use AccountStatus::{Inactive, Private, Public};

    #[test]
    fn panel_selects_changed_accounts_only() {
        let filters = FilterSchedule::paper();
        let histories = [
            history(
                Network::Facebook,
                1,
                5,
                &[(0, Public), (2, Private), (14, Private)],
            ),
            history(Network::Facebook, 2, 5, &[(0, Public), (14, Public)]),
            // changes, but only after day 14
            history(
                Network::Facebook,
                3,
                5,
                &[(0, Public), (14, Public), (21, Inactive)],
            ),
            // wrong era
            history(Network::Facebook, 4, 160, &[(0, Public), (1, Private)]),
            // wrong network
            history(Network::Twitter, 5, 5, &[(0, Public), (1, Private)]),
        ];
        let panel = timeline_panel(
            histories.iter(),
            Network::Facebook,
            FilterEra::PreFilter,
            &filters,
        );
        assert_eq!(panel.total_accounts, 3);
        assert_eq!(panel.changed_accounts, 1);
        assert!((panel.changed_fraction() - 1.0 / 3.0).abs() < 1e-9);
        // day 0-1: public; day 2 on: private
        assert_eq!(panel.counts[0], (1, 0, 0));
        assert_eq!(panel.counts[1], (1, 0, 0));
        assert_eq!(panel.counts[2], (0, 1, 0));
        assert_eq!(panel.counts[14], (0, 1, 0));
    }

    #[test]
    fn reaction_timing_buckets() {
        let histories = [
            // more-private at day 0 probe? first probe public, change at day 1
            history(Network::Instagram, 1, 0, &[(0, Public), (1, Private)]),
            history(Network::Instagram, 2, 0, &[(0, Public), (3, Private)]),
            history(Network::Instagram, 3, 0, &[(0, Public), (14, Inactive)]),
            history(Network::Instagram, 4, 0, &[(0, Public), (7, Public)]),
        ];
        let t = reaction_timing(histories.iter());
        assert_eq!(t.total, 3);
        assert_eq!(t.within_day, 1);
        assert_eq!(t.within_week, 2);
        assert!((t.frac_within_day() - 1.0 / 3.0).abs() < 1e-9);
        assert!((t.frac_within_week() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let filters = FilterSchedule::paper();
        let panel = timeline_panel(
            std::iter::empty(),
            Network::Instagram,
            FilterEra::PostFilter,
            &filters,
        );
        assert_eq!(panel.total_accounts, 0);
        assert_eq!(panel.changed_fraction(), 0.0);
        let t = reaction_timing(std::iter::empty());
        assert_eq!(t.frac_within_day(), 0.0);
    }
}
