//! Account status changes (paper Table 10 and §6.2.2).
//!
//! For every monitored account: did it end the measurement more private,
//! more public, or change at all? Accounts are bucketed by network and —
//! for Facebook and Instagram, whose abuse filters deployed between the
//! collection periods — by filter era. The Instagram random-sample control
//! row comes from the same computation over control histories.

use crate::monitor::AccountHistory;
use dox_osn::filters::{FilterEra, FilterSchedule};
use dox_osn::network::Network;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One Table 10 row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StatusChangeRow {
    /// Accounts ending more private than they started.
    pub more_private: usize,
    /// Accounts ending more public.
    pub more_public: usize,
    /// Accounts with any observed change.
    pub any_change: usize,
    /// Accounts in the bucket.
    pub total: usize,
}

impl StatusChangeRow {
    /// Fraction helpers.
    pub fn frac_more_private(&self) -> f64 {
        frac(self.more_private, self.total)
    }

    /// Fraction ending more public.
    pub fn frac_more_public(&self) -> f64 {
        frac(self.more_public, self.total)
    }

    /// Fraction with any change.
    pub fn frac_any_change(&self) -> f64 {
        frac(self.any_change, self.total)
    }

    /// Fold one history into the row.
    pub fn add(&mut self, h: &AccountHistory) {
        self.total += 1;
        if let Some((first, last)) = h.endpoints() {
            if last.openness() < first.openness() {
                self.more_private += 1;
            }
            if last.openness() > first.openness() {
                self.more_public += 1;
            }
        }
        if h.any_change() {
            self.any_change += 1;
        }
    }
}

fn frac(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Bucket key: network plus era (`None` for networks reported without an
/// era split — Twitter, YouTube, Google+, Twitch).
pub type Bucket = (Network, Option<FilterEra>);

/// The full Table 10 (minus the control row, added by the caller).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatusChangeTable {
    /// Rows per bucket.
    pub rows: BTreeMap<String, StatusChangeRow>,
}

/// Human-readable bucket label, matching Table 10's row names.
pub fn bucket_label(network: Network, era: Option<FilterEra>) -> String {
    match era {
        Some(FilterEra::PreFilter) => format!("{} Doxed (pre filter)", network.name()),
        Some(FilterEra::PostFilter) => format!("{} Doxed (post filter)", network.name()),
        None => format!("{} Doxed", network.name()),
    }
}

/// Compute Table 10's doxed rows from monitor histories.
///
/// Facebook and Instagram split by the era in force when the account was
/// first observed; the other networks report a single row.
pub fn status_change_table(
    histories: impl Iterator<Item = impl std::borrow::Borrow<AccountHistory>>,
    filters: &FilterSchedule,
) -> StatusChangeTable {
    let mut table = StatusChangeTable::default();
    for h in histories {
        let h = h.borrow();
        let network = h.account.network;
        let era = match network {
            Network::Facebook | Network::Instagram => Some(filters.era(network, h.first_observed)),
            _ => None,
        };
        let label = bucket_label(network, era);
        table.rows.entry(label).or_default().add(h);
    }
    table
}

/// §6.2.2's headline ratios: how much more likely doxed accounts are to
/// change than control accounts. Returns `(any_change_ratio,
/// more_private_ratio)` as multiples (the paper reports 920 % and
/// 11,700 % — i.e. ≈ 9.2× and ≈ 117×... expressed as percentage increases
/// over a small base; we report the raw ratio).
pub fn doxed_vs_control_ratios(doxed: &StatusChangeRow, control: &StatusChangeRow) -> (f64, f64) {
    let any = safe_ratio(doxed.frac_any_change(), control.frac_any_change());
    let private = safe_ratio(doxed.frac_more_private(), control.frac_more_private());
    (any, private)
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::INFINITY
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_osn::account::{AccountId, AccountStatus};
    use dox_osn::clock::SimTime;
    use dox_osn::scraper::Observation;

    fn history(
        network: Network,
        uid: u64,
        observed_day: u64,
        statuses: &[AccountStatus],
    ) -> AccountHistory {
        let account = AccountId { network, uid };
        AccountHistory {
            account,
            first_observed: SimTime::from_days(observed_day),
            observations: statuses
                .iter()
                .enumerate()
                .map(|(i, &s)| Observation {
                    account,
                    at: SimTime::from_days(observed_day + i as u64),
                    status: s,
                })
                .collect(),
        }
    }

    use AccountStatus::{Inactive, Private, Public};

    #[test]
    fn row_classification() {
        let mut row = StatusChangeRow::default();
        row.add(&history(Network::Twitter, 1, 0, &[Public, Private]));
        row.add(&history(Network::Twitter, 2, 0, &[Private, Public]));
        row.add(&history(Network::Twitter, 3, 0, &[Public, Private, Public]));
        row.add(&history(Network::Twitter, 4, 0, &[Public, Public]));
        assert_eq!(row.total, 4);
        assert_eq!(row.more_private, 1);
        assert_eq!(row.more_public, 1);
        assert_eq!(row.any_change, 3, "transient counts as any-change");
        assert!((row.frac_any_change() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn inactive_end_state_is_more_private() {
        let mut row = StatusChangeRow::default();
        row.add(&history(Network::Facebook, 1, 0, &[Private, Inactive]));
        assert_eq!(row.more_private, 1);
    }

    #[test]
    fn era_split_for_facebook_and_instagram_only() {
        let filters = FilterSchedule::paper();
        let histories = [
            history(Network::Facebook, 1, 5, &[Public, Public]), // pre (day 5 < 22)
            history(Network::Facebook, 2, 160, &[Public, Public]), // post
            history(Network::Instagram, 3, 5, &[Public, Public]),
            history(Network::Twitter, 4, 5, &[Public, Public]),
            history(Network::Twitter, 5, 160, &[Public, Public]),
        ];
        let t = status_change_table(histories.iter(), &filters);
        assert_eq!(t.rows["Facebook Doxed (pre filter)"].total, 1);
        assert_eq!(t.rows["Facebook Doxed (post filter)"].total, 1);
        assert_eq!(t.rows["Instagram Doxed (pre filter)"].total, 1);
        assert_eq!(t.rows["Twitter Doxed"].total, 2, "no era split for Twitter");
    }

    #[test]
    fn ratios_match_hand_computation() {
        let doxed = StatusChangeRow {
            more_private: 17,
            more_public: 8,
            any_change: 32,
            total: 100,
        };
        let control = StatusChangeRow {
            more_private: 1,
            more_public: 1,
            any_change: 2,
            total: 1000,
        };
        let (any, private) = doxed_vs_control_ratios(&doxed, &control);
        assert!((any - 160.0).abs() < 1e-9); // 0.32 / 0.002
        assert!((private - 170.0).abs() < 1e-9); // 0.17 / 0.001
    }

    #[test]
    fn zero_control_gives_infinite_ratio() {
        let doxed = StatusChangeRow {
            more_private: 1,
            more_public: 0,
            any_change: 1,
            total: 10,
        };
        let control = StatusChangeRow {
            total: 10,
            ..StatusChangeRow::default()
        };
        let (any, private) = doxed_vs_control_ratios(&doxed, &control);
        assert!(any.is_infinite());
        assert!(private.is_infinite());
    }

    #[test]
    fn empty_history_is_counted_but_unchanged() {
        let mut row = StatusChangeRow::default();
        row.add(&AccountHistory {
            account: AccountId {
                network: Network::Twitter,
                uid: 9,
            },
            first_observed: SimTime::EPOCH,
            observations: vec![],
        });
        assert_eq!(row.total, 1);
        assert_eq!(row.any_change, 0);
    }
}
