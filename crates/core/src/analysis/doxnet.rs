//! Doxer network analysis (paper Figure 2).
//!
//! Nodes are the doxer aliases mentioned in dox "credits"; undirected
//! edges connect aliases credited together on a dox or following each
//! other on Twitter. The paper reports 251 credited doxers (213 with
//! Twitter handles), with the cliques of size ≥ 4 spanning 61 doxers and
//! the largest clique containing 11.
//!
//! Maximal cliques come from Bron–Kerbosch with pivoting — exact, and fast
//! at this graph size.

use crate::pipeline::DetectedDox;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// An undirected graph over doxer aliases.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DoxerGraph {
    /// Alias per node index.
    pub aliases: Vec<String>,
    /// Twitter handle per node, when one was seen in credits.
    pub twitter: Vec<Option<String>>,
    /// Adjacency sets (indices into `aliases`).
    pub adj: Vec<BTreeSet<usize>>,
}

impl DoxerGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.aliases.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.aliases.is_empty()
    }

    /// Node index for `alias`, inserting if new.
    fn node(&mut self, alias: &str, index: &mut BTreeMap<String, usize>) -> usize {
        let key = alias.to_lowercase();
        if let Some(&i) = index.get(&key) {
            return i;
        }
        let i = self.aliases.len();
        index.insert(key, i);
        self.aliases.push(alias.to_string());
        self.twitter.push(None);
        self.adj.push(BTreeSet::new());
        i
    }

    fn connect(&mut self, a: usize, b: usize) {
        if a != b {
            self.adj[a].insert(b);
            self.adj[b].insert(a);
        }
    }

    /// Doxers with a Twitter handle.
    pub fn with_twitter(&self) -> usize {
        self.twitter.iter().filter(|t| t.is_some()).count()
    }
}

/// Build the Figure 2 graph from detected doxes plus a Twitter-follow
/// oracle (the stand-in for the paper's Twitter API queries): given two
/// Twitter handles, does each follow the other?
pub fn build_graph(
    detected: &[DetectedDox],
    mutual_follow: &dyn Fn(&str, &str) -> bool,
) -> DoxerGraph {
    let mut g = DoxerGraph::default();
    let mut index = BTreeMap::new();
    // Pass 1: nodes and co-credit edges.
    for d in detected {
        let ids: Vec<usize> = d
            .extracted
            .credits
            .iter()
            .map(|c| {
                let i = g.node(&c.alias, &mut index);
                if g.twitter[i].is_none() {
                    g.twitter[i] = c.twitter.clone();
                }
                i
            })
            .collect();
        for (k, &a) in ids.iter().enumerate() {
            for &b in &ids[k + 1..] {
                g.connect(a, b);
            }
        }
    }
    // Pass 2: Twitter mutual-follow edges among credited doxers.
    let handles: Vec<(usize, String)> = g
        .twitter
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.clone().map(|h| (i, h)))
        .collect();
    for (k, (a, ha)) in handles.iter().enumerate() {
        for (b, hb) in &handles[k + 1..] {
            if mutual_follow(ha, hb) {
                g.connect(*a, *b);
            }
        }
    }
    g
}

/// All maximal cliques (Bron–Kerbosch with pivoting).
pub fn maximal_cliques(g: &DoxerGraph) -> Vec<Vec<usize>> {
    let mut cliques = Vec::new();
    let mut r = Vec::new();
    let p: BTreeSet<usize> = (0..g.len()).collect();
    let x = BTreeSet::new();
    bron_kerbosch(g, &mut r, p, x, &mut cliques);
    cliques
}

fn bron_kerbosch(
    g: &DoxerGraph,
    r: &mut Vec<usize>,
    mut p: BTreeSet<usize>,
    mut x: BTreeSet<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_empty() && x.is_empty() {
        if !r.is_empty() {
            out.push(r.clone());
        }
        return;
    }
    // Pivot: the vertex of P ∪ X with the most neighbours in P. The
    // emptiness guard above makes this `Some`; an empty union simply ends
    // the branch.
    let Some(pivot) = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| g.adj[u].intersection(&p).count())
    else {
        return;
    };
    let candidates: Vec<usize> = p.difference(&g.adj[pivot]).copied().collect();
    for v in candidates {
        r.push(v);
        let p_next: BTreeSet<usize> = p.intersection(&g.adj[v]).copied().collect();
        let x_next: BTreeSet<usize> = x.intersection(&g.adj[v]).copied().collect();
        bron_kerbosch(g, r, p_next, x_next, out);
        r.pop();
        p.remove(&v);
        x.insert(v);
    }
}

/// The Figure 2 summary statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DoxerNetworkSummary {
    /// Credited doxer aliases (the paper's 251).
    pub total_doxers: usize,
    /// Doxers with Twitter handles (213).
    pub with_twitter: usize,
    /// Doxers covered by some clique of size ≥ 4 (61).
    pub in_big_cliques: usize,
    /// The largest clique size (11).
    pub max_clique: usize,
    /// Count of maximal cliques of size ≥ 4.
    pub big_clique_count: usize,
}

/// Summarize a graph the way Figure 2's caption does.
pub fn summarize(g: &DoxerGraph) -> DoxerNetworkSummary {
    let cliques = maximal_cliques(g);
    let mut covered: BTreeSet<usize> = BTreeSet::new();
    let mut max_clique = 0;
    let mut big = 0;
    for c in &cliques {
        max_clique = max_clique.max(c.len());
        if c.len() >= 4 {
            big += 1;
            covered.extend(c.iter().copied());
        }
    }
    DoxerNetworkSummary {
        total_doxers: g.len(),
        with_twitter: g.with_twitter(),
        in_big_cliques: covered.len(),
        max_clique,
        big_clique_count: big,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_osn::clock::SimTime;
    use dox_synth::corpus::Source;

    fn detected(text: &str) -> DetectedDox {
        DetectedDox {
            doc_id: 0,
            source: Source::Pastebin,
            period: 1,
            posted_at: SimTime::EPOCH,
            observed_at: SimTime::EPOCH,
            text: text.to_string(),
            extracted: dox_extract::record::extract(text),
            duplicate: None,
            truth: None,
        }
    }

    #[test]
    fn co_credits_form_edges() {
        let docs = vec![
            detected("dropped by AliceX1 and BobY2"),
            detected("dropped by BobY2 and CarolZ3"),
        ];
        let g = build_graph(&docs, &|_, _| false);
        assert_eq!(g.len(), 3);
        let bob = g.aliases.iter().position(|a| a == "BobY2").unwrap();
        assert_eq!(g.adj[bob].len(), 2);
        let alice = g.aliases.iter().position(|a| a == "AliceX1").unwrap();
        let carol = g.aliases.iter().position(|a| a == "CarolZ3").unwrap();
        assert!(!g.adj[alice].contains(&carol), "no transitive edge");
    }

    #[test]
    fn twitter_follows_add_edges() {
        let docs = vec![
            detected("dropped by @alice_tw"),
            detected("dropped by @bob_tw"),
        ];
        let g = build_graph(&docs, &|a, b| {
            (a == "alice_tw" && b == "bob_tw") || (a == "bob_tw" && b == "alice_tw")
        });
        assert_eq!(g.len(), 2);
        assert_eq!(g.with_twitter(), 2);
        assert!(g.adj[0].contains(&1));
    }

    #[test]
    fn bron_kerbosch_finds_known_cliques() {
        // Triangle 0-1-2 plus pendant 3 attached to 2.
        let mut g = DoxerGraph::default();
        let mut index = BTreeMap::new();
        for name in ["a0", "b1", "c2", "d3"] {
            g.node(name, &mut index);
        }
        g.connect(0, 1);
        g.connect(1, 2);
        g.connect(0, 2);
        g.connect(2, 3);
        let mut cliques = maximal_cliques(&g);
        for c in &mut cliques {
            c.sort_unstable();
        }
        cliques.sort();
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
    }

    #[test]
    fn summary_counts_big_clique_coverage() {
        // K4 on 0..4 plus an isolated pair.
        let mut g = DoxerGraph::default();
        let mut index = BTreeMap::new();
        for i in 0..6 {
            g.node(&format!("d{i}"), &mut index);
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.connect(a, b);
            }
        }
        g.connect(4, 5);
        let s = summarize(&g);
        assert_eq!(s.total_doxers, 6);
        assert_eq!(s.max_clique, 4);
        assert_eq!(s.in_big_cliques, 4);
        assert_eq!(s.big_clique_count, 1);
    }

    #[test]
    fn isolated_nodes_are_their_own_cliques() {
        let mut g = DoxerGraph::default();
        let mut index = BTreeMap::new();
        g.node("solo1", &mut index);
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques, vec![vec![0]]);
        let s = summarize(&g);
        assert_eq!(s.max_clique, 1);
        assert_eq!(s.in_big_cliques, 0);
    }

    #[test]
    fn aliases_case_insensitive_dedup() {
        let docs = vec![
            detected("dropped by GhostWolf_1"),
            detected("dropped by ghostwolf_1"),
        ];
        let g = build_graph(&docs, &|_, _| false);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = build_graph(&[], &|_, _| false);
        assert!(g.is_empty());
        assert!(maximal_cliques(&g).is_empty());
        let s = summarize(&g);
        assert_eq!(s.total_doxers, 0);
    }
}
