//! The five-stage measurement pipeline (paper Figure 1) — the sequential
//! reference implementation.
//!
//! [`Pipeline`] consumes the collection stream one document at a time:
//! HTML conversion for chan posts, TF-IDF + SGD classification, extraction
//! of accounts/fields/credits for classified doxes, then streaming
//! de-duplication. Everything needed by the downstream analyses is
//! accumulated in the pipeline state: detected doxes with their extraction
//! records, per-stage counters, and the dox-labeled document ids (for the
//! Table 3 deletion survey).
//!
//! Production runs go through the streaming
//! [`Engine`](dox_engine::Engine) instead; this type remains the
//! executable specification the engine's determinism suite compares
//! against, byte for byte. The shared data model ([`DetectedDox`],
//! [`PipelineCounters`], [`PipelineOutput`]) lives in `dox-engine` and is
//! re-exported here so existing `dox_core::pipeline::*` paths keep
//! working.

use crate::training::DoxClassifier;
use dox_engine::dedup::{Deduplicator, DuplicateKind};
use dox_engine::stage::{classify_and_extract, StageLocal, StageMetrics};
use dox_obs::{Counter, Registry};
use dox_sites::collect::CollectedDoc;
use std::time::Instant;

pub use dox_engine::output::{DetectedDox, PipelineCounters, PipelineOutput, StagedDoc};

/// The funnel counters the reference pipeline maintains on top of the
/// pure stage metrics.
#[derive(Clone)]
struct FunnelMetrics {
    collected: Counter,
    classified_dox: Counter,
    duplicates: Counter,
    unique: Counter,
    dedup_ns: dox_obs::Histogram,
}

impl FunnelMetrics {
    fn resolve(registry: &Registry) -> Self {
        Self {
            collected: registry.counter("pipeline.funnel.collected"),
            classified_dox: registry.counter("pipeline.funnel.classified_dox"),
            duplicates: registry.counter("pipeline.funnel.duplicates"),
            unique: registry.counter("pipeline.funnel.unique"),
            dedup_ns: registry.histogram("pipeline.stage.dedup"),
        }
    }
}

/// The streaming pipeline (sequential reference implementation).
pub struct Pipeline {
    classifier: DoxClassifier,
    dedup: Deduplicator,
    output: PipelineOutput,
    stages: StageMetrics,
    funnel: FunnelMetrics,
}

impl Pipeline {
    /// Build a pipeline around a trained classifier, instrumented against
    /// the process-global metrics registry.
    pub fn new(classifier: DoxClassifier) -> Self {
        Self::with_registry(classifier, dox_obs::global())
    }

    /// Build a pipeline recording its stage spans and funnel counters
    /// into `registry` instead of the process-global one.
    pub fn with_registry(classifier: DoxClassifier, registry: &Registry) -> Self {
        Self {
            classifier,
            dedup: Deduplicator::new(),
            output: PipelineOutput::default(),
            stages: StageMetrics::resolve(registry),
            funnel: FunnelMetrics::resolve(registry),
        }
    }

    /// Process one collected document from period `period`.
    pub fn process(&mut self, collected: &CollectedDoc, period: u8) {
        let mut timings = StageLocal::default();
        let stage = classify_and_extract(&self.classifier, collected, &mut timings);
        timings.merge_into(&self.stages);
        self.reduce(collected, period, stage);
    }

    /// Process a batch with the pure per-document work (HTML conversion,
    /// vectorize + classify, extraction) fanned out over `threads` OS
    /// threads. The stateful stages (counters, de-duplication) are applied
    /// in batch order afterwards, so the result is **bit-identical** to
    /// calling [`Pipeline::process`] sequentially.
    pub fn process_batch(&mut self, batch: &[CollectedDoc], period: u8, threads: usize) {
        if batch.is_empty() {
            return;
        }
        let threads = threads.clamp(1, batch.len());
        if threads == 1 {
            for collected in batch {
                self.process(collected, period);
            }
            return;
        }
        let classifier = &self.classifier;
        let chunk = batch.len().div_ceil(threads);
        let mut staged: Vec<Vec<StagedDoc>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        // Each worker times its stages locally; locals are
                        // merged after the join so the hot loop stays free
                        // of shared atomic traffic.
                        let mut timings = StageLocal::default();
                        let staged = slice
                            .iter()
                            .map(|c| classify_and_extract(classifier, c, &mut timings))
                            .collect::<Vec<_>>();
                        (staged, timings)
                    })
                })
                .collect();
            for h in handles {
                // dox-lint:allow(panic-hygiene) scoped-worker panics have nowhere sound to go but up
                let (chunk_staged, mut timings) = h.join().expect("pipeline worker panicked");
                timings.merge_into(&self.stages);
                staged.push(chunk_staged);
            }
        });
        for (collected, stage) in batch.iter().zip(staged.into_iter().flatten()) {
            self.reduce(collected, period, stage);
        }
    }

    /// Apply the stateful stages for one staged document.
    fn reduce(&mut self, collected: &CollectedDoc, period: u8, stage: StagedDoc) {
        let doc = &collected.doc;
        let counters = &mut self.output.counters;
        counters.total += 1;
        self.funnel.collected.inc();
        counters.per_period[usize::from(period - 1)] += 1;
        *counters
            .per_source
            .entry(doc.source.name().to_string())
            .or_insert(0) += 1;

        let Some((text, extracted)) = stage else {
            return;
        };
        counters.classified_dox += 1;
        self.funnel.classified_dox.inc();
        counters.dox_per_period[usize::from(period - 1)] += 1;
        self.output.dox_ids.insert(doc.id);

        // dox-lint:allow(determinism) dedup latency histogram; observation only
        let dedup_start = Instant::now();
        let duplicate = self.dedup.check(doc.id, &text, &extracted);
        self.funnel.dedup_ns.observe_duration(dedup_start.elapsed());
        if let Some((kind, _)) = duplicate {
            counters.duplicates_per_period[usize::from(period - 1)] += 1;
            self.funnel.duplicates.inc();
            match kind {
                DuplicateKind::ExactBody => counters.exact_duplicates += 1,
                DuplicateKind::AccountSet => counters.account_set_duplicates += 1,
                DuplicateKind::Fuzzy => {}
            }
        } else {
            self.funnel.unique.inc();
        }

        self.output.detected.push(DetectedDox {
            doc_id: doc.id,
            source: doc.source,
            period,
            posted_at: doc.posted_at,
            observed_at: collected.collected_at,
            text,
            extracted,
            duplicate,
            truth: doc.truth.as_dox().map(|t| Box::new(t.clone())),
        });
    }

    /// Every detected dox, posting order.
    pub fn detected(&self) -> &[DetectedDox] {
        self.output.detected()
    }

    /// Detected doxes that survived de-duplication.
    pub fn unique_doxes(&self) -> impl Iterator<Item = &DetectedDox> {
        self.output.unique_doxes()
    }

    /// Whether the pipeline labeled document `id` a dox (Table 3 survey).
    pub fn labeled_dox(&self, id: u64) -> bool {
        self.output.labeled_dox(id)
    }

    /// Stage counters.
    pub fn counters(&self) -> &PipelineCounters {
        self.output.counters()
    }

    /// Ground-truth confusion counts over everything processed so far:
    /// `(true_pos, false_pos, false_neg)` — true negatives are
    /// `total − the rest`. Needs the caller to track false negatives, so
    /// this only reports what the pipeline can see (tp, fp).
    pub fn detection_quality(&self) -> (u64, u64) {
        self.output.detection_quality()
    }

    /// The trained classifier (model inspection, examples).
    pub fn classifier(&self) -> &DoxClassifier {
        &self.classifier
    }

    /// Consume the pipeline, yielding the accumulated output in the same
    /// shape the streaming engine produces (the determinism suite
    /// compares the two byte for byte).
    pub fn into_output(self) -> PipelineOutput {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_geo::alloc::{AllocConfig, Allocation};
    use dox_geo::model::{World, WorldConfig};
    use dox_sites::collect::Collector;
    use dox_synth::config::SynthConfig;
    use dox_synth::corpus::CorpusGenerator;
    use std::ops::ControlFlow;

    fn run_pipeline() -> Pipeline {
        let world = World::generate(&WorldConfig::default(), 71);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 71);
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let (texts, labels) = gen.training_sets();
        let (clf, _) = DoxClassifier::train(&texts, &labels, 71);
        let mut pipeline = Pipeline::new(clf);
        let mut collector = Collector::new(71);
        for period in [1u8, 2] {
            let _ = collector.collect_period(&mut gen, period, &mut |c| {
                pipeline.process(&c, period);
                ControlFlow::Continue(())
            });
        }
        pipeline
    }

    #[test]
    fn counters_track_the_stream() {
        let p = run_pipeline();
        let cfg = SynthConfig::test_scale();
        assert_eq!(p.counters().total, cfg.total_documents());
        assert_eq!(p.counters().per_period[0], cfg.period1.total());
        assert!(p.counters().classified_dox > 0);
        assert_eq!(
            p.counters().classified_dox,
            p.counters().dox_per_period.iter().sum::<u64>()
        );
    }

    #[test]
    fn detection_quality_is_high_on_synthetic_corpus() {
        let p = run_pipeline();
        let (tp, fp) = p.detection_quality();
        assert!(tp > 0);
        // Most detections are true doxes (paper: precision 0.81).
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        assert!(precision > 0.6, "precision {precision}");
        // Most true doxes are detected (paper: recall 0.89).
        let truth_doxes = SynthConfig::test_scale().total_doxes();
        let recall = tp as f64 / truth_doxes as f64;
        assert!(recall > 0.6, "recall {recall}");
    }

    #[test]
    fn chan_html_is_converted_before_classification() {
        let p = run_pipeline();
        for d in p.detected() {
            assert!(
                !d.text.contains("<br>"),
                "HTML leaked into pipeline text for doc {}",
                d.doc_id
            );
        }
    }

    #[test]
    fn duplicates_marked_and_counted() {
        let p = run_pipeline();
        let marked = p
            .detected()
            .iter()
            .filter(|d| d.duplicate.is_some())
            .count() as u64;
        let counted = p.counters().exact_duplicates + p.counters().account_set_duplicates;
        assert_eq!(marked, counted);
        assert_eq!(
            p.unique_doxes().count() as u64,
            p.counters().classified_dox - marked
        );
    }

    #[test]
    fn parallel_batches_match_sequential_exactly() {
        let world = World::generate(&WorldConfig::default(), 72);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 72);
        let cfg = SynthConfig::test_scale();
        let mk = || {
            let mut gen = CorpusGenerator::new(&world, &alloc, cfg.clone());
            let (texts, labels) = gen.training_sets();
            let (clf, _) = DoxClassifier::train(&texts, &labels, 72);
            (gen, Pipeline::new(clf))
        };
        // Sequential reference.
        let (mut gen_a, mut seq) = mk();
        let mut collector_a = Collector::new(72);
        for period in [1u8, 2] {
            let _ = collector_a.collect_period(&mut gen_a, period, &mut |c| {
                seq.process(&c, period);
                ControlFlow::Continue(())
            });
        }
        // Parallel over 4 threads, batched per period.
        let (mut gen_b, mut par) = mk();
        let mut collector_b = Collector::new(72);
        for period in [1u8, 2] {
            let mut batch = Vec::new();
            let _ = collector_b.collect_period(&mut gen_b, period, &mut |c| {
                batch.push(c);
                ControlFlow::Continue(())
            });
            par.process_batch(&batch, period, 4);
        }
        assert_eq!(seq.counters(), par.counters());
        assert_eq!(seq.detected().len(), par.detected().len());
        for (a, b) in seq.detected().iter().zip(par.detected()) {
            assert_eq!(a.doc_id, b.doc_id);
            assert_eq!(a.text, b.text);
            assert_eq!(a.extracted, b.extracted);
            assert_eq!(a.duplicate, b.duplicate);
        }
    }

    #[test]
    fn empty_and_single_thread_batches() {
        let p = run_pipeline();
        // process_batch with an empty batch is a no-op (verified by the
        // counters staying put on a finished pipeline).
        let before = p.counters().clone();
        let mut p = p;
        p.process_batch(&[], 1, 8);
        assert_eq!(*p.counters(), before);
    }

    #[test]
    fn metrics_registry_mirrors_funnel_counters() {
        let registry = dox_obs::Registry::new();
        let world = World::generate(&WorldConfig::default(), 71);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 71);
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let (texts, labels) = gen.training_sets();
        let (clf, _) = DoxClassifier::train(&texts, &labels, 71);
        let mut pipeline = Pipeline::with_registry(clf, &registry);
        let mut collector = Collector::new(71);
        for period in [1u8, 2] {
            let mut batch = Vec::new();
            let _ = collector.collect_period(&mut gen, period, &mut |c| {
                batch.push(c);
                ControlFlow::Continue(())
            });
            pipeline.process_batch(&batch, period, 4);
        }
        let c = pipeline.counters();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["pipeline.funnel.collected"], c.total);
        assert_eq!(
            snap.counters["pipeline.funnel.classified_dox"],
            c.classified_dox
        );
        assert_eq!(snap.counters["pipeline.funnel.unique"], c.unique_doxes());
        assert_eq!(
            snap.counters["pipeline.funnel.classified_dox"]
                - snap.counters["pipeline.funnel.duplicates"],
            c.unique_doxes()
        );
        // Every classified dox passed through classify, extract and dedup
        // spans; every document through classify.
        assert_eq!(snap.spans["pipeline.stage.classify"].count, c.total);
        assert_eq!(snap.spans["pipeline.stage.extract"].count, c.classified_dox);
        assert_eq!(snap.spans["pipeline.stage.dedup"].count, c.classified_dox);
        assert!(snap.spans["pipeline.stage.html_convert"].count > 0);
        assert!(snap.spans["pipeline.stage.classify"].sum > 0);
    }

    #[test]
    fn dox_id_lookup_consistent() {
        let p = run_pipeline();
        for d in p.detected() {
            assert!(p.labeled_dox(d.doc_id));
        }
        assert!(!p.labeled_dox(u64::MAX));
    }
}
