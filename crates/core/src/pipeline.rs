//! The five-stage measurement pipeline (paper Figure 1).
//!
//! [`Pipeline`] consumes the collection stream one document at a time:
//! HTML conversion for chan posts, TF-IDF + SGD classification, extraction
//! of accounts/fields/credits for classified doxes, then streaming
//! de-duplication. Everything needed by the downstream analyses is
//! accumulated in the pipeline state: detected doxes with their extraction
//! records, per-stage counters, and the dox-labeled document ids (for the
//! Table 3 deletion survey).

use crate::dedup::{Deduplicator, DuplicateKind};
use crate::training::DoxClassifier;
use dox_extract::record::{extract, ExtractedDox};
use dox_obs::{Counter, Histogram, LocalHistogram, Registry};
use dox_osn::clock::SimTime;
use dox_sites::collect::CollectedDoc;
use dox_synth::corpus::Source;
use dox_synth::truth::DoxTruth;
use dox_textkit::html::html_to_text;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::time::Instant;

/// A document the classifier flagged as a dox.
#[derive(Debug, Clone)]
pub struct DetectedDox {
    /// Document id from the stream.
    pub doc_id: u64,
    /// Source site.
    pub source: Source,
    /// Collection period (1 or 2).
    pub period: u8,
    /// Posting time.
    pub posted_at: SimTime,
    /// When the collector saw it (monitoring starts here).
    pub observed_at: SimTime,
    /// Plain-text body (after HTML conversion).
    pub text: String,
    /// Extraction record.
    pub extracted: ExtractedDox,
    /// De-duplication verdict; `None` means this is the first dox of its
    /// victim.
    pub duplicate: Option<(DuplicateKind, u64)>,
    /// Ground truth when the document really is a dox (false positives
    /// carry `None`). Used only by evaluation, never by inference.
    pub truth: Option<Box<DoxTruth>>,
}

/// Per-stage counters — the numbers on the Figure 1 funnel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineCounters {
    /// Documents processed per source.
    pub per_source: BTreeMap<String, u64>,
    /// Documents processed per period: `[period1, period2]`.
    pub per_period: [u64; 2],
    /// Classified as dox per period.
    pub dox_per_period: [u64; 2],
    /// Duplicates removed per period.
    pub duplicates_per_period: [u64; 2],
    /// Total documents.
    pub total: u64,
    /// Total classified as dox.
    pub classified_dox: u64,
    /// Exact-body duplicates.
    pub exact_duplicates: u64,
    /// Account-set duplicates.
    pub account_set_duplicates: u64,
}

impl PipelineCounters {
    /// Unique doxes after dedup. Saturates at zero: counters assembled
    /// from partial or merged streams can carry more recorded duplicates
    /// than classified doxes, and a funnel count must never wrap.
    pub fn unique_doxes(&self) -> u64 {
        self.classified_dox
            .saturating_sub(self.exact_duplicates)
            .saturating_sub(self.account_set_duplicates)
    }

    /// Unique doxes in one period (saturating, like [`Self::unique_doxes`]).
    pub fn unique_in_period(&self, which: u8) -> u64 {
        let i = usize::from(which - 1);
        self.dox_per_period[i].saturating_sub(self.duplicates_per_period[i])
    }
}

/// Pre-resolved metric handles for the pipeline's four instrumented
/// stages (Figure 1 funnel) — resolved once so the per-document hot path
/// is a handful of relaxed atomic ops.
#[derive(Clone)]
struct PipelineMetrics {
    /// Documents entering the funnel.
    collected: Counter,
    /// Documents that went through HTML→text conversion.
    html_converted: Counter,
    /// Documents the classifier flagged as doxes.
    classified_dox: Counter,
    /// Doxes marked as duplicates by dedup.
    duplicates: Counter,
    /// Doxes surviving dedup.
    unique: Counter,
    /// Per-document stage durations, nanoseconds.
    html_convert_ns: Histogram,
    classify_ns: Histogram,
    extract_ns: Histogram,
    dedup_ns: Histogram,
}

impl PipelineMetrics {
    fn resolve(registry: &Registry) -> Self {
        Self {
            collected: registry.counter("pipeline.funnel.collected"),
            html_converted: registry.counter("pipeline.funnel.html_converted"),
            classified_dox: registry.counter("pipeline.funnel.classified_dox"),
            duplicates: registry.counter("pipeline.funnel.duplicates"),
            unique: registry.counter("pipeline.funnel.unique"),
            html_convert_ns: registry.histogram("pipeline.stage.html_convert"),
            classify_ns: registry.histogram("pipeline.stage.classify"),
            extract_ns: registry.histogram("pipeline.stage.extract"),
            dedup_ns: registry.histogram("pipeline.stage.dedup"),
        }
    }
}

/// Per-worker stage timings: workers accumulate locally and merge once
/// per chunk, so the parallel classify fan-out adds no atomic contention.
#[derive(Default)]
struct StageLocal {
    html_convert: LocalHistogram,
    classify: LocalHistogram,
    extract: LocalHistogram,
    html_converted: u64,
}

impl StageLocal {
    fn merge_into(&mut self, metrics: &PipelineMetrics) {
        self.html_convert.merge_into(&metrics.html_convert_ns);
        self.classify.merge_into(&metrics.classify_ns);
        self.extract.merge_into(&metrics.extract_ns);
        metrics.html_converted.add(self.html_converted);
        self.html_converted = 0;
    }
}

/// The outcome of the pure per-document stage: `None` when the classifier
/// rejects the document, else the plain text plus its extraction record.
type StagedDoc = Option<(String, ExtractedDox)>;

/// The pure (parallelizable) per-document work: HTML conversion,
/// classification, and — for classified doxes — extraction. Stage timings
/// land in `timings`; they observe the work without affecting the result.
fn classify_and_extract(
    classifier: &DoxClassifier,
    collected: &CollectedDoc,
    timings: &mut StageLocal,
) -> StagedDoc {
    let doc = &collected.doc;
    let text = if doc.source.is_html() {
        let start = Instant::now();
        let text = html_to_text(&doc.body);
        timings.html_convert.record_duration(start.elapsed());
        timings.html_converted += 1;
        text
    } else {
        doc.body.clone()
    };
    let start = Instant::now();
    let is_dox = classifier.is_dox(&text);
    timings.classify.record_duration(start.elapsed());
    if !is_dox {
        return None;
    }
    let start = Instant::now();
    let extracted = extract(&text);
    timings.extract.record_duration(start.elapsed());
    Some((text, extracted))
}

/// The streaming pipeline.
pub struct Pipeline {
    classifier: DoxClassifier,
    dedup: Deduplicator,
    detected: Vec<DetectedDox>,
    dox_ids: HashSet<u64>,
    counters: PipelineCounters,
    metrics: PipelineMetrics,
}

impl Pipeline {
    /// Build a pipeline around a trained classifier, instrumented against
    /// the process-global metrics registry.
    pub fn new(classifier: DoxClassifier) -> Self {
        Self::with_registry(classifier, dox_obs::global())
    }

    /// Build a pipeline recording its stage spans and funnel counters
    /// into `registry` instead of the process-global one.
    pub fn with_registry(classifier: DoxClassifier, registry: &Registry) -> Self {
        Self {
            classifier,
            dedup: Deduplicator::new(),
            detected: Vec::new(),
            dox_ids: HashSet::new(),
            counters: PipelineCounters::default(),
            metrics: PipelineMetrics::resolve(registry),
        }
    }

    /// Process one collected document from period `period`.
    pub fn process(&mut self, collected: &CollectedDoc, period: u8) {
        let mut timings = StageLocal::default();
        let stage = classify_and_extract(&self.classifier, collected, &mut timings);
        timings.merge_into(&self.metrics);
        self.reduce(collected, period, stage);
    }

    /// Process a batch with the pure per-document work (HTML conversion,
    /// vectorize + classify, extraction) fanned out over `threads` OS
    /// threads. The stateful stages (counters, de-duplication) are applied
    /// in batch order afterwards, so the result is **bit-identical** to
    /// calling [`Pipeline::process`] sequentially.
    pub fn process_batch(&mut self, batch: &[CollectedDoc], period: u8, threads: usize) {
        if batch.is_empty() {
            return;
        }
        let threads = threads.clamp(1, batch.len());
        if threads == 1 {
            for collected in batch {
                self.process(collected, period);
            }
            return;
        }
        let classifier = &self.classifier;
        let chunk = batch.len().div_ceil(threads);
        let mut staged: Vec<Vec<StagedDoc>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        // Each worker times its stages locally; locals are
                        // merged after the join so the hot loop stays free
                        // of shared atomic traffic.
                        let mut timings = StageLocal::default();
                        let staged = slice
                            .iter()
                            .map(|c| classify_and_extract(classifier, c, &mut timings))
                            .collect::<Vec<_>>();
                        (staged, timings)
                    })
                })
                .collect();
            for h in handles {
                let (chunk_staged, mut timings) = h.join().expect("pipeline worker panicked");
                timings.merge_into(&self.metrics);
                staged.push(chunk_staged);
            }
        });
        for (collected, stage) in batch.iter().zip(staged.into_iter().flatten()) {
            self.reduce(collected, period, stage);
        }
    }

    /// Apply the stateful stages for one staged document.
    fn reduce(&mut self, collected: &CollectedDoc, period: u8, stage: StagedDoc) {
        let doc = &collected.doc;
        self.counters.total += 1;
        self.metrics.collected.inc();
        self.counters.per_period[usize::from(period - 1)] += 1;
        *self
            .counters
            .per_source
            .entry(doc.source.name().to_string())
            .or_insert(0) += 1;

        let Some((text, extracted)) = stage else {
            return;
        };
        self.counters.classified_dox += 1;
        self.metrics.classified_dox.inc();
        self.counters.dox_per_period[usize::from(period - 1)] += 1;
        self.dox_ids.insert(doc.id);

        let dedup_start = Instant::now();
        let duplicate = self.dedup.check(doc.id, &text, &extracted);
        self.metrics
            .dedup_ns
            .observe_duration(dedup_start.elapsed());
        if let Some((kind, _)) = duplicate {
            self.counters.duplicates_per_period[usize::from(period - 1)] += 1;
            self.metrics.duplicates.inc();
            match kind {
                DuplicateKind::ExactBody => self.counters.exact_duplicates += 1,
                DuplicateKind::AccountSet => self.counters.account_set_duplicates += 1,
                DuplicateKind::Fuzzy => {}
            }
        } else {
            self.metrics.unique.inc();
        }

        self.detected.push(DetectedDox {
            doc_id: doc.id,
            source: doc.source,
            period,
            posted_at: doc.posted_at,
            observed_at: collected.collected_at,
            text,
            extracted,
            duplicate,
            truth: doc.truth.as_dox().map(|t| Box::new(t.clone())),
        });
    }

    /// Every detected dox, posting order.
    pub fn detected(&self) -> &[DetectedDox] {
        &self.detected
    }

    /// Detected doxes that survived de-duplication.
    pub fn unique_doxes(&self) -> impl Iterator<Item = &DetectedDox> {
        self.detected.iter().filter(|d| d.duplicate.is_none())
    }

    /// Whether the pipeline labeled document `id` a dox (Table 3 survey).
    pub fn labeled_dox(&self, id: u64) -> bool {
        self.dox_ids.contains(&id)
    }

    /// Stage counters.
    pub fn counters(&self) -> &PipelineCounters {
        &self.counters
    }

    /// Ground-truth confusion counts over everything processed so far:
    /// `(true_pos, false_pos, false_neg)` — true negatives are
    /// `total − the rest`. Needs the caller to track false negatives, so
    /// this only reports what the pipeline can see (tp, fp).
    pub fn detection_quality(&self) -> (u64, u64) {
        let tp = self.detected.iter().filter(|d| d.truth.is_some()).count() as u64;
        let fp = self.detected.len() as u64 - tp;
        (tp, fp)
    }

    /// The trained classifier (model inspection, examples).
    pub fn classifier(&self) -> &DoxClassifier {
        &self.classifier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_geo::alloc::{AllocConfig, Allocation};
    use dox_geo::model::{World, WorldConfig};
    use dox_sites::collect::Collector;
    use dox_synth::config::SynthConfig;
    use dox_synth::corpus::CorpusGenerator;

    fn run_pipeline() -> Pipeline {
        let world = World::generate(&WorldConfig::default(), 71);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 71);
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let (texts, labels) = gen.training_sets();
        let (clf, _) = DoxClassifier::train(&texts, &labels, 71);
        let mut pipeline = Pipeline::new(clf);
        let mut collector = Collector::new(71);
        for period in [1u8, 2] {
            collector.collect_period(&mut gen, period, &mut |c| pipeline.process(&c, period));
        }
        pipeline
    }

    #[test]
    fn counters_track_the_stream() {
        let p = run_pipeline();
        let cfg = SynthConfig::test_scale();
        assert_eq!(p.counters().total, cfg.total_documents());
        assert_eq!(p.counters().per_period[0], cfg.period1.total());
        assert!(p.counters().classified_dox > 0);
        assert_eq!(
            p.counters().classified_dox,
            p.counters().dox_per_period.iter().sum::<u64>()
        );
    }

    #[test]
    fn detection_quality_is_high_on_synthetic_corpus() {
        let p = run_pipeline();
        let (tp, fp) = p.detection_quality();
        assert!(tp > 0);
        // Most detections are true doxes (paper: precision 0.81).
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        assert!(precision > 0.6, "precision {precision}");
        // Most true doxes are detected (paper: recall 0.89).
        let truth_doxes = SynthConfig::test_scale().total_doxes();
        let recall = tp as f64 / truth_doxes as f64;
        assert!(recall > 0.6, "recall {recall}");
    }

    #[test]
    fn chan_html_is_converted_before_classification() {
        let p = run_pipeline();
        for d in p.detected() {
            assert!(
                !d.text.contains("<br>"),
                "HTML leaked into pipeline text for doc {}",
                d.doc_id
            );
        }
    }

    #[test]
    fn duplicates_marked_and_counted() {
        let p = run_pipeline();
        let marked = p
            .detected()
            .iter()
            .filter(|d| d.duplicate.is_some())
            .count() as u64;
        let counted = p.counters().exact_duplicates + p.counters().account_set_duplicates;
        assert_eq!(marked, counted);
        assert_eq!(
            p.unique_doxes().count() as u64,
            p.counters().classified_dox - marked
        );
    }

    #[test]
    fn parallel_batches_match_sequential_exactly() {
        let world = World::generate(&WorldConfig::default(), 72);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 72);
        let cfg = SynthConfig::test_scale();
        let mk = || {
            let mut gen = CorpusGenerator::new(&world, &alloc, cfg.clone());
            let (texts, labels) = gen.training_sets();
            let (clf, _) = DoxClassifier::train(&texts, &labels, 72);
            (gen, Pipeline::new(clf))
        };
        // Sequential reference.
        let (mut gen_a, mut seq) = mk();
        let mut collector_a = Collector::new(72);
        for period in [1u8, 2] {
            collector_a.collect_period(&mut gen_a, period, &mut |c| seq.process(&c, period));
        }
        // Parallel over 4 threads, batched per period.
        let (mut gen_b, mut par) = mk();
        let mut collector_b = Collector::new(72);
        for period in [1u8, 2] {
            let mut batch = Vec::new();
            collector_b.collect_period(&mut gen_b, period, &mut |c| batch.push(c));
            par.process_batch(&batch, period, 4);
        }
        assert_eq!(seq.counters(), par.counters());
        assert_eq!(seq.detected().len(), par.detected().len());
        for (a, b) in seq.detected().iter().zip(par.detected()) {
            assert_eq!(a.doc_id, b.doc_id);
            assert_eq!(a.text, b.text);
            assert_eq!(a.extracted, b.extracted);
            assert_eq!(a.duplicate, b.duplicate);
        }
    }

    #[test]
    fn empty_and_single_thread_batches() {
        let p = run_pipeline();
        // process_batch with an empty batch is a no-op (verified by the
        // counters staying put on a finished pipeline).
        let before = p.counters().clone();
        let mut p = p;
        p.process_batch(&[], 1, 8);
        assert_eq!(*p.counters(), before);
    }

    #[test]
    fn unique_counts_saturate_when_duplicates_exceed_doxes() {
        // Counters merged from partial streams can record more duplicates
        // than classified doxes; the funnel arithmetic must clamp at zero
        // instead of wrapping to ~2^64.
        let c = PipelineCounters {
            classified_dox: 3,
            exact_duplicates: 2,
            account_set_duplicates: 2,
            dox_per_period: [1, 2],
            duplicates_per_period: [4, 0],
            ..PipelineCounters::default()
        };
        assert_eq!(c.unique_doxes(), 0);
        assert_eq!(c.unique_in_period(1), 0);
        assert_eq!(c.unique_in_period(2), 2);
    }

    #[test]
    fn metrics_registry_mirrors_funnel_counters() {
        let registry = dox_obs::Registry::new();
        let world = World::generate(&WorldConfig::default(), 71);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 71);
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let (texts, labels) = gen.training_sets();
        let (clf, _) = DoxClassifier::train(&texts, &labels, 71);
        let mut pipeline = Pipeline::with_registry(clf, &registry);
        let mut collector = Collector::new(71);
        for period in [1u8, 2] {
            let mut batch = Vec::new();
            collector.collect_period(&mut gen, period, &mut |c| batch.push(c));
            pipeline.process_batch(&batch, period, 4);
        }
        let c = pipeline.counters();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["pipeline.funnel.collected"], c.total);
        assert_eq!(
            snap.counters["pipeline.funnel.classified_dox"],
            c.classified_dox
        );
        assert_eq!(snap.counters["pipeline.funnel.unique"], c.unique_doxes());
        assert_eq!(
            snap.counters["pipeline.funnel.classified_dox"]
                - snap.counters["pipeline.funnel.duplicates"],
            c.unique_doxes()
        );
        // Every classified dox passed through classify, extract and dedup
        // spans; every document through classify.
        assert_eq!(snap.spans["pipeline.stage.classify"].count, c.total);
        assert_eq!(snap.spans["pipeline.stage.extract"].count, c.classified_dox);
        assert_eq!(snap.spans["pipeline.stage.dedup"].count, c.classified_dox);
        assert!(snap.spans["pipeline.stage.html_convert"].count > 0);
        assert!(snap.spans["pipeline.stage.classify"].sum > 0);
    }

    #[test]
    fn dox_id_lookup_consistent() {
        let p = run_pipeline();
        for d in p.detected() {
            assert!(p.labeled_dox(d.doc_id));
        }
        assert!(!p.labeled_dox(u64::MAX));
    }
}
