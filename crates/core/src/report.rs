//! Report rendering: every paper table and figure as ASCII text, plus
//! machine-readable JSON for EXPERIMENTS.md provenance.

use crate::analysis::status_change::StatusChangeRow;
use crate::study::ExperimentReport;
use dox_extract::accuracy::Field;
use dox_osn::network::Network;
use std::fmt::Write as _;

/// Render every table and figure in paper order.
pub fn full_report(r: &ExperimentReport) -> String {
    let mut out = String::new();
    for section in [
        figure1(r),
        table1(r),
        table2(r),
        table3(r),
        table4(r),
        table5(r),
        table6(r),
        table7(r),
        table8(r),
        table9(r),
        table10(r),
        figure2(r),
        figure3(r),
        validation_ip(r),
        validation_comments(r),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

/// Serialize the full report as pretty JSON.
pub fn to_json(r: &ExperimentReport) -> crate::error::Result<String> {
    Ok(serde_json::to_string_pretty(r)?)
}

fn header(title: &str) -> String {
    format!("==== {title} ====\n")
}

fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Figure 1: the pipeline funnel.
pub fn figure1(r: &ExperimentReport) -> String {
    let mut s = header("Figure 1 — pipeline funnel");
    s.push_str("Input documents per source:\n");
    for (source, n) in &r.pipeline.per_source {
        let _ = writeln!(s, "  {source:<14} {n}");
    }
    let _ = writeln!(s, "Total documents       : {}", r.pipeline.total);
    let _ = writeln!(s, "Classified as dox     : {}", r.pipeline.classified_dox);
    let _ = writeln!(
        s,
        "Duplicates removed    : {} ({} exact body, {} account set)",
        r.pipeline.exact_duplicates + r.pipeline.account_set_duplicates,
        r.pipeline.exact_duplicates,
        r.pipeline.account_set_duplicates
    );
    let _ = writeln!(s, "Unique doxes          : {}", r.pipeline.unique_doxes());
    s.push_str("Dox density per source (doxes per 10k documents):\n");
    for (name, d) in &r.sources.rows {
        if d.documents > 0 {
            let _ = writeln!(s, "  {name:<14} {:>8.1}", d.per_10k());
        }
    }
    s.push_str("Monitored accounts per network:\n");
    for (net, n) in &r.monitored_per_network {
        let _ = writeln!(s, "  {:<10} {n} accounts", net.name());
    }
    s
}

/// Table 1: classifier precision/recall.
pub fn table1(r: &ExperimentReport) -> String {
    let mut s = header("Table 1 — dox classifier precision/recall");
    s.push_str(&r.classifier.report.to_table());
    let _ = writeln!(
        s,
        "(training corpus: {} dox / {} not; split {}/{})",
        r.classifier.corpus_sizes.0,
        r.classifier.corpus_sizes.1,
        r.classifier.split_sizes.0,
        r.classifier.split_sizes.1
    );
    s
}

/// Table 2: extractor accuracy.
pub fn table2(r: &ExperimentReport) -> String {
    let mut s = header("Table 2 — extractor accuracy per field");
    let _ = writeln!(
        s,
        "{:<12} {:>18} {:>10}",
        "Label", "% Doxes Including", "Accuracy"
    );
    for field in Field::ALL {
        if let Some(score) = r.extractor.scores.get(&field) {
            let _ = writeln!(
                s,
                "{:<12} {:>18} {:>10}",
                field.label(),
                pct(score.inclusion_rate()),
                pct(score.accuracy())
            );
        }
    }
    s
}

/// Table 3: deletion survey.
pub fn table3(r: &ExperimentReport) -> String {
    let mut s = header("Table 3 — pastebin deletion within one month (period 1)");
    let _ = writeln!(
        s,
        "{:<8} {:>10} {:>10} {:>10}",
        "Type", "# Files", "# Deleted", "% Deleted"
    );
    let _ = writeln!(
        s,
        "{:<8} {:>10} {:>10} {:>10}",
        "Dox",
        r.deletion.dox_total,
        r.deletion.dox_deleted,
        pct(r.deletion.dox_rate())
    );
    let _ = writeln!(
        s,
        "{:<8} {:>10} {:>10} {:>10}",
        "Other",
        r.deletion.other_total,
        r.deletion.other_deleted,
        pct(r.deletion.other_rate())
    );
    let _ = writeln!(s, "(dox/other deletion ratio: {:.2}x)", r.deletion.ratio());
    s
}

/// Table 4: collection statistics.
pub fn table4(r: &ExperimentReport) -> String {
    let mut s = header("Table 4 — collection statistics per period");
    let _ = writeln!(s, "{:<28} {:>10} {:>10}", "", "Period 1", "Period 2");
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>10}",
        "Text files recorded", r.pipeline.per_period[0], r.pipeline.per_period[1]
    );
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>10}",
        "Classified as a dox", r.pipeline.dox_per_period[0], r.pipeline.dox_per_period[1]
    );
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>10}",
        "Doxes without duplicates",
        r.pipeline.unique_in_period(1),
        r.pipeline.unique_in_period(2)
    );
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>10}",
        "Doxes manually labeled", r.labeled_per_period[0], r.labeled_per_period[1]
    );
    s
}

/// Table 5: demographics.
pub fn table5(r: &ExperimentReport) -> String {
    let d = &r.demographics;
    let mut s = header("Table 5 — victim demographics");
    let _ = writeln!(s, "Min Age           {}", d.min_age);
    let _ = writeln!(s, "Max Age           {}", d.max_age);
    let _ = writeln!(s, "Mean Age          {:.1}", d.mean_age);
    let _ = writeln!(s, "Gender (Female)   {}", pct(d.female));
    let _ = writeln!(s, "Gender (Male)     {}", pct(d.male));
    let _ = writeln!(s, "Gender (Other)    {}", pct(d.other));
    let _ = writeln!(
        s,
        "Located in USA*   {} (*of the {} labeled doxes with an address)",
        pct(d.primary_country),
        // dox-lint:allow(pii-taint) aggregate count of doxes carrying an address, not address content
        d.with_address
    );
    s
}

/// Table 6: sensitive-information categories.
pub fn table6(r: &ExperimentReport) -> String {
    let mut s = header("Table 6 — sensitive-information categories");
    let _ = writeln!(s, "{:<22} {:>9} {:>10}", "Category", "# Doxes", "% Doxes");
    for row in &r.content.rows {
        let _ = writeln!(
            s,
            "{:<22} {:>9} {:>10}",
            row.label,
            row.count,
            pct(row.fraction)
        );
    }
    let _ = writeln!(s, "(of {} manually labeled)", r.content.total);
    s
}

/// Table 7: victim communities.
pub fn table7(r: &ExperimentReport) -> String {
    let c = &r.community;
    let mut s = header("Table 7 — victim communities");
    let _ = writeln!(s, "{:<11} {:>8} {:>10}", "Category", "# Doxes", "% Labeled");
    for (label, n) in [
        ("Hacker", c.hacker),
        ("Gamer", c.gamer),
        ("Celebrity", c.celebrity),
    ] {
        let _ = writeln!(s, "{:<11} {:>8} {:>10}", label, n, pct(c.fraction(n)));
    }
    let _ = writeln!(
        s,
        "{:<11} {:>8} {:>10}",
        "Total",
        c.categorized(),
        pct(c.fraction(c.categorized()))
    );
    s
}

/// Table 8: motivations.
pub fn table8(r: &ExperimentReport) -> String {
    let m = &r.motivation;
    let mut s = header("Table 8 — stated motivations");
    let _ = writeln!(
        s,
        "{:<13} {:>8} {:>10}",
        "Motivation", "# Doxes", "% Labeled"
    );
    for (label, n) in [
        ("Competitive", m.competitive),
        ("Revenge", m.revenge),
        ("Justice", m.justice),
        ("Political", m.political),
    ] {
        let _ = writeln!(s, "{:<13} {:>8} {:>10}", label, n, pct(m.fraction(n)));
    }
    let _ = writeln!(
        s,
        "{:<13} {:>8} {:>10}",
        "Total",
        m.with_motivation(),
        pct(m.fraction(m.with_motivation()))
    );
    s
}

/// Table 9: networks referenced in doxes.
pub fn table9(r: &ExperimentReport) -> String {
    let mut s = header("Table 9 — social networks referenced in dox files");
    let _ = writeln!(s, "{:<12} {:>8} {:>9}", "Network", "# Doxes", "% Doxes");
    for net in [
        Network::Facebook,
        Network::GooglePlus,
        Network::Twitter,
        Network::Instagram,
        Network::YouTube,
        Network::Twitch,
    ] {
        let _ = writeln!(
            s,
            "{:<12} {:>8} {:>9}",
            net.name(),
            r.osn_presence.count(net),
            pct(r.osn_presence.fraction(net))
        );
    }
    let _ = writeln!(s, "(of {} classified doxes)", r.osn_presence.total_doxes);
    s
}

fn status_row(s: &mut String, label: &str, row: &StatusChangeRow) {
    let _ = writeln!(
        s,
        "{:<32} {:>13} {:>12} {:>12} {:>8}",
        label,
        pct(row.frac_more_private()),
        pct(row.frac_more_public()),
        pct(row.frac_any_change()),
        row.total
    );
}

/// Table 10: account status changes.
pub fn table10(r: &ExperimentReport) -> String {
    let mut s = header("Table 10 — status changes of monitored accounts");
    let _ = writeln!(
        s,
        "{:<32} {:>13} {:>12} {:>12} {:>8}",
        "Account Condition", "% MorePrivate", "% MorePublic", "% AnyChange", "Total"
    );
    status_row(&mut s, "Instagram Default (control)", &r.control_row);
    status_row(
        &mut s,
        "Instagram Default (active only)",
        &r.control_row_active,
    );
    for (label, row) in &r.status_changes.rows {
        status_row(&mut s, label, row);
    }
    let (any, private) = r.doxed_vs_control;
    let _ = writeln!(
        s,
        "(§6.2.2: doxed Instagram vs control — any-change {any:.0}x, more-private {private:.0}x)"
    );
    s
}

/// Figure 2: doxer network summary.
pub fn figure2(r: &ExperimentReport) -> String {
    let d = &r.doxer_network;
    let mut s = header("Figure 2 — doxer credit/follow network");
    let _ = writeln!(s, "Credited doxer aliases      : {}", d.total_doxers);
    let _ = writeln!(s, "With Twitter handles        : {}", d.with_twitter);
    let _ = writeln!(s, "In cliques of size >= 4     : {}", d.in_big_cliques);
    let _ = writeln!(s, "Maximal cliques of size >= 4: {}", d.big_clique_count);
    let _ = writeln!(s, "Largest clique              : {}", d.max_clique);
    s
}

/// Figure 3: status timelines as ASCII stacked bars.
pub fn figure3(r: &ExperimentReport) -> String {
    let mut s = header("Figure 3 — 14-day status timelines (changed accounts)");
    for panel in &r.timelines {
        let era = match panel.era {
            dox_osn::filters::FilterEra::PreFilter => "pre-filter",
            dox_osn::filters::FilterEra::PostFilter => "post-filter",
        };
        let _ = writeln!(
            s,
            "{} {} — {} of {} accounts changed within 14 days ({})",
            panel.network.name(),
            era,
            panel.changed_accounts,
            panel.total_accounts,
            pct(panel.changed_fraction())
        );
        let _ = writeln!(s, "  day : public/private/inactive");
        for (day, (pub_, priv_, inact)) in panel.counts.iter().enumerate() {
            let _ = writeln!(
                s,
                "  {day:>3} : {} {}",
                format_args!("{pub_:>3}P {priv_:>3}p {inact:>3}x"),
                bar(*pub_, *priv_, *inact)
            );
        }
    }
    let t = &r.reaction_timing;
    let _ = writeln!(
        s,
        "§6.3 reaction timing: {} more-private changes; {} within 24h, {} within 7d",
        t.total,
        pct(t.frac_within_day()),
        pct(t.frac_within_week())
    );
    s
}

fn bar(public: usize, private: usize, inactive: usize) -> String {
    let total = (public + private + inactive).max(1);
    let width = 30usize;
    let p = public * width / total;
    let q = private * width / total;
    let x = width.saturating_sub(p + q);
    format!("[{}{}{}]", "#".repeat(p), "=".repeat(q), ".".repeat(x))
}

/// §4.1 IP validation.
pub fn validation_ip(r: &ExperimentReport) -> String {
    let v = &r.ip_validation;
    let mut s = header("§4.1 — validation by IP address");
    let _ = writeln!(s, "Doxes sampled with an IP      : {}", v.sampled);
    let _ = writeln!(s, "With both IP and postal + zip : {}", v.with_both);
    let _ = writeln!(
        s,
        "Close (same state)            : {} (of which exact: {})",
        v.summary.close_or_exact(),
        v.summary.exact
    );
    let _ = writeln!(s, "Adjacent state                : {}", v.summary.adjacent);
    let _ = writeln!(s, "Far / unresolvable            : {}", v.summary.far);
    s
}

/// §5.3.2 comment analysis.
pub fn validation_comments(r: &ExperimentReport) -> String {
    let c = &r.comments;
    let mut s = header("§5.3.2 — comments on victims' accounts");
    let _ = writeln!(s, "Comments recorded        : {}", c.total_comments);
    let _ = writeln!(s, "Distinct commenters      : {}", c.distinct_commenters);
    let _ = writeln!(
        s,
        "Cross-account commenters : {}",
        c.cross_account_commenters
    );
    let _ = writeln!(s, "Accounts fetched         : {}", c.accounts_fetched);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};

    fn report() -> &'static ExperimentReport {
        use std::sync::OnceLock;
        static REPORT: OnceLock<ExperimentReport> = OnceLock::new();
        REPORT.get_or_init(|| {
            Study::new(StudyConfig::test_scale())
                .run()
                .expect("test-scale study runs")
        })
    }

    #[test]
    fn full_report_contains_every_section() {
        let text = full_report(report());
        for needle in [
            "Figure 1", "Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
            "Table 7", "Table 8", "Table 9", "Table 10", "Figure 2", "Figure 3", "§4.1", "§5.3.2",
        ] {
            assert!(text.contains(needle), "missing section {needle}");
        }
    }

    #[test]
    fn json_roundtrip_is_valid() {
        let json = to_json(report()).expect("report serializes");
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(value.get("pipeline").is_some());
        assert!(value.get("doxer_network").is_some());
    }

    #[test]
    fn table_rows_render_numbers() {
        let r = report();
        let t4 = table4(r);
        assert!(t4.contains(&r.pipeline.per_period[0].to_string()));
        let t9 = table9(r);
        assert!(t9.contains("Facebook"));
    }

    #[test]
    fn bar_is_width_bounded() {
        assert_eq!(bar(0, 0, 0).len(), 32);
        assert_eq!(bar(10, 10, 10).len(), 32);
        assert!(bar(30, 0, 0).contains("##"));
    }
}
