//! Subtle-dox detection — the paper's §7.3 future-work item, implemented.
//!
//! "Finally, we plan to improve the coverage of the doxes we detect by
//! understanding how to identify most subtle instances of doxing that
//! occur in addition to blatant doxes."
//!
//! The TF-IDF classifier misses doxes that carry little of the genre's
//! vocabulary: thread fragments ("ig is `<handle>`"), bare-handle drops,
//! screencap stubs. Those documents *do* carry personally identifying
//! structure that the extractor finds. [`SubtleDoxDetector`] exploits
//! that: a document whose classifier decision lands in a configurable
//! gray zone below the decision boundary is promoted to "dox" when its
//! extraction record is dense enough — at least `min_pii_kinds` distinct
//! categories of personal information.
//!
//! The combination is strictly recall-increasing over the base classifier
//! and its false-positive cost is bounded by the gray-zone width, which
//! the ablation benchmark sweeps.

use crate::training::DoxClassifier;
use dox_extract::record::{extract, ExtractedDox};
use serde::{Deserialize, Serialize};

/// Configuration of the second stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubtleConfig {
    /// Width of the gray zone below the decision boundary: documents with
    /// `decision > -margin` are eligible for promotion.
    pub margin: f64,
    /// Minimum distinct PII categories for promotion.
    pub min_pii_kinds: usize,
}

impl Default for SubtleConfig {
    fn default() -> Self {
        Self {
            margin: 0.6,
            min_pii_kinds: 2,
        }
    }
}

/// The verdict of the combined detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The base classifier said dox.
    Classifier,
    /// The base classifier declined, but the gray-zone + extraction rule
    /// promoted the document.
    Promoted,
    /// Not a dox.
    Negative,
}

impl Verdict {
    /// Whether the verdict marks the document a dox.
    pub fn is_dox(self) -> bool {
        !matches!(self, Verdict::Negative)
    }
}

/// The §7.3 combined detector.
pub struct SubtleDoxDetector<'c> {
    classifier: &'c DoxClassifier,
    config: SubtleConfig,
}

/// Count distinct PII categories in an extraction record: OSN accounts,
/// real name, age/DOB, phone, email, IP, address, SSN/CC/financial data,
/// passwords, family members, other usernames.
pub fn pii_kinds(e: &ExtractedDox) -> usize {
    let f = &e.fields;
    [
        !e.osn.is_empty(),
        f.first_name.is_some() || f.last_name.is_some(),
        f.age.is_some() || f.dob.is_some(),
        !f.phones.is_empty(),
        !f.emails.is_empty(),
        !f.ips.is_empty(),
        f.address.is_some(),
        !f.ssns.is_empty() || !f.credit_cards.is_empty(),
        !f.passwords.is_empty(),
        !f.family.is_empty(),
        !f.usernames.is_empty(),
    ]
    .iter()
    .filter(|&&b| b)
    .count()
}

impl<'c> SubtleDoxDetector<'c> {
    /// Wrap a trained classifier.
    pub fn new(classifier: &'c DoxClassifier, config: SubtleConfig) -> Self {
        Self { classifier, config }
    }

    /// Judge a plain-text document.
    pub fn judge(&self, text: &str) -> Verdict {
        let decision = self.classifier.decision(text);
        if decision > 0.0 {
            return Verdict::Classifier;
        }
        if decision > -self.config.margin && pii_kinds(&extract(text)) >= self.config.min_pii_kinds
        {
            return Verdict::Promoted;
        }
        Verdict::Negative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_geo::alloc::{AllocConfig, Allocation};
    use dox_geo::model::{World, WorldConfig};
    use dox_synth::config::SynthConfig;
    use dox_synth::corpus::CorpusGenerator;
    use std::sync::OnceLock;

    struct Fixture {
        classifier: DoxClassifier,
        /// (plain text, is_dox, is_subtle) triples from a fresh stream.
        docs: Vec<(String, bool, bool)>,
    }

    fn fixture() -> &'static Fixture {
        static F: OnceLock<Fixture> = OnceLock::new();
        F.get_or_init(|| {
            let world = World::generate(&WorldConfig::default(), 88);
            let alloc = Allocation::generate(&world, &AllocConfig::default(), 88);
            let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::at_scale(0.01));
            let (texts, labels) = gen.training_sets();
            let (classifier, _) = crate::training::DoxClassifier::train(&texts, &labels, 88);
            let mut docs = Vec::new();
            for period in [1u8, 2] {
                let _ = gen.generate_period(period, &mut |d| {
                    let text = if d.source.is_html() {
                        dox_textkit::html::html_to_text(&d.body)
                    } else {
                        d.body.clone()
                    };
                    let (is_dox, subtle) = match d.truth.as_dox() {
                        Some(t) => (true, t.sloppy || t.stub),
                        None => (false, false),
                    };
                    docs.push((text, is_dox, subtle));
                    std::ops::ControlFlow::Continue(())
                });
            }
            Fixture { classifier, docs }
        })
    }

    fn recall_fp(detector: &dyn Fn(&str) -> bool) -> (f64, usize) {
        let f = fixture();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut pos = 0usize;
        for (text, is_dox, _) in &f.docs {
            let hit = detector(text);
            if *is_dox {
                pos += 1;
                tp += usize::from(hit);
            } else {
                fp += usize::from(hit);
            }
        }
        (tp as f64 / pos.max(1) as f64, fp)
    }

    #[test]
    fn combined_recall_never_below_base() {
        let f = fixture();
        let base = |t: &str| f.classifier.is_dox(t);
        let det = SubtleDoxDetector::new(&f.classifier, SubtleConfig::default());
        let combined = |t: &str| det.judge(t).is_dox();
        let (r_base, _) = recall_fp(&base);
        let (r_comb, _) = recall_fp(&combined);
        assert!(
            r_comb >= r_base,
            "promotion can only add detections: {r_comb} vs {r_base}"
        );
    }

    #[test]
    fn promotions_require_pii_density() {
        let f = fixture();
        let det = SubtleDoxDetector::new(&f.classifier, SubtleConfig::default());
        let log_line = "2016-08-03T12:00:00Z INFO worker-1: request 4221 completed in 35ms";
        assert_eq!(det.judge(log_line), Verdict::Negative);
        // A gray-zone document dense with PII but light on dox vocabulary.
        let fragment = "posting what we have so far, more later\n\
                        first name jaren last name thornvik\n\
                        insta is jaren_thornvik40x3\n";
        let v = det.judge(fragment);
        assert!(
            v.is_dox(),
            "PII-dense fragment should be caught by some stage: {v:?}"
        );
    }

    #[test]
    fn wider_margin_trades_fp_for_recall() {
        let f = fixture();
        let narrow = SubtleDoxDetector::new(
            &f.classifier,
            SubtleConfig {
                margin: 0.1,
                min_pii_kinds: 2,
            },
        );
        let wide = SubtleDoxDetector::new(
            &f.classifier,
            SubtleConfig {
                margin: 2.0,
                min_pii_kinds: 2,
            },
        );
        let (r_narrow, fp_narrow) = recall_fp(&|t| narrow.judge(t).is_dox());
        let (r_wide, fp_wide) = recall_fp(&|t| wide.judge(t).is_dox());
        assert!(r_wide >= r_narrow);
        assert!(fp_wide >= fp_narrow);
    }

    #[test]
    fn pii_kind_counter() {
        let e = extract(
            "Name: Kaia Sandvik\nAge: 22\nPhone: (414) 555-0123\n\
             Email: k@inbox.example\nIP: 73.20.1.5\ntwitter: kaia_s22",
        );
        let kinds = pii_kinds(&e);
        assert!(kinds >= 5, "kinds = {kinds}");
        assert_eq!(pii_kinds(&ExtractedDox::default()), 0);
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::Classifier.is_dox());
        assert!(Verdict::Promoted.is_dox());
        assert!(!Verdict::Negative.is_dox());
    }
}
