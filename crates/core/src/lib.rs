//! # dox-core
//!
//! The paper's primary contribution: the end-to-end doxing measurement
//! pipeline (Figure 1), its analyses (Tables 1–10, Figures 2–3, the three
//! validation studies) and the study driver that regenerates every result.
//!
//! Pipeline stages (paper §3.1):
//!
//! 1. **Collection** — `dox-sites` feeds every document posted to the five
//!    monitored sources during the two collection periods.
//! 2. **Classification** — TF-IDF + SGD (`dox-textkit` + `dox-ml`), trained
//!    on proof-of-work positives and random-crawl negatives; chan HTML is
//!    converted with the `html2text` equivalent first.
//! 3. **Extraction** — `dox-extract` pulls OSN accounts, sensitive fields
//!    and doxer credits from every classified dox.
//! 4. **De-duplication** — exact-body matching, then OSN-account-set
//!    identity ([`dedup`]).
//! 5. **Monitoring** — the `dox-osn` scraper probes each referenced account
//!    on the day-0/1/2/3/7/weekly schedule ([`monitor`]).
//!
//! The [`analysis`] modules compute every reported statistic, [`report`]
//! renders them in the paper's table layouts, and [`study`] wires the
//! whole reproduction together as a pure function of `(StudyConfig, seed)`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod error;
pub mod labeling;
pub mod monitor;
pub mod pipeline;
pub mod report;
pub mod study;
pub mod subtle;
pub mod training;

/// De-duplication (stage four). The implementation moved into
/// `dox-engine` so the streaming engine can shard it; the module is
/// re-exported here so `dox_core::dedup::*` paths keep working.
pub use dox_engine::dedup;

pub use error::{Error, Result};
pub use pipeline::{DetectedDox, Pipeline, PipelineCounters};
pub use study::{Study, StudyConfig};

/// One-stop imports for driving the reproduction.
///
/// ```
/// use dox_core::prelude::*;
///
/// let config = StudyConfig::builder().seed(3).scale(0.005).build();
/// let report = Study::new(config).run().expect("study runs");
/// assert!(report.pipeline.total > 0);
/// ```
pub mod prelude {
    pub use crate::error::{Error, Result};
    pub use crate::report::{full_report, to_json};
    pub use crate::study::{ExperimentReport, Study, StudyConfig, StudyConfigBuilder};
    pub use dox_engine::{
        Engine, EngineBuilder, EngineConfig, EngineError, Session, SessionBuilder,
    };
    pub use dox_obs::Registry;
}
