//! Classifier training and evaluation (paper §3.1.2, Table 1).
//!
//! The labeled corpus comes from the sources the paper used: dox-for-hire
//! "proof-of-work" archives as positives (749 at paper scale) and a
//! manually vetted random crawl of pastebin as negatives (4,220). The
//! evaluation protocol is a 2/3–1/3 split; the deployed model is then
//! retrained on the full labeled corpus.

use dox_ml::eval::{evaluate_classifier, train_full};
use dox_ml::metrics::ClassificationReport;
use dox_ml::sgd::{SgdClassifier, SgdConfig};
use dox_textkit::tfidf::{TfidfConfig, TfidfVectorizer};
use serde::{Deserialize, Serialize};

/// The trained classifier stage: vectorizer plus linear model.
#[derive(Clone)]
pub struct DoxClassifier {
    vectorizer: TfidfVectorizer,
    model: SgdClassifier,
    /// Held-out evaluation, in Table 1's shape.
    pub evaluation: ClassificationReport,
    /// Training-set sizes `(positives, negatives)`.
    pub training_sizes: (usize, usize),
}

/// Summary of the Table 1 run, serializable for EXPERIMENTS.md.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierSummary {
    /// Held-out report.
    pub report: ClassificationReport,
    /// `(train, test)` sizes of the evaluation split.
    pub split_sizes: (usize, usize),
    /// `(positives, negatives)` in the full labeled corpus.
    pub corpus_sizes: (usize, usize),
}

impl DoxClassifier {
    /// Train and evaluate per the paper's protocol.
    ///
    /// # Panics
    /// Panics if `texts` is empty or lengths differ.
    pub fn train(texts: &[String], labels: &[bool], seed: u64) -> (Self, ClassifierSummary) {
        let outcome = evaluate_classifier(
            texts,
            labels,
            2.0 / 3.0,
            seed,
            SgdConfig::paper(),
            TfidfConfig::default(),
        );
        let (vectorizer, model) = train_full(
            texts,
            labels,
            seed,
            SgdConfig::paper(),
            TfidfConfig::default(),
        );
        let positives = labels.iter().filter(|&&l| l).count();
        let negatives = labels.len() - positives;
        let summary = ClassifierSummary {
            report: outcome.report,
            split_sizes: outcome.sizes,
            corpus_sizes: (positives, negatives),
        };
        (
            Self {
                vectorizer,
                model,
                evaluation: outcome.report,
                training_sizes: (positives, negatives),
            },
            summary,
        )
    }

    /// Classify one plain-text document.
    pub fn is_dox(&self, text: &str) -> bool {
        self.model.predict(&self.vectorizer.transform(text))
    }

    /// The raw decision value (distance from the separating hyperplane).
    pub fn decision(&self, text: &str) -> f64 {
        self.model
            .decision_function(&self.vectorizer.transform(text))
    }

    /// The most dox-indicative vocabulary terms, for model inspection.
    pub fn top_dox_terms(&self, k: usize) -> Vec<(String, f64)> {
        // An unfitted vectorizer has no vocabulary to inspect.
        let Some(model) = self.vectorizer.model() else {
            return Vec::new();
        };
        let vocab = model.vocabulary();
        let tokens = vocab.tokens_in_order();
        self.model
            .top_positive_features(k)
            .into_iter()
            .filter_map(|(idx, w)| tokens.get(idx as usize).map(|t| (t.to_string(), w)))
            .collect()
    }
}

/// The trained classifier is the engine's classification stage: this is
/// the only coupling between `dox-core` and the generic streaming engine.
impl dox_engine::DoxDetector for DoxClassifier {
    fn is_dox(&self, text: &str) -> bool {
        DoxClassifier::is_dox(self, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_geo::alloc::{AllocConfig, Allocation};
    use dox_geo::model::{World, WorldConfig};
    use dox_synth::config::SynthConfig;
    use dox_synth::corpus::CorpusGenerator;

    fn trained() -> (DoxClassifier, ClassifierSummary) {
        let world = World::generate(&WorldConfig::default(), 31);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 31);
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        let (texts, labels) = gen.training_sets();
        DoxClassifier::train(&texts, &labels, 31)
    }

    #[test]
    fn classifier_beats_90_percent_f1_on_synthetic_corpus() {
        let (_, summary) = trained();
        assert!(
            summary.report.dox.f1 > 0.80,
            "dox F1 = {}",
            summary.report.dox.f1
        );
        assert!(summary.report.not.f1 > 0.95);
    }

    #[test]
    fn table1_shape_not_class_stronger_than_dox_class() {
        // Table 1: the negative class scores higher than the dox class
        // (0.99/0.98 vs 0.81/0.89) — class imbalance plus hard negatives
        // make the rare class harder. Compare via recall and F1: with the
        // small held-out positive set at test scale, dox precision can hit
        // exactly 1.0 (zero false positives), so precision alone is noise.
        let (_, summary) = trained();
        assert!(summary.report.not.recall >= summary.report.dox.recall);
        assert!(summary.report.not.f1 >= summary.report.dox.f1);
    }

    #[test]
    fn deployed_model_classifies_obvious_cases() {
        let (clf, _) = trained();
        let dox = "Name: John Example\nAge: 19\nAddress: 12 Maple Street, \
                   Brackford, NK 10234\nPhone: (312) 555-0188\nIP: 73.54.12.9\n\
                   dropped by DoxLord_3";
        let code = "fn main() { println!(\"hello\"); } // just some rust code";
        assert!(clf.is_dox(dox));
        assert!(!clf.is_dox(code));
        assert!(clf.decision(dox) > clf.decision(code));
    }

    #[test]
    fn top_terms_are_doxy() {
        let (clf, _) = trained();
        let terms = clf.top_dox_terms(25);
        assert_eq!(terms.len(), 25);
        // weights descending
        for w in terms.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let vocab: Vec<&str> = terms.iter().map(|(t, _)| t.as_str()).collect();
        let doxy_hits = ["dox", "phone", "age", "name", "address", "dropped", "ip"]
            .iter()
            .filter(|k| vocab.iter().any(|v| v.contains(*k)))
            .count();
        assert!(doxy_hits >= 2, "top terms {vocab:?}");
    }
}
