//! Typed errors for the study driver and report serialization.
//!
//! Fallible entry points ([`Study::run`](crate::study::Study::run),
//! [`Engine::builder`](dox_engine::Engine)'s `build`, report
//! serialization) return [`Error`] instead of panicking, so binaries and
//! services embedding the reproduction can surface failures without
//! aborting the process.

use dox_engine::EngineError;
use dox_osn::scraper::ScrapeError;

/// Everything that can go wrong driving a study end to end.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The ingest engine rejected its configuration or failed mid-stream.
    Engine(EngineError),
    /// The training corpus violated an invariant — e.g. a proof-of-work
    /// positive the generator failed to label as a dox.
    Training(String),
    /// A report failed to serialize.
    Serialize(serde_json::Error),
    /// A scrape request failed in a way monitoring could not absorb.
    Scrape(ScrapeError),
    /// The run was deliberately halted mid-ingest by the fault plan's
    /// kill switch (chaos testing); resume from the last checkpoint.
    Halted {
        /// Collected documents ingested before the halt.
        docs_ingested: u64,
    },
    /// A checkpoint could not be loaded, validated, or written.
    Checkpoint(String),
    /// The configuration cannot be hosted as a resident service session
    /// — e.g. a fault plan, which service-mode report replay cannot
    /// reproduce deterministically.
    ServiceMode(String),
}

/// Convenience alias used by the fallible `dox-core` entry points.
pub type Result<T> = std::result::Result<T, Error>;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Engine(e) => write!(f, "ingest engine error: {e}"),
            Error::Training(why) => write!(f, "training corpus invariant violated: {why}"),
            Error::Serialize(e) => write!(f, "report serialization failed: {e}"),
            Error::Scrape(e) => write!(f, "scrape failed: {e}"),
            Error::Halted { docs_ingested } => write!(
                f,
                "run halted by the fault plan's kill switch after {docs_ingested} documents"
            ),
            Error::Checkpoint(why) => write!(f, "checkpoint error: {why}"),
            Error::ServiceMode(why) => write!(f, "service mode rejected the config: {why}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Engine(e) => Some(e),
            Error::Serialize(e) => Some(e),
            Error::Scrape(e) => Some(e),
            Error::Training(_) | Error::Halted { .. } | Error::Checkpoint(_) => None,
            Error::ServiceMode(_) => None,
        }
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<ScrapeError> for Error {
    fn from(e: ScrapeError) -> Self {
        Error::Scrape(e)
    }
}

impl From<serde_json::Error> for Error {
    fn from(e: serde_json::Error) -> Self {
        Error::Serialize(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_convert_and_display() {
        let err = Error::from(EngineError::ZeroWorkers);
        assert!(matches!(err, Error::Engine(EngineError::ZeroWorkers)));
        assert!(err.to_string().contains("worker"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn scrape_errors_convert_and_chain() {
        let err = Error::from(ScrapeError::RateLimited {
            retry_at: dox_osn::clock::SimTime(99),
        });
        assert!(err.to_string().contains("rate limited"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn halted_and_checkpoint_errors_render_context() {
        let halted = Error::Halted { docs_ingested: 42 };
        assert!(halted.to_string().contains("42"));
        assert!(std::error::Error::source(&halted).is_none());
        let ck = Error::Checkpoint("fingerprint mismatch".into());
        assert!(ck.to_string().contains("fingerprint mismatch"));
    }

    #[test]
    fn service_mode_errors_render_context() {
        let err = Error::ServiceMode("fault plans are not supported".into());
        assert!(err.to_string().contains("fault plans"));
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn training_errors_carry_context() {
        let err = Error::Training("PoW doc 12 not labeled dox".into());
        assert!(err.to_string().contains("PoW doc 12"));
        assert!(std::error::Error::source(&err).is_none());
    }
}
