//! Typed errors for the study driver and report serialization.
//!
//! Fallible entry points ([`Study::run`](crate::study::Study::run),
//! [`Engine::builder`](dox_engine::Engine)'s `build`, report
//! serialization) return [`Error`] instead of panicking, so binaries and
//! services embedding the reproduction can surface failures without
//! aborting the process.

use dox_engine::EngineError;

/// Everything that can go wrong driving a study end to end.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The ingest engine rejected its configuration or failed mid-stream.
    Engine(EngineError),
    /// The training corpus violated an invariant — e.g. a proof-of-work
    /// positive the generator failed to label as a dox.
    Training(String),
    /// A report failed to serialize.
    Serialize(serde_json::Error),
}

/// Convenience alias used by the fallible `dox-core` entry points.
pub type Result<T> = std::result::Result<T, Error>;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Engine(e) => write!(f, "ingest engine error: {e}"),
            Error::Training(why) => write!(f, "training corpus invariant violated: {why}"),
            Error::Serialize(e) => write!(f, "report serialization failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Engine(e) => Some(e),
            Error::Serialize(e) => Some(e),
            Error::Training(_) => None,
        }
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<serde_json::Error> for Error {
    fn from(e: serde_json::Error) -> Self {
        Error::Serialize(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_convert_and_display() {
        let err = Error::from(EngineError::ZeroWorkers);
        assert!(matches!(err, Error::Engine(EngineError::ZeroWorkers)));
        assert!(err.to_string().contains("worker"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn training_errors_carry_context() {
        let err = Error::Training("PoW doc 12 not labeled dox".into());
        assert!(err.to_string().contains("PoW doc 12"));
        assert!(std::error::Error::source(&err).is_none());
    }
}
