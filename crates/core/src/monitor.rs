//! Account monitoring (paper §3.1.5).
//!
//! "We measured each online social networking account several times during
//! the study period; immediately when the dox was observed … and then
//! again one, two, three and seven days after the initial observation, and
//! then every seven days after that. Measurement points varied slightly
//! from this schedule because of the load-balancing and queuing steps in
//! our pipeline, but rarely deviated more than a day."
//!
//! [`Schedule`] reproduces that visit plan (including bounded jitter);
//! [`Monitor`] executes it against the simulated OSN world through the
//! [`dox_osn::scraper::Scraper`] — the same restricted vantage point the
//! paper had.

use dox_fault::{
    run_op, BreakerConfig, BreakerSet, CoverageGaps, FaultDomain, FaultPlan, FaultPlanConfig,
    FaultStats, OpOutcome, RetryPolicy,
};
use dox_obs::{Counter, Histogram, Registry};
use dox_osn::account::AccountId;
use dox_osn::clock::{SimDuration, SimTime, MINUTES_PER_DAY};
use dox_osn::comments::Comment;
use dox_osn::platform::SimOsnWorld;
use dox_osn::scraper::{Observation, ScrapeError, Scraper};
use dox_store::{Store, StoreError, Table as StoreTable};
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Bound on rate-limit retries per probe: the limiter always names a
/// concrete `retry_at`, so a handful of hops reaches an admissible slot.
const MAX_RATE_LIMIT_RETRIES: u32 = 8;

/// The visit schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Day offsets of the fixed early probes (paper: 0, 1, 2, 3, 7).
    pub early_days: Vec<u64>,
    /// After the early probes, repeat every this many days.
    pub repeat_days: u64,
    /// Monitor each account for this long after first observation.
    pub horizon_days: u64,
    /// Maximum jitter (± minutes) from queueing, paper: "rarely more than
    /// a day" — we use up to ±6 hours.
    pub jitter_minutes: u64,
}

impl Default for Schedule {
    fn default() -> Self {
        Self::paper()
    }
}

impl Schedule {
    /// The paper's schedule with an 8-week monitoring horizon.
    pub fn paper() -> Self {
        Self {
            early_days: vec![0, 1, 2, 3, 7],
            repeat_days: 7,
            horizon_days: 56,
            jitter_minutes: 6 * 60,
        }
    }

    /// Probe times for an account first observed at `start`. Jitter is
    /// deterministic in `(account-key, probe index)`. The day-0 probe is
    /// never jittered (the "immediately when observed" visit).
    pub fn probe_times(&self, start: SimTime, jitter_key: u64) -> Vec<SimTime> {
        let mut rng = ChaCha8Rng::seed_from_u64(jitter_key ^ 0x5C4E_D01E);
        let mut days: Vec<u64> = self.early_days.clone();
        let mut d = self.early_days.last().copied().unwrap_or(0) + self.repeat_days;
        while d <= self.horizon_days {
            days.push(d);
            d += self.repeat_days;
        }
        days.into_iter()
            .enumerate()
            .map(|(i, day)| {
                let base = start + SimDuration(day * MINUTES_PER_DAY);
                if i == 0 || self.jitter_minutes == 0 {
                    base
                } else {
                    let j = rng.random_range(0..=2 * self.jitter_minutes) as i64
                        - self.jitter_minutes as i64;
                    SimTime((base.0 as i64 + j).max(start.0 as i64) as u64)
                }
            })
            .collect()
    }
}

// The vendored serde cannot derive `Deserialize`; structs round-trip
// as field objects with unknown fields rejected.
impl Deserialize for Schedule {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        let mut early_days = None;
        let mut repeat_days = None;
        let mut horizon_days = None;
        let mut jitter_minutes = None;
        for (field, v) in value.as_object()? {
            match field.as_str() {
                "early_days" => {
                    early_days = Some(
                        v.as_array()?
                            .iter()
                            .map(|d| d.as_u64())
                            .collect::<Option<Vec<u64>>>()?,
                    );
                }
                "repeat_days" => repeat_days = Some(v.as_u64()?),
                "horizon_days" => horizon_days = Some(v.as_u64()?),
                "jitter_minutes" => jitter_minutes = Some(v.as_u64()?),
                _ => return None,
            }
        }
        Some(Self {
            early_days: early_days?,
            repeat_days: repeat_days?,
            horizon_days: horizon_days?,
            jitter_minutes: jitter_minutes?,
        })
    }
}

/// The complete observation history of one monitored account.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccountHistory {
    /// The account.
    pub account: AccountId,
    /// When its dox was first observed (probe day 0).
    pub first_observed: SimTime,
    /// Observations, in probe order.
    pub observations: Vec<Observation>,
}

impl Deserialize for AccountHistory {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        let mut account = None;
        let mut first_observed = None;
        let mut observations = None;
        for (field, v) in value.as_object()? {
            match field.as_str() {
                "account" => account = Some(AccountId::from_value(v)?),
                "first_observed" => first_observed = Some(SimTime::from_value(v)?),
                "observations" => {
                    observations = Some(
                        v.as_array()?
                            .iter()
                            .map(Observation::from_value)
                            .collect::<Option<Vec<Observation>>>()?,
                    );
                }
                _ => return None,
            }
        }
        Some(Self {
            account: account?,
            first_observed: first_observed?,
            observations: observations?,
        })
    }
}

impl AccountHistory {
    /// The status recorded at the probe closest to (at or before)
    /// `day` days after first observation; `None` before the first probe.
    pub fn status_as_of_day(&self, day: u64) -> Option<dox_osn::account::AccountStatus> {
        let cutoff = self.first_observed + SimDuration(day * MINUTES_PER_DAY + MINUTES_PER_DAY - 1);
        self.observations
            .iter()
            .rfind(|o| o.at <= cutoff)
            .map(|o| o.status)
    }

    /// First and last observed statuses, if any observations exist.
    pub fn endpoints(
        &self,
    ) -> Option<(
        dox_osn::account::AccountStatus,
        dox_osn::account::AccountStatus,
    )> {
        Some((
            self.observations.first()?.status,
            self.observations.last()?.status,
        ))
    }

    /// Whether any two consecutive observations differ.
    pub fn any_change(&self) -> bool {
        self.observations
            .windows(2)
            .any(|w| w[0].status != w[1].status)
    }

    /// Time of the first observed change to a less-open status, relative
    /// to first observation.
    pub fn first_more_private_delay(&self) -> Option<SimDuration> {
        self.observations
            .windows(2)
            .find(|w| w[1].status.openness() < w[0].status.openness())
            .map(|w| w[1].at.since(self.first_observed))
    }
}

/// What one [`Monitor::enroll_and_probe`] round cost: how many probes
/// ran, how many the fault plan swallowed, and the aggregate retry
/// weather — the numbers a sampled document's `monitor` trace hop
/// carries. All zeros for a re-enrollment (which is a no-op).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeRound {
    /// Probes the schedule called for.
    pub probes: u32,
    /// Probes lost to exhausted fault retries (explicit coverage gaps).
    pub missed_probes: u32,
    /// Fault-gauntlet attempts across the round, including successes.
    pub attempts: u32,
    /// Simulated backoff ticks spent across the round.
    pub delay: u64,
    /// Circuit-breaker trips the round's failures caused.
    pub breaker_trips: u32,
}

/// Store tables backing a persistent monitor: the visit schedule under
/// a fixed key and one JSON-encoded [`AccountHistory`] row per account
/// (its probe cursor — the observations already taken).
struct MonitorStore {
    schedule: StoreTable<String, String>,
    histories: StoreTable<Vec<u8>, String>,
}

/// Stable store key for an account: one network byte followed by the
/// big-endian uid, so rows scan grouped by network in uid order.
fn account_store_key(account: AccountId) -> Vec<u8> {
    let mut key = Vec::with_capacity(9);
    key.push(account.network as u8);
    key.extend_from_slice(&account.uid.to_be_bytes());
    key
}

/// Fault machinery for a monitor: the plan, the retry policy, one
/// breaker per network, and the running gap/retry tallies.
struct MonitorFaults {
    plan: FaultPlan,
    policy: RetryPolicy,
    breakers: BreakerSet,
    stats: FaultStats,
    gaps: CoverageGaps,
}

/// Executes the monitoring schedule for a set of accounts.
///
/// Scrape errors are handled, not dropped: a [`ScrapeError::RateLimited`]
/// probe is retried at the limiter's own `retry_at` hint (bounded by
/// a fixed retry ceiling), and a [`ScrapeError::UnknownAccount`] is
/// counted in the `monitor.probe_failures` metric. A monitor built with
/// [`Monitor::with_faults`] additionally routes every probe and comment
/// fetch through a seeded [`FaultPlan`]; exhausted operations surface in
/// [`Monitor::coverage_gaps`].
pub struct Monitor {
    schedule: Schedule,
    scraper: Scraper,
    histories: HashMap<AccountId, AccountHistory>,
    faults: Option<MonitorFaults>,
    store: Option<MonitorStore>,
    enrollments: Counter,
    probes: Counter,
    probe_failures: Counter,
    round_ns: Histogram,
    retry_wait: Histogram,
}

impl Monitor {
    /// A monitor with the paper schedule and an unmetered scraper,
    /// instrumented against the process-global metrics registry.
    pub fn new(schedule: Schedule) -> Self {
        Self::with_registry(schedule, dox_obs::global())
    }

    /// A monitor recording its scrape metrics into `registry`.
    pub fn with_registry(schedule: Schedule, registry: &Registry) -> Self {
        Self {
            schedule,
            scraper: Scraper::unlimited(),
            histories: HashMap::new(),
            faults: None,
            store: None,
            enrollments: registry.counter("monitor.enrollments"),
            probes: registry.counter("monitor.probes"),
            probe_failures: registry.counter("monitor.probe_failures"),
            round_ns: registry.histogram("monitor.scrape_round"),
            retry_wait: registry.histogram("pipeline.stage.retry_wait"),
        }
    }

    /// A monitor whose probes and comment fetches run through a fault
    /// plan with retry/backoff and a per-network circuit breaker.
    pub fn with_faults(
        schedule: Schedule,
        registry: &Registry,
        plan: FaultPlanConfig,
        policy: RetryPolicy,
        breaker: BreakerConfig,
    ) -> Self {
        let mut monitor = Self::with_registry(schedule, registry);
        monitor.faults = Some(MonitorFaults {
            plan: FaultPlan::new(plan),
            policy,
            breakers: BreakerSet::new(breaker),
            stats: FaultStats::default(),
            gaps: CoverageGaps::default(),
        });
        monitor
    }

    /// Run the injected-fault gauntlet for one operation; `Some` carries
    /// the (virtual) retry weather of a successful operation, `None` means
    /// the retries exhausted. Fault-free monitors always succeed at the
    /// first attempt. Recovered operations keep their scheduled sim time —
    /// the retries play out on the plan's virtual clock — so observations
    /// are unchanged and output stays byte-identical.
    fn faults_admit(
        &mut self,
        domain: FaultDomain,
        network: &str,
        key: u64,
        at: SimTime,
    ) -> Option<OpOutcome> {
        let Some(f) = self.faults.as_mut() else {
            return Some(OpOutcome {
                attempts: 1,
                delay: 0,
                breaker_trips: 0,
            });
        };
        // dox-lint:allow(determinism) wall time inside the backoff shim; profile only
        let wait_start = std::time::Instant::now();
        let outcome = run_op(
            &f.plan,
            &f.policy,
            Some(f.breakers.breaker(network)),
            &mut f.stats,
            domain,
            network,
            key,
            at.0,
        );
        self.retry_wait.observe_duration(wait_start.elapsed());
        outcome.ok()
    }

    /// Enroll an account first observed at `observed_at` and execute its
    /// whole probe schedule against `world`. Re-enrolling an account
    /// (victim re-doxed) is a no-op — the paper monitors from the first
    /// observation. Returns the round's probe/retry tallies (all zeros for
    /// a re-enrollment) so callers can attach them to a causal trace.
    pub fn enroll_and_probe(
        &mut self,
        world: &SimOsnWorld,
        account: AccountId,
        observed_at: SimTime,
    ) -> ProbeRound {
        if self.histories.contains_key(&account) {
            return ProbeRound::default();
        }
        // dox-lint:allow(determinism) enrollment latency metric; probe times come from SimTime
        let round_start = std::time::Instant::now();
        self.enrollments.inc();
        let mut round = ProbeRound::default();
        let jitter_key = (account.uid << 8) ^ account.network as u64;
        let times = self.schedule.probe_times(observed_at, jitter_key);
        let mut history = AccountHistory {
            account,
            first_observed: observed_at,
            observations: Vec::with_capacity(times.len()),
        };
        for (i, t) in times.into_iter().enumerate() {
            self.probes.inc();
            round.probes += 1;
            let key = jitter_key ^ ((i as u64) << 40);
            match self.faults_admit(FaultDomain::Probe, account.network.name(), key, t) {
                Some(outcome) => {
                    round.attempts = round.attempts.saturating_add(outcome.attempts);
                    round.delay = round.delay.saturating_add(outcome.delay);
                    round.breaker_trips = round.breaker_trips.saturating_add(outcome.breaker_trips);
                }
                None => {
                    round.missed_probes += 1;
                    if let Some(f) = self.faults.as_mut() {
                        f.gaps.missed_probes += 1;
                    }
                    continue;
                }
            }
            match self.probe_recovering(world, account, t) {
                Ok(obs) => history.observations.push(obs),
                Err(_) => self.probe_failures.inc(),
            }
        }
        self.histories.insert(account, history);
        self.round_ns.observe_duration(round_start.elapsed());
        round
    }

    /// Probe once, retrying rate limits at the limiter's `retry_at` hint.
    /// Only an [`ScrapeError::UnknownAccount`] (or a pathologically long
    /// limiter queue) surfaces as an error.
    fn probe_recovering(
        &mut self,
        world: &SimOsnWorld,
        account: AccountId,
        mut at: SimTime,
    ) -> Result<Observation, ScrapeError> {
        let mut attempts = 0;
        loop {
            match self.scraper.probe(world, account, at) {
                Ok(obs) => return Ok(obs),
                Err(ScrapeError::RateLimited { retry_at }) if attempts < MAX_RATE_LIMIT_RETRIES => {
                    attempts += 1;
                    at = retry_at.max(SimTime(at.0 + 1));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetch an account's public comments at `at`, riding out rate limits
    /// and (for fault-injected monitors) the comment-fetch fault plan.
    /// `None` records an explicit miss — counted in
    /// [`Monitor::coverage_gaps`] when injected, in the
    /// `monitor.probe_failures` metric when the platform itself refused.
    pub fn fetch_comments_recovering(
        &mut self,
        world: &SimOsnWorld,
        account: AccountId,
        at: SimTime,
    ) -> Option<Vec<Comment>> {
        let key = (account.uid << 8) ^ account.network as u64 ^ 0xC033_E275;
        if self
            .faults_admit(FaultDomain::Comments, account.network.name(), key, at)
            .is_none()
        {
            if let Some(f) = self.faults.as_mut() {
                f.gaps.missed_comment_fetches += 1;
            }
            return None;
        }
        let mut attempts = 0;
        let mut at = at;
        loop {
            match self.scraper.fetch_comments(world, account, at) {
                Ok(comments) => return Some(comments),
                Err(ScrapeError::RateLimited { retry_at }) if attempts < MAX_RATE_LIMIT_RETRIES => {
                    attempts += 1;
                    at = retry_at.max(SimTime(at.0 + 1));
                }
                Err(_) => {
                    self.probe_failures.inc();
                    return None;
                }
            }
        }
    }

    /// Retry/fault accounting with breaker transitions folded in; all
    /// zeros for a fault-free monitor.
    pub fn fault_stats(&self) -> FaultStats {
        let Some(f) = &self.faults else {
            return FaultStats::default();
        };
        let mut stats = f.stats;
        let transitions = f.breakers.total_transitions();
        stats.breaker_opens = transitions.opened;
        stats.breaker_half_opens = transitions.half_opened;
        stats.breaker_closes = transitions.closed;
        stats
    }

    /// Probes and comment fetches lost to exhausted fault retries. Empty
    /// for fault-free monitors and fully-recovered plans.
    pub fn coverage_gaps(&self) -> CoverageGaps {
        self.faults
            .as_ref()
            .map(|f| f.gaps.clone())
            .unwrap_or_default()
    }

    /// All histories.
    pub fn histories(&self) -> impl Iterator<Item = &AccountHistory> {
        self.histories.values()
    }

    /// History of one account.
    pub fn history(&self, account: AccountId) -> Option<&AccountHistory> {
        self.histories.get(&account)
    }

    /// Number of monitored accounts.
    pub fn len(&self) -> usize {
        self.histories.len()
    }

    /// True when nothing is enrolled.
    pub fn is_empty(&self) -> bool {
        self.histories.is_empty()
    }

    /// Total scrape requests issued.
    pub fn requests_made(&self) -> u64 {
        self.scraper.requests_made()
    }

    /// Borrow the scraper (comment fetches in the §5.3.2 analysis).
    pub fn scraper_mut(&mut self) -> &mut Scraper {
        &mut self.scraper
    }

    /// Attach a store and restore any previously persisted state: the
    /// visit schedule (the persisted one wins, so probe cursors stay
    /// consistent with the schedule that produced them) and every
    /// account history. Restored accounts re-enroll as no-ops —
    /// [`Monitor::enroll_and_probe`] sees them already monitored — so a
    /// resumed study re-probes nothing. Returns the number of restored
    /// histories.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] when a persisted row fails to parse;
    /// I/O errors bubble from the store.
    pub fn attach_store(&mut self, store: Arc<Store>) -> Result<usize, StoreError> {
        let tables = MonitorStore {
            schedule: StoreTable::new(Arc::clone(&store), "monitor.schedule"),
            histories: StoreTable::new(store, "monitor.histories"),
        };
        if let Some(json) = tables.schedule.get(&"schedule".to_string())? {
            self.schedule = serde_json::from_str(&json).map_err(|e| StoreError::Corrupt {
                detail: format!("monitor schedule: {e}"),
            })?;
        }
        let mut restored = 0;
        for (_, json) in tables.histories.scan()? {
            let history: AccountHistory =
                serde_json::from_str(&json).map_err(|e| StoreError::Corrupt {
                    detail: format!("monitor history: {e}"),
                })?;
            self.histories.insert(history.account, history);
            restored += 1;
        }
        self.store = Some(tables);
        Ok(restored)
    }

    /// Persist the schedule and every history into the attached store
    /// and commit them with one store checkpoint (a no-op without
    /// [`Monitor::attach_store`]). Rows are staged in sorted account
    /// order so the segment bytes are deterministic.
    ///
    /// # Errors
    /// Store staging or commit failures; serialization itself cannot
    /// fail for these derived types.
    pub fn persist(&self) -> Result<(), StoreError> {
        let Some(tables) = &self.store else {
            return Ok(());
        };
        let encode = |e: serde_json::Error| StoreError::Corrupt {
            detail: format!("encode monitor state: {e}"),
        };
        let json = serde_json::to_string(&self.schedule).map_err(encode)?;
        tables.schedule.put(&"schedule".to_string(), &json)?;
        let mut accounts: Vec<AccountId> = self.histories.keys().copied().collect();
        accounts.sort_unstable();
        for account in accounts {
            let history = &self.histories[&account];
            let json = serde_json::to_string(history).map_err(encode)?;
            tables.histories.put(&account_store_key(account), &json)?;
        }
        tables.histories.store().checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_osn::account::AccountStatus;
    use dox_osn::network::Network;

    #[test]
    fn paper_schedule_days() {
        let s = Schedule {
            jitter_minutes: 0,
            ..Schedule::paper()
        };
        let times = s.probe_times(SimTime::from_days(10), 1);
        let days: Vec<u64> = times.iter().map(|t| t.days() - 10).collect();
        assert_eq!(days, vec![0, 1, 2, 3, 7, 14, 21, 28, 35, 42, 49, 56]);
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let s = Schedule::paper();
        let a = s.probe_times(SimTime::from_days(5), 42);
        let b = s.probe_times(SimTime::from_days(5), 42);
        assert_eq!(a, b);
        let clean = Schedule {
            jitter_minutes: 0,
            ..Schedule::paper()
        }
        .probe_times(SimTime::from_days(5), 42);
        for (j, c) in a.iter().zip(&clean) {
            let diff = (j.0 as i64 - c.0 as i64).abs();
            assert!(diff <= 6 * 60, "jitter {diff} min");
        }
        assert_eq!(a[0], clean[0], "day-0 probe unjittered");
    }

    fn world_with_reacting_account() -> (SimOsnWorld, AccountId) {
        let mut w = SimOsnWorld::new(3);
        let id = w.register(
            Network::Facebook,
            "victim_m",
            SimTime::EPOCH,
            AccountStatus::Public,
        );
        (w, id)
    }

    #[test]
    fn monitor_records_full_history() {
        let (mut w, id) = world_with_reacting_account();
        w.notify_doxed(id, SimTime::from_days(3));
        let mut m = Monitor::new(Schedule::paper());
        m.enroll_and_probe(&w, id, SimTime::from_days(3));
        let h = m.history(id).unwrap();
        assert_eq!(h.observations.len(), 12);
        assert_eq!(h.first_observed, SimTime::from_days(3));
        assert!(m.requests_made() >= 12);
    }

    #[test]
    fn re_enrollment_is_noop() {
        let (w, id) = world_with_reacting_account();
        let mut m = Monitor::new(Schedule::paper());
        m.enroll_and_probe(&w, id, SimTime::from_days(3));
        let before = m.requests_made();
        m.enroll_and_probe(&w, id, SimTime::from_days(20));
        assert_eq!(m.requests_made(), before);
        assert_eq!(m.history(id).unwrap().first_observed, SimTime::from_days(3));
    }

    #[test]
    fn history_helpers_detect_changes() {
        let mut h = AccountHistory {
            account: AccountId {
                network: Network::Facebook,
                uid: 0,
            },
            first_observed: SimTime::from_days(0),
            observations: vec![],
        };
        assert!(h.endpoints().is_none());
        assert!(!h.any_change());
        for (day, status) in [
            (0, AccountStatus::Public),
            (1, AccountStatus::Public),
            (2, AccountStatus::Private),
            (7, AccountStatus::Public),
        ] {
            h.observations.push(Observation {
                account: h.account,
                at: SimTime::from_days(day),
                status,
            });
        }
        assert!(h.any_change());
        let (first, last) = h.endpoints().unwrap();
        assert_eq!(first, AccountStatus::Public);
        assert_eq!(last, AccountStatus::Public);
        assert_eq!(
            h.first_more_private_delay(),
            Some(SimDuration::from_days(2))
        );
        assert_eq!(h.status_as_of_day(1), Some(AccountStatus::Public));
        assert_eq!(h.status_as_of_day(2), Some(AccountStatus::Private));
        assert_eq!(h.status_as_of_day(5), Some(AccountStatus::Private));
        assert_eq!(h.status_as_of_day(10), Some(AccountStatus::Public));
    }

    #[test]
    fn store_round_trips_schedule_and_probe_cursors() {
        let dir = std::env::temp_dir().join(format!("dox_store_{}_monitor", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut w, id) = world_with_reacting_account();
        w.notify_doxed(id, SimTime::from_days(3));

        let store = Arc::new(Store::open(&dir, &dox_obs::Registry::new()).expect("open"));
        let mut m = Monitor::new(Schedule::paper());
        assert_eq!(m.attach_store(Arc::clone(&store)).expect("attach"), 0);
        m.enroll_and_probe(&w, id, SimTime::from_days(3));
        m.persist().expect("persist");
        let before = m.history(id).unwrap().clone();
        drop(m);
        drop(store);

        let store = Arc::new(Store::open(&dir, &dox_obs::Registry::new()).expect("reopen"));
        let mut restored = Monitor::new(Schedule {
            jitter_minutes: 0,
            ..Schedule::paper()
        });
        assert_eq!(restored.attach_store(store).expect("attach"), 1);
        assert_eq!(
            restored.schedule,
            Schedule::paper(),
            "persisted schedule wins over the constructor's"
        );
        assert_eq!(restored.history(id).unwrap(), &before);
        // The restored cursor says every probe already ran, so
        // re-enrollment stays a no-op and issues zero scrapes.
        let requests = restored.requests_made();
        let round = restored.enroll_and_probe(&w, id, SimTime::from_days(20));
        assert_eq!(round, ProbeRound::default());
        assert_eq!(restored.requests_made(), requests);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
