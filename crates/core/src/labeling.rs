//! Simulated manual labeling (paper §3.2).
//!
//! The paper hand-labels 464 doxes randomly selected from the classified
//! set, noting demographic categories, victim community and stated
//! motivation. In the reproduction the "human labeler" reads the
//! generator's ground truth — the exact information a careful annotator
//! would write down — for a deterministic random sample of the detected
//! doxes, sized per period like the paper's 270 + 194.

use crate::pipeline::DetectedDox;
use dox_synth::truth::DoxTruth;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One manually labeled dox.
#[derive(Debug, Clone)]
pub struct LabeledDox {
    /// The labeled document id.
    pub doc_id: u64,
    /// Collection period.
    pub period: u8,
    /// The label content (what the annotator wrote down).
    pub truth: DoxTruth,
}

/// Sample sizes per period: the paper labeled 270 in period 1 and 194 in
/// period 2 (of 2,976 / 2,554 classified), i.e. ≈ 9 % and ≈ 7.6 %.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelingPlan {
    /// Fraction of period-1 detections to label.
    pub frac_period1: f64,
    /// Fraction of period-2 detections to label.
    pub frac_period2: f64,
    /// Never label fewer than this many per period (small-scale runs).
    pub min_per_period: usize,
}

impl Default for LabelingPlan {
    fn default() -> Self {
        // The divisor 0.9 compensates for stub doxes being skipped by the
        // annotator (they carry nothing labelable), so the drawn sample
        // still lands on the paper's 270 + 194.
        Self {
            frac_period1: 270.0 / 2976.0 / 0.9,
            frac_period2: 194.0 / 2554.0 / 0.9,
            min_per_period: 40,
        }
    }
}

/// Draw the labeling sample. Only true doxes can be labeled — an annotator
/// looking at a false positive would discard it, as the paper's labelers
/// implicitly did (their demographic tables describe actual victims).
/// Screencap-mirror stubs are likewise skipped: their text carries nothing
/// to put in Tables 5–8. Returns labeled doxes in document order.
pub fn label_sample(detected: &[DetectedDox], plan: &LabelingPlan, seed: u64) -> Vec<LabeledDox> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1A8E_1E55);
    let mut out = Vec::new();
    for (period, frac) in [(1u8, plan.frac_period1), (2u8, plan.frac_period2)] {
        let pool: Vec<&DetectedDox> = detected
            .iter()
            .filter(|d| d.period == period && d.truth.as_ref().is_some_and(|t| !t.stub))
            .collect();
        if pool.is_empty() {
            continue;
        }
        let want = ((pool.len() as f64 * frac).round() as usize)
            .max(plan.min_per_period)
            .min(pool.len());
        let mut indices: Vec<usize> = (0..pool.len()).collect();
        // Partial Fisher–Yates: shuffle the first `want` positions.
        for i in 0..want {
            let j = rng.random_range(i..indices.len());
            indices.swap(i, j);
        }
        for &i in indices.iter().take(want) {
            let d = pool[i];
            // The pool filter above keeps only docs with non-stub truth.
            let Some(truth) = d.truth.as_ref() else {
                continue;
            };
            out.push(LabeledDox {
                doc_id: d.doc_id,
                period: d.period,
                truth: truth.as_ref().clone(),
            });
        }
    }
    out.sort_by_key(|l| l.doc_id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_osn::clock::SimTime;
    use dox_synth::corpus::Source;
    use dox_synth::truth::{Gender, IncludedFields};

    fn fake_detected(n: usize, period: u8, with_truth: bool) -> Vec<DetectedDox> {
        (0..n)
            .map(|i| DetectedDox {
                doc_id: (u64::from(period) << 32) + i as u64,
                source: Source::Pastebin,
                period,
                posted_at: SimTime::from_days(1),
                observed_at: SimTime::from_days(1),
                text: String::new(),
                extracted: Default::default(),
                duplicate: None,
                truth: with_truth.then(|| {
                    Box::new(DoxTruth {
                        persona_id: i as u64,
                        age: 20,
                        gender: Gender::Male,
                        primary_country: true,
                        fields: IncludedFields::default(),
                        osn_handles: vec![],
                        community: None,
                        motivation: None,
                        credits: vec![],
                        duplicate_of: None,
                        exact_duplicate: false,
                        sloppy: false,
                        stub: false,
                    })
                }),
            })
            .collect()
    }

    #[test]
    fn sample_sizes_follow_plan() {
        let mut detected = fake_detected(1000, 1, true);
        detected.extend(fake_detected(1000, 2, true));
        let plan = LabelingPlan::default();
        let labeled = label_sample(&detected, &plan, 1);
        let p1 = labeled.iter().filter(|l| l.period == 1).count();
        let p2 = labeled.iter().filter(|l| l.period == 2).count();
        assert_eq!(p1, 101); // round(1000 * 270/2976 / 0.9)
        assert_eq!(p2, 84); // round(1000 * 194/2554 / 0.9)
    }

    #[test]
    fn minimum_applies_at_small_scale() {
        let detected = fake_detected(60, 1, true);
        let labeled = label_sample(&detected, &LabelingPlan::default(), 2);
        assert_eq!(labeled.len(), 40);
    }

    #[test]
    fn sample_never_exceeds_pool() {
        let detected = fake_detected(10, 1, true);
        let labeled = label_sample(&detected, &LabelingPlan::default(), 3);
        assert_eq!(labeled.len(), 10);
    }

    #[test]
    fn false_positives_never_labeled() {
        let mut detected = fake_detected(50, 1, true);
        detected.extend(fake_detected(50, 1, false));
        let labeled = label_sample(&detected, &LabelingPlan::default(), 4);
        assert!(labeled.len() <= 50);
    }

    #[test]
    fn no_duplicate_labels_and_deterministic() {
        let detected = fake_detected(500, 1, true);
        let a = label_sample(&detected, &LabelingPlan::default(), 5);
        let b = label_sample(&detected, &LabelingPlan::default(), 5);
        let ids_a: Vec<u64> = a.iter().map(|l| l.doc_id).collect();
        let ids_b: Vec<u64> = b.iter().map(|l| l.doc_id).collect();
        assert_eq!(ids_a, ids_b);
        let mut dedup = ids_a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), ids_a.len());
    }

    #[test]
    fn empty_pool_is_fine() {
        assert!(label_sample(&[], &LabelingPlan::default(), 6).is_empty());
    }
}
