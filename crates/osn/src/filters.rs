//! Abuse-filter deployment eras.
//!
//! The paper's two collection periods straddle the deployment of
//! anti-harassment filtering by Facebook (news-feed algorithm change,
//! August 2016 — §6.3.1) and Instagram (comment filtering, early September
//! 2016 — §6.3.2). Twitter and YouTube deployed nothing relevant in the
//! window. [`FilterSchedule`] maps a network and a sim time to the active
//! [`FilterEra`].
//!
//! Simulation timeline (days since 7/20/2016, the study epoch):
//! period 1 spans days 0–42; Facebook deploys around day 22 (mid-August),
//! Instagram around day 50 (early September); period 2 spans days 152–201.

use crate::clock::SimTime;
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Whether a network's anti-abuse filtering was live at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterEra {
    /// Before the network deployed abuse filtering (or never deployed).
    PreFilter,
    /// After deployment.
    PostFilter,
}

/// Per-network filter deployment times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterSchedule {
    /// Facebook's deployment time, if modeled.
    pub facebook: Option<SimTime>,
    /// Instagram's deployment time, if modeled.
    pub instagram: Option<SimTime>,
}

impl Default for FilterSchedule {
    fn default() -> Self {
        Self::paper()
    }
}

impl FilterSchedule {
    /// The historical schedule: Facebook day 22 (≈ 8/11/2016), Instagram
    /// day 50 (≈ 9/8/2016).
    pub fn paper() -> Self {
        Self {
            facebook: Some(SimTime::from_days(22)),
            instagram: Some(SimTime::from_days(50)),
        }
    }

    /// A schedule with no deployments (for ablation benches).
    pub fn never() -> Self {
        Self {
            facebook: None,
            instagram: None,
        }
    }

    /// The era of `network` at `time`. Networks without a modeled
    /// deployment are permanently [`FilterEra::PreFilter`].
    pub fn era(&self, network: Network, time: SimTime) -> FilterEra {
        let deploy = match network {
            Network::Facebook => self.facebook,
            Network::Instagram => self.instagram,
            _ => None,
        };
        match deploy {
            Some(d) if time >= d => FilterEra::PostFilter,
            _ => FilterEra::PreFilter,
        }
    }
}

/// The paper's collection periods, in days since the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyPeriods {
    /// Period 1: `[start, end)` — the paper's 7/20/2016–8/31/2016.
    pub period1: (SimTime, SimTime),
    /// Period 2: `[start, end)` — the paper's 12/19/2016–2/6/2017.
    pub period2: (SimTime, SimTime),
}

impl Default for StudyPeriods {
    fn default() -> Self {
        Self::paper()
    }
}

impl StudyPeriods {
    /// The paper's timeline: 42-day summer period, 49-day winter period
    /// starting 152 days after the epoch.
    pub fn paper() -> Self {
        Self {
            period1: (SimTime::from_days(0), SimTime::from_days(42)),
            period2: (SimTime::from_days(152), SimTime::from_days(201)),
        }
    }

    /// Which period (1 or 2) contains `t`, if either.
    pub fn period_of(&self, t: SimTime) -> Option<u8> {
        if t >= self.period1.0 && t < self.period1.1 {
            Some(1)
        } else if t >= self.period2.0 && t < self.period2.1 {
            Some(2)
        } else {
            None
        }
    }

    /// Duration of a period in days.
    pub fn period_days(&self, which: u8) -> u64 {
        let (s, e) = if which == 1 {
            self.period1
        } else {
            self.period2
        };
        e.since(s).days()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_straddles_periods() {
        let s = FilterSchedule::paper();
        let p = StudyPeriods::paper();
        // During period 1 collection, Instagram filtering was not yet live
        // for doxes observed early in the period...
        assert_eq!(s.era(Network::Instagram, p.period1.0), FilterEra::PreFilter);
        // ...and by period 2 both networks are post-filter.
        assert_eq!(
            s.era(Network::Instagram, p.period2.0),
            FilterEra::PostFilter
        );
        assert_eq!(s.era(Network::Facebook, p.period2.0), FilterEra::PostFilter);
    }

    #[test]
    fn twitter_and_youtube_never_filter() {
        let s = FilterSchedule::paper();
        for t in [SimTime::from_days(0), SimTime::from_days(500)] {
            assert_eq!(s.era(Network::Twitter, t), FilterEra::PreFilter);
            assert_eq!(s.era(Network::YouTube, t), FilterEra::PreFilter);
        }
    }

    #[test]
    fn deployment_boundary_is_inclusive() {
        let s = FilterSchedule::paper();
        let d = s.facebook.unwrap();
        assert_eq!(s.era(Network::Facebook, d), FilterEra::PostFilter);
        assert_eq!(
            s.era(Network::Facebook, SimTime(d.0 - 1)),
            FilterEra::PreFilter
        );
    }

    #[test]
    fn never_schedule() {
        let s = FilterSchedule::never();
        assert_eq!(
            s.era(Network::Facebook, SimTime::from_days(400)),
            FilterEra::PreFilter
        );
    }

    #[test]
    fn period_lookup() {
        let p = StudyPeriods::paper();
        assert_eq!(p.period_of(SimTime::from_days(10)), Some(1));
        assert_eq!(p.period_of(SimTime::from_days(42)), None); // end exclusive
        assert_eq!(p.period_of(SimTime::from_days(100)), None);
        assert_eq!(p.period_of(SimTime::from_days(160)), Some(2));
        assert_eq!(p.period_days(1), 42);
        assert_eq!(p.period_days(2), 49);
    }
}
