//! Accounts and their status timelines.
//!
//! The paper's scraper records one of three states per visit — public,
//! private, or deleted/disabled (§3.1.5). An [`Account`] therefore carries a
//! sorted timeline of `(SimTime, AccountStatus)` transitions; the status at
//! any probe time is the last transition at or before it. Timelines are the
//! *ground truth* of the simulation; the scraper only ever sees point
//! samples of them, exactly like the original vantage point.

use crate::clock::SimTime;
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Identifier of an account: its network plus a per-network numeric uid.
///
/// For Instagram the uid is monotonically increasing with registration
/// order, which is what makes the paper's random-sampling control possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccountId {
    /// The network this account lives on.
    pub network: Network,
    /// Per-network user id.
    pub uid: u64,
}

// The vendored serde cannot derive `Deserialize`; structs round-trip
// as field objects with unknown fields rejected.
impl Deserialize for AccountId {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        let mut network = None;
        let mut uid = None;
        for (field, v) in value.as_object()? {
            match field.as_str() {
                "network" => network = Some(Network::from_value(v)?),
                "uid" => uid = Some(v.as_u64()?),
                _ => return None,
            }
        }
        Some(Self {
            network: network?,
            uid: uid?,
        })
    }
}

/// The externally observable status of an account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccountStatus {
    /// Content visible without any social tie to the account.
    Public,
    /// The account exists but its content is restricted.
    Private,
    /// Closed, deleted, suspended or otherwise gone.
    Inactive,
}

// Unit variants round-trip as their variant-name strings.
impl Deserialize for AccountStatus {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        match value.as_str()? {
            "Public" => Some(Self::Public),
            "Private" => Some(Self::Private),
            "Inactive" => Some(Self::Inactive),
            _ => None,
        }
    }
}

impl AccountStatus {
    /// Openness rank: higher is more open. Used to decide whether a
    /// transition made an account "more private" or "more public".
    pub fn openness(self) -> u8 {
        match self {
            AccountStatus::Public => 2,
            AccountStatus::Private => 1,
            AccountStatus::Inactive => 0,
        }
    }
}

/// One status transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// When the transition takes effect.
    pub at: SimTime,
    /// The status from this instant on.
    pub to: AccountStatus,
}

/// A simulated account.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Account {
    /// Identifier.
    pub id: AccountId,
    /// The public handle/username.
    pub handle: String,
    /// When the account was created (sim time; may predate the study).
    pub created: SimTime,
    /// Initial status at creation.
    pub initial_status: AccountStatus,
    /// Posting activity in posts/week. The paper (§6.2.1) discusses — and
    /// defers as future work — comparing doxed accounts only against
    /// *active* accounts; this field makes that comparison possible.
    /// Defaults to `1.0`; populated from a mean-1 lognormal at
    /// registration so many accounts are effectively abandoned.
    pub activity: f64,
    /// Sorted status transitions (by time; later entries win ties).
    transitions: Vec<Transition>,
}

impl Account {
    /// Create an account with no transitions and unit activity.
    pub fn new(id: AccountId, handle: String, created: SimTime, initial: AccountStatus) -> Self {
        Self {
            id,
            handle,
            created,
            initial_status: initial,
            activity: 1.0,
            transitions: Vec::new(),
        }
    }

    /// Whether the account clears the "active" bar used by the
    /// active-control analysis (≥ 1 post every two weeks).
    pub fn is_active(&self) -> bool {
        self.activity >= 0.5
    }

    /// Append a transition, keeping the timeline sorted. Equal-time
    /// transitions keep insertion order (the later insertion wins probes).
    pub fn push_transition(&mut self, at: SimTime, to: AccountStatus) {
        let pos = self.transitions.partition_point(|t| t.at <= at);
        self.transitions.insert(pos, Transition { at, to });
    }

    /// The status at `time` (ground truth).
    pub fn status_at(&self, time: SimTime) -> AccountStatus {
        self.transitions
            .iter()
            .rev()
            .find(|t| t.at <= time)
            .map_or(self.initial_status, |t| t.to)
    }

    /// The full transition list (tests and analyses use this; the scraper
    /// must not).
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Whether any transition occurs strictly within `(from, to]`.
    pub fn changed_between(&self, from: SimTime, to: SimTime) -> bool {
        self.transitions.iter().any(|t| t.at > from && t.at <= to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct() -> Account {
        Account::new(
            AccountId {
                network: Network::Instagram,
                uid: 42,
            },
            "victim_42".into(),
            SimTime::from_days(0),
            AccountStatus::Public,
        )
    }

    #[test]
    fn status_before_any_transition_is_initial() {
        let a = acct();
        assert_eq!(a.status_at(SimTime::from_days(100)), AccountStatus::Public);
    }

    #[test]
    fn transitions_apply_in_order() {
        let mut a = acct();
        a.push_transition(SimTime::from_days(10), AccountStatus::Private);
        a.push_transition(SimTime::from_days(20), AccountStatus::Inactive);
        assert_eq!(a.status_at(SimTime::from_days(9)), AccountStatus::Public);
        assert_eq!(a.status_at(SimTime::from_days(10)), AccountStatus::Private);
        assert_eq!(a.status_at(SimTime::from_days(15)), AccountStatus::Private);
        assert_eq!(a.status_at(SimTime::from_days(25)), AccountStatus::Inactive);
    }

    #[test]
    fn out_of_order_insertion_is_sorted() {
        let mut a = acct();
        a.push_transition(SimTime::from_days(20), AccountStatus::Inactive);
        a.push_transition(SimTime::from_days(10), AccountStatus::Private);
        assert_eq!(a.status_at(SimTime::from_days(12)), AccountStatus::Private);
        assert!(a.transitions().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn same_time_later_insertion_wins() {
        let mut a = acct();
        a.push_transition(SimTime::from_days(5), AccountStatus::Private);
        a.push_transition(SimTime::from_days(5), AccountStatus::Public);
        assert_eq!(a.status_at(SimTime::from_days(5)), AccountStatus::Public);
    }

    #[test]
    fn changed_between_is_half_open() {
        let mut a = acct();
        a.push_transition(SimTime::from_days(10), AccountStatus::Private);
        assert!(a.changed_between(SimTime::from_days(9), SimTime::from_days(10)));
        assert!(!a.changed_between(SimTime::from_days(10), SimTime::from_days(11)));
        assert!(!a.changed_between(SimTime::from_days(0), SimTime::from_days(9)));
    }

    #[test]
    fn openness_ordering() {
        assert!(AccountStatus::Public.openness() > AccountStatus::Private.openness());
        assert!(AccountStatus::Private.openness() > AccountStatus::Inactive.openness());
    }
}
