//! Account registries — the simulated platforms themselves.
//!
//! [`SimOsnWorld`] holds one registry per network. Registration hands out
//! uids; Instagram's uids are **monotonically increasing with registration
//! order**, the property the paper exploits to draw a uniform random
//! control sample of all registered users (§6.2.1). The registry also
//! resolves handles (the scraper and extractor work with handles, as the
//! paper's pipeline did).

use crate::account::{Account, AccountId, AccountStatus};
use crate::behavior::BehaviorModel;
use crate::clock::SimTime;
use crate::comments::{Comment, CommentModel};
use crate::network::Network;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One network's account registry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Registry {
    accounts: Vec<Account>,
    by_handle: HashMap<String, u64>,
}

impl Registry {
    /// Register a new account; returns its uid (monotonically increasing).
    ///
    /// # Panics
    /// Panics if the handle is already registered on this network.
    pub fn register(
        &mut self,
        network: Network,
        handle: &str,
        created: SimTime,
        initial: AccountStatus,
    ) -> AccountId {
        let uid = self.accounts.len() as u64;
        let key = handle.to_lowercase();
        assert!(
            !self.by_handle.contains_key(&key),
            "handle {handle:?} already registered on {network}"
        );
        self.by_handle.insert(key, uid);
        let id = AccountId { network, uid };
        self.accounts
            .push(Account::new(id, handle.to_string(), created, initial));
        id
    }

    /// Number of registered accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Resolve a handle (case-insensitive).
    pub fn resolve(&self, handle: &str) -> Option<AccountId> {
        self.by_handle
            .get(&handle.to_lowercase())
            .map(|&uid| self.accounts[uid as usize].id)
    }

    /// Borrow an account by uid.
    pub fn get(&self, uid: u64) -> Option<&Account> {
        self.accounts.get(uid as usize)
    }

    /// Mutably borrow an account by uid.
    pub fn get_mut(&mut self, uid: u64) -> Option<&mut Account> {
        self.accounts.get_mut(uid as usize)
    }

    /// All accounts.
    pub fn accounts(&self) -> &[Account] {
        &self.accounts
    }
}

/// The complete simulated OSN world: one registry per network, the
/// behavioural model, and the generated comment store.
///
/// ```
/// use dox_osn::account::AccountStatus;
/// use dox_osn::clock::SimTime;
/// use dox_osn::network::Network;
/// use dox_osn::platform::SimOsnWorld;
///
/// let mut world = SimOsnWorld::new(7);
/// let id = world.register(
///     Network::Instagram,
///     "victim_a",
///     SimTime::EPOCH,
///     AccountStatus::Public,
/// );
/// world.notify_doxed(id, SimTime::from_days(3));
/// assert!(world.was_doxed(id));
/// assert_eq!(world.resolve(Network::Instagram, "VICTIM_A"), Some(id));
/// ```
#[derive(Debug, Clone)]
pub struct SimOsnWorld {
    registries: HashMap<Network, Registry>,
    behavior: BehaviorModel,
    comment_model: CommentModel,
    comments: Vec<Comment>,
    doxed: HashSet<AccountId>,
    rng: ChaCha8Rng,
}

impl SimOsnWorld {
    /// Create an empty world with the paper-calibrated behaviour model.
    pub fn new(seed: u64) -> Self {
        Self::with_models(BehaviorModel::paper(), CommentModel::default(), seed)
    }

    /// Create a world with explicit models (ablation benches use this).
    pub fn with_models(behavior: BehaviorModel, comment_model: CommentModel, seed: u64) -> Self {
        let registries = Network::ALL
            .iter()
            .map(|&n| (n, Registry::default()))
            .collect();
        Self {
            registries,
            behavior,
            comment_model,
            comments: Vec::new(),
            doxed: HashSet::new(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x05_11),
        }
    }

    /// The behaviour model in force.
    pub fn behavior(&self) -> &BehaviorModel {
        &self.behavior
    }

    /// Register an account.
    pub fn register(
        &mut self,
        network: Network,
        handle: &str,
        created: SimTime,
        initial: AccountStatus,
    ) -> AccountId {
        self.registries
            .get_mut(&network)
            .expect("all networks present")
            .register(network, handle, created, initial)
    }

    /// Register, choosing the initial status from the given distribution
    /// (`p_private` / `p_inactive`, remainder public) and an activity
    /// level from a mean-1 lognormal — most accounts post occasionally,
    /// some are hyperactive, many are effectively abandoned.
    pub fn register_with_status_mix(
        &mut self,
        network: Network,
        handle: &str,
        created: SimTime,
        p_private: f64,
        p_inactive: f64,
    ) -> AccountId {
        let u: f64 = self.rng.random_range(0.0..1.0);
        let initial = if u < p_inactive {
            AccountStatus::Inactive
        } else if u < p_inactive + p_private && network.has_private_state() {
            AccountStatus::Private
        } else {
            AccountStatus::Public
        };
        // Lognormal(μ = −σ²/2, σ = 1) has mean 1 — Box–Muller.
        let u1: f64 = self.rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let activity = (z - 0.5).exp();
        let id = self.register(network, handle, created, initial);
        self.registries
            .get_mut(&network)
            .expect("network present")
            .get_mut(id.uid)
            .expect("just registered")
            .activity = activity;
        id
    }

    /// A network's registry.
    pub fn registry(&self, network: Network) -> &Registry {
        &self.registries[&network]
    }

    /// Resolve a handle on a network.
    pub fn resolve(&self, network: Network, handle: &str) -> Option<AccountId> {
        self.registries[&network].resolve(handle)
    }

    /// Borrow an account.
    pub fn account(&self, id: AccountId) -> Option<&Account> {
        self.registries[&id.network].get(id.uid)
    }

    /// Mark `id` as doxed at `time`: applies the victim-reaction model and
    /// generates the post-dox comment wave if the account is public.
    pub fn notify_doxed(&mut self, id: AccountId, time: SimTime) {
        self.doxed.insert(id);
        let filtered = matches!(
            self.behavior.filters.era(id.network, time),
            crate::filters::FilterEra::PostFilter
        );
        let reg = self
            .registries
            .get_mut(&id.network)
            .expect("network present");
        if let Some(account) = reg.get_mut(id.uid) {
            self.behavior
                .apply_dox_reaction(account, time, &mut self.rng);
            if account.status_at(time) == AccountStatus::Public {
                let wave = self
                    .comment_model
                    .dox_wave(id, time, filtered, &mut self.rng);
                self.comments.extend(wave);
            }
        }
    }

    /// Apply baseline churn to every account of `network` over `window`.
    /// Used to animate the control population.
    pub fn run_baseline_churn(&mut self, network: Network, window: (SimTime, SimTime)) {
        let behavior = self.behavior.clone();
        let reg = self.registries.get_mut(&network).expect("network present");
        for uid in 0..reg.len() as u64 {
            let account = reg.get_mut(uid).expect("uid in range");
            behavior.apply_baseline_churn(account, window, &mut self.rng);
        }
    }

    /// Generate baseline comment streams for the given accounts.
    pub fn generate_baseline_comments(&mut self, ids: &[AccountId], window: (SimTime, SimTime)) {
        for &id in ids {
            let stream = self
                .comment_model
                .baseline_stream(id, window, &mut self.rng);
            self.comments.extend(stream);
        }
    }

    /// All generated comments (ground truth; the scraper filters by
    /// account visibility and probe time).
    pub fn comments(&self) -> &[Comment] {
        &self.comments
    }

    /// Whether `id` has ever been doxed (ground truth, for evaluation).
    pub fn was_doxed(&self, id: AccountId) -> bool {
        self.doxed.contains(&id)
    }

    /// Draw a uniform random sample of `n` Instagram uids (the paper's
    /// control-group technique: Instagram uids are monotonically
    /// increasing, so sampling uids uniformly samples registered users).
    /// Doxed accounts are excluded: Instagram's 600 M users make the
    /// paper's random control "sufficiently likely to be free of doxed
    /// accounts" (§6.2.1); the scaled simulation enforces what full scale
    /// gives for free.
    ///
    /// Sampling is with replacement de-duplicated, so the result may be
    /// slightly smaller than `n` when the registry is small.
    pub fn sample_instagram_uids(&mut self, n: usize) -> Vec<AccountId> {
        let total = self.registries[&Network::Instagram].len() as u64;
        if total == 0 {
            return Vec::new();
        }
        let mut uids: Vec<u64> = (0..n).map(|_| self.rng.random_range(0..total)).collect();
        uids.sort_unstable();
        uids.dedup();
        uids.into_iter()
            .map(|uid| AccountId {
                network: Network::Instagram,
                uid,
            })
            .filter(|id| !self.doxed.contains(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uids_monotonic() {
        let mut w = SimOsnWorld::new(1);
        let a = w.register(
            Network::Instagram,
            "alpha",
            SimTime::EPOCH,
            AccountStatus::Public,
        );
        let b = w.register(
            Network::Instagram,
            "beta",
            SimTime::EPOCH,
            AccountStatus::Public,
        );
        let c = w.register(
            Network::Instagram,
            "gamma",
            SimTime::EPOCH,
            AccountStatus::Public,
        );
        assert!(a.uid < b.uid && b.uid < c.uid);
        // Other networks have independent uid spaces.
        let f = w.register(
            Network::Facebook,
            "alpha",
            SimTime::EPOCH,
            AccountStatus::Public,
        );
        assert_eq!(f.uid, 0);
    }

    #[test]
    fn handle_resolution_case_insensitive() {
        let mut w = SimOsnWorld::new(2);
        let id = w.register(
            Network::Twitter,
            "DoxHunter",
            SimTime::EPOCH,
            AccountStatus::Public,
        );
        assert_eq!(w.resolve(Network::Twitter, "doxhunter"), Some(id));
        assert_eq!(w.resolve(Network::Twitter, "DOXHUNTER"), Some(id));
        assert_eq!(w.resolve(Network::Twitter, "nobody"), None);
        assert_eq!(w.resolve(Network::Facebook, "DoxHunter"), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_handle_panics() {
        let mut w = SimOsnWorld::new(3);
        w.register(
            Network::Twitter,
            "dup",
            SimTime::EPOCH,
            AccountStatus::Public,
        );
        w.register(
            Network::Twitter,
            "DUP",
            SimTime::EPOCH,
            AccountStatus::Public,
        );
    }

    #[test]
    fn notify_doxed_can_change_status_and_spawn_comments() {
        let mut w = SimOsnWorld::new(4);
        let mut ids = Vec::new();
        for i in 0..300 {
            ids.push(w.register(
                Network::Instagram,
                &format!("victim{i}"),
                SimTime::EPOCH,
                AccountStatus::Public,
            ));
        }
        for &id in &ids {
            w.notify_doxed(id, SimTime::from_days(3));
        }
        let changed = ids
            .iter()
            .filter(|id| !w.account(**id).unwrap().transitions().is_empty())
            .count();
        assert!(
            changed > 30,
            "pre-filter Instagram should react ~32%: {changed}"
        );
        assert!(!w.comments().is_empty());
    }

    #[test]
    fn instagram_sampling_uniform_over_uids() {
        let mut w = SimOsnWorld::new(5);
        for i in 0..2000 {
            w.register(
                Network::Instagram,
                &format!("u{i}"),
                SimTime::EPOCH,
                AccountStatus::Public,
            );
        }
        let sample = w.sample_instagram_uids(500);
        assert!(!sample.is_empty());
        assert!(sample.iter().all(|id| id.uid < 2000));
        // roughly half below the median uid
        let below = sample.iter().filter(|id| id.uid < 1000).count();
        let frac = below as f64 / sample.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "frac {frac}");
    }

    #[test]
    fn sampling_empty_registry_is_empty() {
        let mut w = SimOsnWorld::new(6);
        assert!(w.sample_instagram_uids(10).is_empty());
    }

    #[test]
    fn status_mix_distribution() {
        let mut w = SimOsnWorld::new(7);
        for i in 0..5000 {
            w.register_with_status_mix(
                Network::Facebook,
                &format!("m{i}"),
                SimTime::EPOCH,
                0.15,
                0.05,
            );
        }
        let reg = w.registry(Network::Facebook);
        let private = reg
            .accounts()
            .iter()
            .filter(|a| a.initial_status == AccountStatus::Private)
            .count() as f64
            / 5000.0;
        let inactive = reg
            .accounts()
            .iter()
            .filter(|a| a.initial_status == AccountStatus::Inactive)
            .count() as f64
            / 5000.0;
        assert!((private - 0.15).abs() < 0.03, "private {private}");
        assert!((inactive - 0.05).abs() < 0.02, "inactive {inactive}");
    }

    #[test]
    fn registered_activity_is_lognormal_mean_one() {
        let mut w = SimOsnWorld::new(21);
        for i in 0..20_000 {
            w.register_with_status_mix(
                Network::Instagram,
                &format!("a{i}"),
                SimTime::EPOCH,
                0.2,
                0.05,
            );
        }
        let reg = w.registry(Network::Instagram);
        let mean: f64 = reg.accounts().iter().map(|a| a.activity).sum::<f64>() / 20_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean activity {mean}");
        let active = reg.accounts().iter().filter(|a| a.is_active()).count() as f64 / 20_000.0;
        // Lognormal(−0.5, 1): P(X ≥ 0.5) ≈ 0.58 — many accounts idle.
        assert!((0.45..0.72).contains(&active), "active share {active}");
        // Plain `register` leaves the default.
        let id = w.register(
            Network::Twitter,
            "plain",
            SimTime::EPOCH,
            AccountStatus::Public,
        );
        assert_eq!(w.account(id).unwrap().activity, 1.0);
    }

    #[test]
    fn baseline_churn_touches_registry() {
        let mut w = SimOsnWorld::new(8);
        for i in 0..20_000 {
            w.register(
                Network::Instagram,
                &format!("c{i}"),
                SimTime::EPOCH,
                AccountStatus::Public,
            );
        }
        w.run_baseline_churn(Network::Instagram, (SimTime::EPOCH, SimTime::from_days(42)));
        let changed = w
            .registry(Network::Instagram)
            .accounts()
            .iter()
            .filter(|a| !a.transitions().is_empty())
            .count();
        // baseline any-change = 0.2 %: expect ~40 of 20k
        assert!((10..=90).contains(&changed), "changed = {changed}");
    }
}
