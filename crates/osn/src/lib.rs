//! # dox-osn
//!
//! A simulated online-social-network substrate for the doxing measurement
//! reproduction.
//!
//! The paper (§3.1.5, §6) repeatedly probes the OSN accounts referenced in
//! dox files — recording whether each account is public, private or
//! inactive, plus the text of public comments — and compares their
//! behaviour against a 13,392-account random Instagram control sample.
//! Live accounts obviously cannot be re-measured, so this crate implements
//! platforms whose *observable surface is identical to the paper's vantage
//! point* (status probes and public-content fetches, nothing else) and
//! whose behavioural model embeds the phenomena the paper measured:
//!
//! - [`clock`] — simulation time (minutes since study start).
//! - [`network`] — the measured networks and their properties.
//! - [`account`] — accounts, privacy status and status timelines.
//! - [`filters`] — abuse-filter deployment eras (Facebook & Instagram
//!   deployed filters between the two collection periods).
//! - [`behavior`] — the victim-reaction model: per-network, per-era
//!   probabilities of going private / closing / reopening after a dox, and
//!   the reaction-delay distribution (35.8 % react within 24 h, 90.6 %
//!   within 7 days); plus baseline churn for the control population.
//! - [`comments`] — comment streams on public accounts (9,792 commenters,
//!   no cross-account commenters — §5.3.2).
//! - [`platform`] — the account registries, including Instagram's
//!   monotonically increasing user ids that make random control sampling
//!   possible.
//! - [`scraper`] — the measurement client: status probes, public-content
//!   fetches, request accounting and a rate limiter.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod account;
pub mod behavior;
pub mod clock;
pub mod comments;
pub mod filters;
pub mod network;
pub mod platform;
pub mod scraper;

pub use account::{Account, AccountId, AccountStatus};
pub use clock::SimTime;
pub use network::Network;
pub use platform::SimOsnWorld;
pub use scraper::Scraper;
