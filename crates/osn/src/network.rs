//! The online social networks measured by the paper.
//!
//! Table 9 counts dox-file references to Facebook, Google+, Twitter,
//! Instagram, YouTube and Twitch; the extractor evaluation (Table 2) also
//! covers Skype handles. Each network carries the metadata the extractor
//! and the simulator need: URL host patterns, the label aliases doxers use,
//! and whether the platform distinguishes a "private" state at all.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A measured social network (plus Skype, which Table 2 extracts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Network {
    /// facebook.com — most frequent network in dox files (Table 9).
    Facebook,
    /// plus.google.com.
    GooglePlus,
    /// twitter.com.
    Twitter,
    /// instagram.com — used for the random control sample.
    Instagram,
    /// youtube.com.
    YouTube,
    /// twitch.tv.
    Twitch,
    /// Skype — a handle-only service, no profile URL or privacy states.
    Skype,
}

// The vendored serde cannot derive `Deserialize`; unit variants
// round-trip as their variant-name strings.
impl serde::Deserialize for Network {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        match value.as_str()? {
            "Facebook" => Some(Network::Facebook),
            "GooglePlus" => Some(Network::GooglePlus),
            "Twitter" => Some(Network::Twitter),
            "Instagram" => Some(Network::Instagram),
            "YouTube" => Some(Network::YouTube),
            "Twitch" => Some(Network::Twitch),
            "Skype" => Some(Network::Skype),
            _ => None,
        }
    }
}

impl Network {
    /// All networks, in Table 9 order (Skype last).
    pub const ALL: [Network; 7] = [
        Network::Facebook,
        Network::GooglePlus,
        Network::Twitter,
        Network::Instagram,
        Network::YouTube,
        Network::Twitch,
        Network::Skype,
    ];

    /// The six networks whose accounts the scraper monitors (Skype has no
    /// public profile to probe).
    pub const MONITORED: [Network; 6] = [
        Network::Facebook,
        Network::GooglePlus,
        Network::Twitter,
        Network::Instagram,
        Network::YouTube,
        Network::Twitch,
    ];

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            Network::Facebook => "Facebook",
            Network::GooglePlus => "Google+",
            Network::Twitter => "Twitter",
            Network::Instagram => "Instagram",
            Network::YouTube => "YouTube",
            Network::Twitch => "Twitch",
            Network::Skype => "Skype",
        }
    }

    /// URL hostnames whose paths contain profile handles.
    pub fn url_hosts(self) -> &'static [&'static str] {
        match self {
            Network::Facebook => &[
                "facebook.com",
                "www.facebook.com",
                "fb.me",
                "m.facebook.com",
            ],
            Network::GooglePlus => &["plus.google.com"],
            Network::Twitter => &["twitter.com", "www.twitter.com", "mobile.twitter.com"],
            Network::Instagram => &["instagram.com", "www.instagram.com"],
            Network::YouTube => &["youtube.com", "www.youtube.com", "youtu.be"],
            Network::Twitch => &["twitch.tv", "www.twitch.tv"],
            Network::Skype => &[],
        }
    }

    /// Lowercase label aliases doxers use in `label: value` lines
    /// ("FB example", "fbs: a - b", "ig", "insta", …).
    pub fn label_aliases(self) -> &'static [&'static str] {
        match self {
            Network::Facebook => &["facebook", "facebooks", "fb", "fbs", "face book"],
            Network::GooglePlus => &["google+", "googleplus", "google plus", "g+", "gplus"],
            Network::Twitter => &["twitter", "twitters", "twit"],
            Network::Instagram => &["instagram", "insta", "ig", "instagrams"],
            Network::YouTube => &["youtube", "yt", "you tube", "channel"],
            Network::Twitch => &["twitch", "ttv"],
            Network::Skype => &["skype", "skypes"],
        }
    }

    /// Whether the platform supports a "private/protected" account state
    /// visible from the outside. (YouTube channels are either up or
    /// terminated; Skype has no profile page at all.)
    pub fn has_private_state(self) -> bool {
        !matches!(self, Network::YouTube | Network::Skype)
    }

    /// Parse from any known alias or display name (case-insensitive).
    pub fn parse(text: &str) -> Option<Network> {
        let t = text.trim().to_lowercase();
        Network::ALL
            .into_iter()
            .find(|&n| n.name().to_lowercase() == t || n.label_aliases().contains(&t.as_str()))
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = Network::ALL.iter().map(|n| n.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Network::ALL.len());
    }

    #[test]
    fn parse_by_name_and_alias() {
        assert_eq!(Network::parse("Facebook"), Some(Network::Facebook));
        assert_eq!(Network::parse("fbs"), Some(Network::Facebook));
        assert_eq!(Network::parse(" IG "), Some(Network::Instagram));
        assert_eq!(Network::parse("g+"), Some(Network::GooglePlus));
        assert_eq!(Network::parse("ttv"), Some(Network::Twitch));
        assert_eq!(Network::parse("myspace"), None);
    }

    #[test]
    fn monitored_excludes_skype() {
        assert!(!Network::MONITORED.contains(&Network::Skype));
        assert_eq!(Network::MONITORED.len(), 6);
    }

    #[test]
    fn privacy_support() {
        assert!(Network::Facebook.has_private_state());
        assert!(Network::Instagram.has_private_state());
        assert!(!Network::YouTube.has_private_state());
        assert!(!Network::Skype.has_private_state());
    }

    #[test]
    fn hosts_known_for_monitored() {
        for n in Network::MONITORED {
            assert!(!n.url_hosts().is_empty(), "{n} needs URL hosts");
        }
        assert!(Network::Skype.url_hosts().is_empty());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Network::GooglePlus.to_string(), "Google+");
    }
}
