//! The measurement client: the paper's vantage point, in code.
//!
//! §3.1.5: "We visited each referenced online social networking account
//! several times over the study period. Each time we checked to see if the
//! account was in a public, private, or deleted/disabled state. For
//! accounts that were public … we also recorded the text of the public
//! posts … and comments." All probes came from a single IP.
//!
//! [`Scraper`] enforces exactly that observability: a status probe returns
//! only the status at the probe time; comment fetches return only comments
//! already posted on a currently-public account. A token-bucket rate
//! limiter models the single-vantage-point request budget, and every
//! request is accounted.

use crate::account::{AccountId, AccountStatus};
use crate::clock::{SimDuration, SimTime};
use crate::comments::Comment;
use crate::platform::SimOsnWorld;
use serde::{Deserialize, Serialize};

/// One observation of an account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// The account observed.
    pub account: AccountId,
    /// Probe time.
    pub at: SimTime,
    /// Status seen.
    pub status: AccountStatus,
}

// The vendored serde cannot derive `Deserialize`; structs round-trip
// as field objects with unknown fields rejected.
impl Deserialize for Observation {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        let mut account = None;
        let mut at = None;
        let mut status = None;
        for (field, v) in value.as_object()? {
            match field.as_str() {
                "account" => account = Some(AccountId::from_value(v)?),
                "at" => at = Some(SimTime::from_value(v)?),
                "status" => status = Some(AccountStatus::from_value(v)?),
                _ => return None,
            }
        }
        Some(Self {
            account: account?,
            at: at?,
            status: status?,
        })
    }
}

/// Errors a scrape request can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrapeError {
    /// The account id does not exist on the platform.
    UnknownAccount(AccountId),
    /// The per-day request budget is exhausted at this sim time.
    RateLimited {
        /// When the limiter will next admit a request.
        retry_at: SimTime,
    },
}

impl std::fmt::Display for ScrapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownAccount(id) => {
                write!(f, "unknown account uid {} on {}", id.uid, id.network)
            }
            Self::RateLimited { retry_at } => write!(f, "rate limited until {retry_at}"),
        }
    }
}

impl std::error::Error for ScrapeError {}

/// Token-bucket rate limiter over simulation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateLimiter {
    /// Requests admitted per sim-day.
    pub per_day: u64,
    tokens: f64,
    last_refill: SimTime,
}

impl RateLimiter {
    /// A limiter admitting `per_day` requests per simulated day.
    ///
    /// # Panics
    /// Panics when `per_day == 0`.
    pub fn new(per_day: u64) -> Self {
        assert!(per_day > 0, "rate must be positive");
        Self {
            per_day,
            tokens: per_day as f64,
            last_refill: SimTime::EPOCH,
        }
    }

    /// Try to admit one request at `now`.
    pub fn admit(&mut self, now: SimTime) -> Result<(), ScrapeError> {
        // Refill proportionally to elapsed time; cap at one day's budget.
        let elapsed = now.since(self.last_refill).0 as f64;
        self.tokens =
            (self.tokens + elapsed * self.per_day as f64 / 1440.0).min(self.per_day as f64);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            let wait_min = (deficit * 1440.0 / self.per_day as f64).ceil() as u64;
            Err(ScrapeError::RateLimited {
                retry_at: now + SimDuration(wait_min.max(1)),
            })
        }
    }
}

/// The scraping client.
#[derive(Debug, Clone)]
pub struct Scraper {
    limiter: RateLimiter,
    requests_made: u64,
    observations: Vec<Observation>,
}

impl Scraper {
    /// A scraper with the given request budget per simulated day.
    pub fn new(requests_per_day: u64) -> Self {
        Self {
            limiter: RateLimiter::new(requests_per_day),
            requests_made: 0,
            observations: Vec::new(),
        }
    }

    /// A scraper with an effectively unlimited budget (analysis-scale runs).
    pub fn unlimited() -> Self {
        Self::new(u64::MAX / 2)
    }

    /// Probe the status of `id` at `now`.
    pub fn probe(
        &mut self,
        world: &SimOsnWorld,
        id: AccountId,
        now: SimTime,
    ) -> Result<Observation, ScrapeError> {
        self.limiter.admit(now)?;
        self.requests_made += 1;
        let account = world.account(id).ok_or(ScrapeError::UnknownAccount(id))?;
        let obs = Observation {
            account: id,
            at: now,
            status: account.status_at(now),
        };
        self.observations.push(obs);
        Ok(obs)
    }

    /// Fetch the public comments visible on `id` at `now`.
    ///
    /// Returns an empty list when the account is private or inactive — the
    /// vantage point has no social tie to any account (§3.1.5).
    pub fn fetch_comments(
        &mut self,
        world: &SimOsnWorld,
        id: AccountId,
        now: SimTime,
    ) -> Result<Vec<Comment>, ScrapeError> {
        self.limiter.admit(now)?;
        self.requests_made += 1;
        let account = world.account(id).ok_or(ScrapeError::UnknownAccount(id))?;
        if account.status_at(now) != AccountStatus::Public {
            return Ok(Vec::new());
        }
        Ok(world
            .comments()
            .iter()
            .filter(|c| c.on_account == id && c.at <= now)
            .cloned()
            .collect())
    }

    /// Total requests issued (probes + comment fetches).
    pub fn requests_made(&self) -> u64 {
        self.requests_made
    }

    /// Every observation recorded so far, in probe order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn world_with_account() -> (SimOsnWorld, AccountId) {
        let mut w = SimOsnWorld::new(9);
        let id = w.register(
            Network::Instagram,
            "probed",
            SimTime::EPOCH,
            AccountStatus::Public,
        );
        (w, id)
    }

    #[test]
    fn probe_sees_status_at_time() {
        let (mut w, id) = world_with_account();
        w.notify_doxed(id, SimTime::from_days(5));
        let mut s = Scraper::unlimited();
        let early = s.probe(&w, id, SimTime::from_days(0)).unwrap();
        assert_eq!(early.status, AccountStatus::Public);
        // Whatever happened later, the early observation is unchanged and
        // late probes agree with ground truth.
        let late = s.probe(&w, id, SimTime::from_days(60)).unwrap();
        assert_eq!(
            late.status,
            w.account(id).unwrap().status_at(SimTime::from_days(60))
        );
        assert_eq!(s.observations().len(), 2);
        assert_eq!(s.requests_made(), 2);
    }

    #[test]
    fn unknown_account_errors() {
        let (w, id) = world_with_account();
        let mut s = Scraper::unlimited();
        let bogus = AccountId {
            network: id.network,
            uid: 999,
        };
        assert_eq!(
            s.probe(&w, bogus, SimTime::EPOCH),
            Err(ScrapeError::UnknownAccount(bogus))
        );
    }

    #[test]
    fn comments_only_visible_on_public_accounts() {
        let (mut w, id) = world_with_account();
        w.generate_baseline_comments(&[id], (SimTime::EPOCH, SimTime::from_days(10)));
        let mut s = Scraper::unlimited();
        let visible = s.fetch_comments(&w, id, SimTime::from_days(20)).unwrap();
        assert!(!visible.is_empty());
        // Force the account private; comments disappear from view.
        let mut w2 = SimOsnWorld::new(10);
        let id2 = w2.register(
            Network::Instagram,
            "hidden",
            SimTime::EPOCH,
            AccountStatus::Private,
        );
        w2.generate_baseline_comments(&[id2], (SimTime::EPOCH, SimTime::from_days(10)));
        assert!(s
            .fetch_comments(&w2, id2, SimTime::from_days(20))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn comments_respect_probe_time() {
        let (mut w, id) = world_with_account();
        w.generate_baseline_comments(&[id], (SimTime::from_days(5), SimTime::from_days(10)));
        let mut s = Scraper::unlimited();
        let before = s.fetch_comments(&w, id, SimTime::from_days(4)).unwrap();
        assert!(before.is_empty(), "comments from the future leaked");
        let after = s.fetch_comments(&w, id, SimTime::from_days(11)).unwrap();
        assert_eq!(
            after.len(),
            w.comments().iter().filter(|c| c.on_account == id).count()
        );
    }

    #[test]
    fn rate_limiter_blocks_then_recovers() {
        let mut rl = RateLimiter::new(2);
        let t = SimTime::from_days(1);
        assert!(rl.admit(t).is_ok());
        assert!(rl.admit(t).is_ok());
        let err = rl.admit(t).unwrap_err();
        match err {
            ScrapeError::RateLimited { retry_at } => {
                assert!(retry_at > t);
                assert!(rl.admit(retry_at + SimDuration::from_hours(12)).is_ok());
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
    }

    #[test]
    fn limiter_caps_burst_at_one_day_budget() {
        let mut rl = RateLimiter::new(10);
        // After a long idle period the bucket holds at most one day's worth.
        let t = SimTime::from_days(100);
        let mut admitted = 0;
        while rl.admit(t).is_ok() {
            admitted += 1;
            assert!(admitted < 100, "bucket failed to cap");
        }
        assert_eq!(admitted, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        RateLimiter::new(0);
    }
}
