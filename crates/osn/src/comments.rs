//! Comment streams on public accounts.
//!
//! §5.3.2 of the paper records 33,570 comments left on doxed victims'
//! public accounts by 9,792 distinct commenters, and finds **no** commenter
//! appearing on more than one victim's account. The simulator generates
//! comments accordingly: each account draws from its own commenter pool
//! (pools are disjoint by construction — uid-namespaced per account), and
//! after a dox the comment rate spikes with a harassing fraction.

use crate::account::AccountId;
use crate::clock::{SimDuration, SimTime};
use rand::RngExt;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The tone of a comment (ground truth; the scraper only sees text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommentTone {
    /// Ordinary social chatter.
    Benign,
    /// Harassing / abusive content (the kind anti-abuse filters target).
    Abusive,
}

/// A comment left on an account's public content.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comment {
    /// The account commented on.
    pub on_account: AccountId,
    /// Commenter identity — globally unique, namespaced per account so
    /// commenter pools are disjoint (matching the §5.3.2 observation).
    pub commenter: String,
    /// When the comment was posted.
    pub at: SimTime,
    /// The comment body.
    pub text: String,
    /// Ground-truth tone.
    pub tone: CommentTone,
}

/// Parameters of the comment generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommentModel {
    /// Expected benign comments per account over a study window.
    pub benign_per_account: f64,
    /// Expected post-dox comments on a public account (harassment wave).
    pub dox_wave_mean: f64,
    /// Fraction of post-dox comments that are abusive, pre-filter.
    pub abusive_share_pre: f64,
    /// Fraction abusive once filters deploy (filters hide abusive content).
    pub abusive_share_post: f64,
    /// Days over which the post-dox wave decays.
    pub wave_days: f64,
}

impl Default for CommentModel {
    fn default() -> Self {
        Self {
            benign_per_account: 10.0,
            dox_wave_mean: 24.0,
            abusive_share_pre: 0.45,
            abusive_share_post: 0.12,
            wave_days: 10.0,
        }
    }
}

const BENIGN_TEMPLATES: &[&str] = &[
    "great post!",
    "love this",
    "haha nice one",
    "where was this taken?",
    "awesome, congrats",
    "miss you, we should catch up",
    "this is so cool",
    "nice shot",
];

const ABUSIVE_TEMPLATES: &[&str] = &[
    "we know where you live now",
    "everyone has seen your info, good luck",
    "you got dropped, log off",
    "nice address lol",
    "check the paste, it's all there",
    "delete your account while you still can",
    "your phone is about to blow up",
];

impl CommentModel {
    /// Generate the baseline (pre-dox) comment stream for one account over
    /// `[window.0, window.1)`.
    pub fn baseline_stream(
        &self,
        account: AccountId,
        window: (SimTime, SimTime),
        rng: &mut ChaCha8Rng,
    ) -> Vec<Comment> {
        let n = poisson(self.benign_per_account, rng);
        let span = window.1.since(window.0).0.max(1);
        (0..n)
            .map(|k| {
                let at = SimTime(window.0 .0 + rng.random_range(0..span));
                Comment {
                    on_account: account,
                    commenter: commenter_name(account, k, rng),
                    at,
                    text: BENIGN_TEMPLATES[rng.random_range(0..BENIGN_TEMPLATES.len())].into(),
                    tone: CommentTone::Benign,
                }
            })
            .collect()
    }

    /// Generate the post-dox harassment wave for one account doxed at
    /// `dox_time`. `filtered` selects the post-filter abusive share.
    pub fn dox_wave(
        &self,
        account: AccountId,
        dox_time: SimTime,
        filtered: bool,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Comment> {
        let n = poisson(self.dox_wave_mean, rng);
        let abusive_share = if filtered {
            self.abusive_share_post
        } else {
            self.abusive_share_pre
        };
        (0..n)
            .map(|k| {
                // Exponential-ish decay over the wave: early-heavy delays.
                let u: f64 = rng.random_range(0.0f64..1.0).max(1e-9);
                let days = -u.ln() / 3.0 * self.wave_days;
                let days = days.min(self.wave_days * 3.0);
                let at = dox_time + SimDuration((days * 1440.0) as u64);
                let abusive = rng.random_range(0.0..1.0) < abusive_share;
                let (text, tone) = if abusive {
                    (
                        ABUSIVE_TEMPLATES[rng.random_range(0..ABUSIVE_TEMPLATES.len())],
                        CommentTone::Abusive,
                    )
                } else {
                    (
                        BENIGN_TEMPLATES[rng.random_range(0..BENIGN_TEMPLATES.len())],
                        CommentTone::Benign,
                    )
                };
                Comment {
                    on_account: account,
                    commenter: commenter_name(account, 100_000 + k, rng),
                    at,
                    text: text.into(),
                    tone,
                }
            })
            .collect()
    }
}

/// Commenter identity namespaced by account: `"c<net>-<uid>-<pool slot>"`.
///
/// Namespacing guarantees disjoint commenter pools across accounts (the
/// §5.3.2 finding), while the bounded per-account pool makes commenters
/// repeat: the paper saw ≈ 3.4 comments per distinct commenter (33,570
/// comments from 9,792 commenters).
fn commenter_name(account: AccountId, _k: u64, rng: &mut ChaCha8Rng) -> String {
    // A social circle of ~12 people leaves most of an account's comments
    // (calibrated to the paper's 33,570 comments / 9,792 commenters).
    let slot: u32 = rng.random_range(0..12);
    format!(
        "c{}-{}-{slot}",
        account.network.name().to_lowercase().replace('+', "p"),
        account.uid
    )
}

/// Sample a Poisson variate via inversion (adequate for small means).
fn poisson(mean: f64, rng: &mut ChaCha8Rng) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.random_range(0.0..1.0f64);
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use rand_chacha::rand_core::SeedableRng;
    use std::collections::HashSet;

    fn aid(uid: u64) -> AccountId {
        AccountId {
            network: Network::Instagram,
            uid,
        }
    }

    #[test]
    fn baseline_stream_within_window() {
        let m = CommentModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = (SimTime::from_days(0), SimTime::from_days(42));
        let stream = m.baseline_stream(aid(1), w, &mut rng);
        for c in &stream {
            assert!(c.at >= w.0 && c.at < w.1);
            assert_eq!(c.tone, CommentTone::Benign);
        }
    }

    #[test]
    fn commenter_pools_disjoint_across_accounts() {
        let m = CommentModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let w = (SimTime::from_days(0), SimTime::from_days(42));
        let a: HashSet<String> = m
            .baseline_stream(aid(1), w, &mut rng)
            .into_iter()
            .map(|c| c.commenter)
            .collect();
        let b: HashSet<String> = m
            .baseline_stream(aid(2), w, &mut rng)
            .into_iter()
            .map(|c| c.commenter)
            .collect();
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn dox_wave_is_early_heavy() {
        let m = CommentModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t0 = SimTime::from_days(10);
        let mut early = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            for c in m.dox_wave(aid(9), t0, false, &mut rng) {
                total += 1;
                if c.at.since(t0).days_f64() < m.wave_days {
                    early += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            early as f64 / total as f64 > 0.8,
            "wave should concentrate early: {early}/{total}"
        );
    }

    #[test]
    fn filtering_reduces_abusive_share() {
        let m = CommentModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let t0 = SimTime::from_days(10);
        let share = |filtered: bool, rng: &mut ChaCha8Rng| {
            let mut abusive = 0usize;
            let mut total = 0usize;
            for _ in 0..200 {
                for c in m.dox_wave(aid(5), t0, filtered, rng) {
                    total += 1;
                    if c.tone == CommentTone::Abusive {
                        abusive += 1;
                    }
                }
            }
            abusive as f64 / total.max(1) as f64
        };
        let pre = share(false, &mut rng);
        let post = share(true, &mut rng);
        assert!((pre - 0.45).abs() < 0.05, "pre {pre}");
        assert!((post - 0.12).abs() < 0.05, "post {post}");
    }

    #[test]
    fn poisson_mean_approximately_right() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(7.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 7.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert_eq!(poisson(0.0, &mut rng), 0);
    }
}
