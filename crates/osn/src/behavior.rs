//! The behavioural model: how accounts react to being doxed, and how the
//! control population churns on its own.
//!
//! This is the heart of the OSN substitution. The paper *measures* how
//! often doxed accounts become more private / more public / change at all
//! (Table 10), how quickly they react (35.8 % of more-private changes
//! within 24 h, 90.6 % within 7 days — §6.3), and how abuse filters changed
//! those rates. The simulator *embeds* those phenomena as generative
//! parameters; the measurement pipeline then has to recover them through
//! the same scrape-and-diff procedure the paper used. Every rate below is
//! cited to the paper table it comes from.
//!
//! Table 10 reports **population-level** outcome fractions over accounts in
//! mixed initial states (some already private when the dox landed). The
//! model therefore stores population targets and converts them into
//! state-conditional transition probabilities against the standard
//! [`InitialMix`]: a private account can only become "more public" by
//! reopening, a public account can only become "more private", and the
//! conversion makes the population-level measurement land on the paper's
//! numbers.

use crate::account::{Account, AccountStatus};
use crate::clock::{SimDuration, SimTime};
use crate::filters::{FilterEra, FilterSchedule};
use crate::network::Network;
use rand::RngExt;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The standard initial status mix of accounts mentioned in dox files.
///
/// Doxers list accounts regardless of their privacy state; some victims
/// were already private (that is how reopening — "more public" outcomes at
/// 8.1 % on pre-filter Instagram — is possible at all).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InitialMix {
    /// Fraction initially private.
    pub private: f64,
    /// Fraction initially inactive (dead links in dox files).
    pub inactive: f64,
}

impl InitialMix {
    /// The calibrated mix: 20 % private, 5 % inactive, 75 % public.
    pub fn paper() -> Self {
        Self {
            private: 0.20,
            inactive: 0.05,
        }
    }

    /// Fraction initially public.
    pub fn public(&self) -> f64 {
        (1.0 - self.private - self.inactive).max(0.0)
    }
}

/// Population-level reaction targets for one (network, era) cell of paper
/// Table 10.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactionRates {
    /// Fraction of doxed accounts ending the study more private than they
    /// began (includes closing entirely).
    pub more_private: f64,
    /// Fraction ending more public (private accounts reopening).
    pub more_public: f64,
    /// Fraction with a change that reverts (contributes to "any change"
    /// without shifting the end state).
    pub transient_change: f64,
    /// Among more-private outcomes of public accounts, the share that close
    /// outright (Inactive) rather than going Private.
    pub close_share: f64,
}

impl ReactionRates {
    /// Population-level probability of any change at all.
    pub fn any_change(&self) -> f64 {
        self.more_private + self.more_public + self.transient_change
    }

    /// Convert population targets into state-conditional probabilities
    /// under `mix`. Returns `(go_more_private, reopen_if_private,
    /// transient_if_public)`; networks without a private state get
    /// `reopen = 0`.
    fn conditional(&self, mix: &InitialMix, has_private: bool) -> (f64, f64, f64) {
        let active = (1.0 - mix.inactive).max(1e-9);
        let go_private = (self.more_private / active).min(1.0);
        let reopen = if has_private && mix.private > 0.0 {
            (self.more_public / mix.private).min(1.0)
        } else {
            0.0
        };
        let pub_share = mix.public().max(1e-9);
        let transient = (self.transient_change / pub_share).min(1.0);
        (go_private, reopen, transient)
    }
}

/// Mixture model for the delay between a dox appearing and the victim's
/// privacy reaction, matching §6.3: 35.8 % within 24 h, 90.6 % within 7
/// days, remainder within 28 days.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    /// P(delay < 24 h).
    pub within_day: f64,
    /// P(delay < 7 days) — cumulative, must be ≥ `within_day`.
    pub within_week: f64,
    /// Upper bound for the slow tail, in days.
    pub max_days: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        Self {
            within_day: 0.358,
            within_week: 0.906,
            max_days: 28.0,
        }
    }
}

/// The full behavioural model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorModel {
    /// Filter deployment schedule (decides which era a dox falls into).
    pub filters: FilterSchedule,
    /// Initial-status mix of dox-mentioned accounts.
    pub mix: InitialMix,
    /// Baseline per-study rates for undoxed accounts (Instagram control
    /// row of Table 10: 0.1 % more private, 0.1 % more public over the
    /// measurement window).
    pub baseline: ReactionRates,
    /// Reaction-delay distribution parameters.
    pub delay: DelayModel,
}

impl Default for BehaviorModel {
    fn default() -> Self {
        Self::paper()
    }
}

impl BehaviorModel {
    /// The paper-calibrated model.
    pub fn paper() -> Self {
        Self {
            filters: FilterSchedule::paper(),
            mix: InitialMix::paper(),
            baseline: ReactionRates {
                // Instagram Default row, Table 10: 0.1 / 0.1 / 0.2 %.
                more_private: 0.001,
                more_public: 0.001,
                transient_change: 0.0,
                close_share: 0.5,
            },
            delay: DelayModel::default(),
        }
    }

    /// Reaction targets for a dox on `network` observed at `time`
    /// (Table 10, with transient = any-change − more-private − more-public).
    pub fn rates(&self, network: Network, time: SimTime) -> ReactionRates {
        let era = self.filters.era(network, time);
        use FilterEra::*;
        use Network::*;
        match (network, era) {
            // Instagram Doxed pre: 17.2 / 8.1 / 32.2 %.
            (Instagram, PreFilter) => ReactionRates {
                more_private: 0.172,
                more_public: 0.081,
                transient_change: 0.069,
                close_share: 0.35,
            },
            // Instagram Doxed post: 5.7 / 1.4 / 9.9 %.
            (Instagram, PostFilter) => ReactionRates {
                more_private: 0.057,
                more_public: 0.014,
                transient_change: 0.028,
                close_share: 0.35,
            },
            // Facebook Doxed pre: 22.0 / 2.0 / 24.6 %.
            (Facebook, PreFilter) => ReactionRates {
                more_private: 0.220,
                more_public: 0.020,
                transient_change: 0.006,
                close_share: 0.40,
            },
            // Facebook Doxed post: 3.0 / <0.1 / 3.3 %.
            (Facebook, PostFilter) => ReactionRates {
                more_private: 0.030,
                more_public: 0.0009,
                transient_change: 0.002,
                close_share: 0.40,
            },
            // Twitter Doxed (no filter change): 6.9 / 2.6 / 10.5 %.
            (Twitter, _) => ReactionRates {
                more_private: 0.069,
                more_public: 0.026,
                transient_change: 0.010,
                close_share: 0.45,
            },
            // YouTube Doxed: 0.5 / 0.0 / 1.0 % — and YouTube has no
            // private state, so every more-private outcome is a closure.
            (YouTube, _) => ReactionRates {
                more_private: 0.005,
                more_public: 0.0,
                transient_change: 0.005,
                close_share: 1.0,
            },
            // Google+ and Twitch: not separately reported in Table 10;
            // modeled at Twitter-like rates (personal-but-secondary
            // networks). Documented as an assumption in DESIGN.md.
            (GooglePlus, _) | (Twitch, _) => ReactionRates {
                more_private: 0.060,
                more_public: 0.020,
                transient_change: 0.010,
                close_share: 0.45,
            },
            (Skype, _) => ReactionRates {
                more_private: 0.0,
                more_public: 0.0,
                transient_change: 0.0,
                close_share: 0.0,
            },
        }
    }

    /// Sample a reaction delay from the mixture in [`DelayModel`].
    pub fn sample_delay(&self, rng: &mut ChaCha8Rng) -> SimDuration {
        let u: f64 = rng.random_range(0.0..1.0);
        let days = if u < self.delay.within_day {
            rng.random_range(0.0..1.0)
        } else if u < self.delay.within_week {
            rng.random_range(1.0..7.0)
        } else {
            rng.random_range(7.0..self.delay.max_days)
        };
        SimDuration((days * 24.0 * 60.0).round() as u64)
    }

    /// Apply the doxing reaction to `account`, whose owner was doxed at
    /// `dox_time`. Appends the sampled transitions to the account timeline.
    ///
    /// Transitions realized from the population targets:
    /// - *more private*: Public → Private (or → Inactive for the
    ///   `close_share` fraction); Private → Inactive.
    /// - *more public*: Private → Public. Inactive accounts stay gone.
    /// - *transient*: Public flips private, reverts 2–10 days later.
    pub fn apply_dox_reaction(
        &self,
        account: &mut Account,
        dox_time: SimTime,
        rng: &mut ChaCha8Rng,
    ) {
        let rates = self.rates(account.id.network, dox_time);
        self.apply_reaction_with(&rates, account, dox_time, rng);
    }

    /// Like [`BehaviorModel::apply_dox_reaction`] but with explicit rates —
    /// ablation benchmarks inject counterfactual rate tables through this.
    pub fn apply_reaction_with(
        &self,
        rates: &ReactionRates,
        account: &mut Account,
        dox_time: SimTime,
        rng: &mut ChaCha8Rng,
    ) {
        let has_private = account.id.network.has_private_state();
        let (go_private, reopen, transient) = rates.conditional(&self.mix, has_private);
        let start = account.status_at(dox_time);
        let when = dox_time + self.sample_delay(rng);
        let u: f64 = rng.random_range(0.0..1.0);

        match start {
            AccountStatus::Public => {
                if u < go_private {
                    let closes = rng.random_range(0.0..1.0) < rates.close_share || !has_private;
                    let to = if closes {
                        AccountStatus::Inactive
                    } else {
                        AccountStatus::Private
                    };
                    account.push_transition(when, to);
                } else if u < go_private + transient && has_private {
                    account.push_transition(when, AccountStatus::Private);
                    let revert_days: f64 = rng.random_range(2.0..10.0);
                    account.push_transition(
                        when + SimDuration((revert_days * 1440.0) as u64),
                        AccountStatus::Public,
                    );
                }
            }
            AccountStatus::Private => {
                if u < go_private {
                    account.push_transition(when, AccountStatus::Inactive);
                } else if u < go_private + reopen {
                    account.push_transition(when, AccountStatus::Public);
                }
            }
            AccountStatus::Inactive => {}
        }
    }

    /// Apply baseline (undoxed) churn across the window `[start, end)`.
    /// Matches the Instagram control row of Table 10 when run over a
    /// population in the standard [`InitialMix`].
    ///
    /// Churn scales with the account's activity level (clamped to
    /// `[0.1, 4]`): people who use an account are the ones who fiddle with
    /// its settings. Activity has mean 1 across the population, so the
    /// population-level rate still matches the control row while an
    /// *active-only* sub-population churns more — the comparison the
    /// paper's §6.2.1 leaves to future work.
    pub fn apply_baseline_churn(
        &self,
        account: &mut Account,
        window: (SimTime, SimTime),
        rng: &mut ChaCha8Rng,
    ) {
        let has_private = account.id.network.has_private_state();
        let (mut go_private, mut reopen, _) = self.baseline.conditional(&self.mix, has_private);
        let scale = account.activity.clamp(0.1, 4.0);
        go_private = (go_private * scale).min(1.0);
        reopen = (reopen * scale).min(1.0);
        let span = window.1.since(window.0).0.max(1);
        let at = SimTime(window.0 .0 + rng.random_range(0..span));
        let start = account.status_at(at);
        let u: f64 = rng.random_range(0.0..1.0);
        match start {
            AccountStatus::Public => {
                if u < go_private {
                    let to =
                        if rng.random_range(0.0..1.0) < self.baseline.close_share || !has_private {
                            AccountStatus::Inactive
                        } else {
                            AccountStatus::Private
                        };
                    account.push_transition(at, to);
                }
            }
            AccountStatus::Private => {
                if u < go_private {
                    account.push_transition(at, AccountStatus::Inactive);
                } else if u < go_private + reopen {
                    account.push_transition(at, AccountStatus::Public);
                }
            }
            AccountStatus::Inactive => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountId;
    use rand_chacha::rand_core::SeedableRng;

    fn mk_account(network: Network, uid: u64, status: AccountStatus) -> Account {
        Account::new(
            AccountId { network, uid },
            format!("user{uid}"),
            SimTime::EPOCH,
            status,
        )
    }

    /// Sample an initial status from the paper mix.
    fn mixed_status(rng: &mut ChaCha8Rng, has_private: bool) -> AccountStatus {
        let mix = InitialMix::paper();
        let u: f64 = rng.random_range(0.0..1.0);
        if u < mix.inactive {
            AccountStatus::Inactive
        } else if u < mix.inactive + mix.private && has_private {
            AccountStatus::Private
        } else {
            AccountStatus::Public
        }
    }

    #[test]
    fn rates_match_table10_pre_post() {
        let m = BehaviorModel::paper();
        let pre = m.rates(Network::Instagram, SimTime::from_days(5));
        let post = m.rates(Network::Instagram, SimTime::from_days(160));
        assert_eq!(pre.more_private, 0.172);
        assert_eq!(post.more_private, 0.057);
        assert!((pre.any_change() - 0.322).abs() < 1e-9);
        assert!((post.any_change() - 0.099).abs() < 1e-9);
        let fb_pre = m.rates(Network::Facebook, SimTime::from_days(5));
        let fb_post = m.rates(Network::Facebook, SimTime::from_days(160));
        assert_eq!(fb_pre.more_private, 0.220);
        assert_eq!(fb_post.more_private, 0.030);
    }

    #[test]
    fn twitter_rates_era_independent() {
        let m = BehaviorModel::paper();
        assert_eq!(
            m.rates(Network::Twitter, SimTime::from_days(5)),
            m.rates(Network::Twitter, SimTime::from_days(160))
        );
    }

    #[test]
    fn delay_distribution_matches_paper_shape() {
        let m = BehaviorModel::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mut day = 0usize;
        let mut week = 0usize;
        for _ in 0..n {
            let d = m.sample_delay(&mut rng).days_f64();
            if d < 1.0 {
                day += 1;
            }
            if d < 7.0 {
                week += 1;
            }
            assert!(d < 28.0);
        }
        let fd = day as f64 / n as f64;
        let fw = week as f64 / n as f64;
        assert!((fd - 0.358).abs() < 0.02, "within-day {fd}");
        assert!((fw - 0.906).abs() < 0.02, "within-week {fw}");
    }

    #[test]
    fn table10_targets_recovered_over_mixed_population() {
        // Simulate many Instagram accounts in the standard mix, doxed
        // pre-filter; the population fractions must approach Table 10.
        let m = BehaviorModel::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let dox_time = SimTime::from_days(3);
        let horizon = SimTime::from_days(60);
        let n = 40_000;
        let (mut more_private, mut more_public, mut any) = (0usize, 0usize, 0usize);
        for uid in 0..n {
            let status = mixed_status(&mut rng, true);
            let mut a = mk_account(Network::Instagram, uid, status);
            let before = a.status_at(dox_time);
            m.apply_dox_reaction(&mut a, dox_time, &mut rng);
            if a.changed_between(SimTime::EPOCH, horizon) {
                any += 1;
            }
            let after = a.status_at(horizon);
            if after.openness() < before.openness() {
                more_private += 1;
            }
            if after.openness() > before.openness() {
                more_public += 1;
            }
        }
        let mp = more_private as f64 / n as f64;
        let mpub = more_public as f64 / n as f64;
        let ac = any as f64 / n as f64;
        assert!((mp - 0.172).abs() < 0.012, "more-private {mp}");
        assert!((mpub - 0.081).abs() < 0.010, "more-public {mpub}");
        assert!((ac - 0.322).abs() < 0.015, "any-change {ac}");
    }

    #[test]
    fn private_accounts_reopen_at_conditional_rate() {
        let m = BehaviorModel::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut reopened = 0;
        let n = 10_000;
        for uid in 0..n {
            let mut a = mk_account(Network::Instagram, uid, AccountStatus::Private);
            m.apply_dox_reaction(&mut a, SimTime::from_days(2), &mut rng);
            if a.status_at(SimTime::from_days(60)) == AccountStatus::Public {
                reopened += 1;
            }
        }
        // conditional reopen = more_public / private share = .081/.20 = .405
        let f = reopened as f64 / n as f64;
        assert!((f - 0.405).abs() < 0.02, "reopen rate {f}");
    }

    #[test]
    fn youtube_more_private_is_always_closure() {
        let m = BehaviorModel::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for uid in 0..5000 {
            let mut a = mk_account(Network::YouTube, uid, AccountStatus::Public);
            m.apply_dox_reaction(&mut a, SimTime::from_days(2), &mut rng);
            for t in a.transitions() {
                assert_ne!(t.to, AccountStatus::Private, "YouTube has no private");
            }
        }
    }

    #[test]
    fn baseline_churn_matches_control_row() {
        let m = BehaviorModel::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let window = (SimTime::EPOCH, SimTime::from_days(42));
        let mut changed = 0usize;
        let n = 100_000;
        for uid in 0..n {
            let status = mixed_status(&mut rng, true);
            let mut a = mk_account(Network::Instagram, uid, status);
            m.apply_baseline_churn(&mut a, window, &mut rng);
            if !a.transitions().is_empty() {
                changed += 1;
            }
        }
        let f = changed as f64 / n as f64;
        assert!((f - 0.002).abs() < 0.0008, "baseline any-change {f}");
    }

    #[test]
    fn active_accounts_churn_more_than_abandoned_ones() {
        // §6.2.1 future work: baseline churn scales with activity while
        // the population mean stays on the control row.
        let m = BehaviorModel::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let window = (SimTime::EPOCH, SimTime::from_days(42));
        let n = 60_000u64;
        let (mut active_changed, mut idle_changed) = (0usize, 0usize);
        for uid in 0..n {
            let mut a = mk_account(Network::Instagram, uid, AccountStatus::Public);
            a.activity = if uid % 2 == 0 { 2.0 } else { 0.1 };
            m.apply_baseline_churn(&mut a, window, &mut rng);
            if !a.transitions().is_empty() {
                if a.activity > 1.0 {
                    active_changed += 1;
                } else {
                    idle_changed += 1;
                }
            }
        }
        assert!(
            active_changed > idle_changed * 4,
            "active {active_changed} vs idle {idle_changed}"
        );
    }

    #[test]
    fn transient_changes_revert() {
        let m = BehaviorModel::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut saw_transient = false;
        for uid in 0..20_000 {
            let mut a = mk_account(Network::Instagram, uid, AccountStatus::Public);
            m.apply_dox_reaction(&mut a, SimTime::from_days(2), &mut rng);
            if a.transitions().len() == 2
                && a.status_at(SimTime::from_days(60)) == AccountStatus::Public
            {
                saw_transient = true;
                break;
            }
        }
        assert!(saw_transient, "transient flips should occur");
    }

    #[test]
    fn inactive_accounts_never_react() {
        let m = BehaviorModel::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        for uid in 0..2000 {
            let mut a = mk_account(Network::Facebook, uid, AccountStatus::Inactive);
            m.apply_dox_reaction(&mut a, SimTime::from_days(2), &mut rng);
            assert!(a.transitions().is_empty());
        }
    }

    #[test]
    fn skype_never_reacts() {
        let m = BehaviorModel::paper();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for uid in 0..1000 {
            let mut a = mk_account(Network::Skype, uid, AccountStatus::Public);
            m.apply_dox_reaction(&mut a, SimTime::from_days(2), &mut rng);
            assert!(a.transitions().is_empty());
        }
    }

    #[test]
    fn conditional_conversion_round_trips() {
        let rates = ReactionRates {
            more_private: 0.172,
            more_public: 0.081,
            transient_change: 0.069,
            close_share: 0.35,
        };
        let mix = InitialMix::paper();
        let (gp, ro, tr) = rates.conditional(&mix, true);
        // population more-private = gp * (1 - inactive)
        assert!((gp * (1.0 - mix.inactive) - 0.172).abs() < 1e-9);
        // population more-public = ro * private
        assert!((ro * mix.private - 0.081).abs() < 1e-9);
        // population transient = tr * public
        assert!((tr * mix.public() - 0.069).abs() < 1e-9);
    }

    #[test]
    fn conditional_probabilities_stay_bounded() {
        let rates = ReactionRates {
            more_private: 0.99,
            more_public: 0.99,
            transient_change: 0.99,
            close_share: 0.5,
        };
        let (gp, ro, tr) = rates.conditional(&InitialMix::paper(), true);
        assert!(gp <= 1.0 && ro <= 1.0 && tr <= 1.0);
    }
}
