//! Simulation time.
//!
//! The whole reproduction runs on a discrete clock counting **minutes since
//! the start of the first collection period** (the paper's 7/20/2016).
//! Minutes are fine-grained enough for the reaction-delay distribution
//! (35.8 % of privacy changes land within 24 hours) while keeping all
//! arithmetic in exact integers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time (minutes since study start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulation time in minutes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

// The vendored serde cannot derive `Deserialize` (the derive expands to
// nothing); newtype wrappers round-trip as their transparent integer.
impl serde::Deserialize for SimTime {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        value.as_u64().map(SimTime)
    }
}

impl serde::Deserialize for SimDuration {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        value.as_u64().map(SimDuration)
    }
}

impl SimTime {
    /// The study epoch (start of collection period 1).
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from whole days since the epoch.
    pub fn from_days(days: u64) -> Self {
        SimTime(days * MINUTES_PER_DAY)
    }

    /// Construct from fractional days (rounded to the nearest minute).
    pub fn from_days_f64(days: f64) -> Self {
        SimTime((days * MINUTES_PER_DAY as f64).round().max(0.0) as u64)
    }

    /// Whole days since the epoch (truncating).
    pub fn days(self) -> u64 {
        self.0 / MINUTES_PER_DAY
    }

    /// Fractional days since the epoch.
    pub fn days_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_DAY as f64
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole days.
    pub fn from_days(days: u64) -> Self {
        SimDuration(days * MINUTES_PER_DAY)
    }

    /// From whole hours.
    pub fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 60)
    }

    /// Whole days (truncating).
    pub fn days(self) -> u64 {
        self.0 / MINUTES_PER_DAY
    }

    /// Fractional days.
    pub fn days_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_DAY as f64
    }
}

/// Minutes per day.
pub const MINUTES_PER_DAY: u64 = 24 * 60;

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / MINUTES_PER_DAY;
        let rem = self.0 % MINUTES_PER_DAY;
        write!(f, "day {} {:02}:{:02}", d, rem / 60, rem % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_roundtrip() {
        assert_eq!(SimTime::from_days(3).days(), 3);
        assert_eq!(SimTime::from_days(3).0, 3 * 1440);
    }

    #[test]
    fn fractional_days() {
        let t = SimTime::from_days_f64(1.5);
        assert_eq!(t.0, 2160);
        assert!((t.days_f64() - 1.5).abs() < 1e-9);
        assert_eq!(t.days(), 1);
    }

    #[test]
    fn negative_fraction_clamps_to_zero() {
        assert_eq!(SimTime::from_days_f64(-2.0), SimTime(0));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_days(1) + SimDuration::from_hours(12);
        assert_eq!(t.0, 1440 + 720);
        assert_eq!((t - SimDuration::from_days(2)).0, 0, "saturates at epoch");
        assert_eq!(t.since(SimTime::from_days(1)).0, 720);
        assert_eq!(SimTime::EPOCH.since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_helpers() {
        let d = SimDuration::from_days(2) + SimDuration::from_hours(6);
        assert_eq!(d.days(), 2);
        assert!((d.days_f64() - 2.25).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime(1503).to_string(), "day 1 01:03");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_days(1) < SimTime::from_days(2));
        let mut t = SimTime::EPOCH;
        t += SimDuration::from_hours(1);
        assert_eq!(t.0, 60);
    }
}
