//! The pure per-document stage work: HTML→text conversion, dox
//! classification, and — for classified doxes — extraction.
//!
//! Everything here is free of shared mutable state, which is what lets
//! both the batch pipeline and the streaming engine fan it out across
//! worker threads without changing a single bit of the result. Timings
//! are accumulated into thread-local [`StageLocal`] histograms and merged
//! once per chunk, so the hot loop performs no atomic traffic.

use crate::output::StagedDoc;
use dox_obs::{Counter, Histogram, LocalHistogram, Registry};
use dox_sites::collect::CollectedDoc;
use dox_textkit::html::html_to_text;
use std::time::Instant;

/// The classification stage seen by the engine: anything that can say
/// whether a plain-text document is a dox.
///
/// The trained TF-IDF + SGD `DoxClassifier` in `dox-core` is the real
/// implementation; tests substitute keyword stubs. Implementations must
/// be pure (same text → same verdict) or the run stops being a pure
/// function of `(config, seed)`.
pub trait DoxDetector: Send + Sync {
    /// Classify one plain-text document.
    fn is_dox(&self, text: &str) -> bool;
}

impl<T: DoxDetector + ?Sized> DoxDetector for &T {
    fn is_dox(&self, text: &str) -> bool {
        (**self).is_dox(text)
    }
}

impl<T: DoxDetector + ?Sized> DoxDetector for std::sync::Arc<T> {
    fn is_dox(&self, text: &str) -> bool {
        (**self).is_dox(text)
    }
}

/// Pre-resolved shared handles for the per-document stage metrics
/// (Figure 1's conversion/classify/extract stages), resolved once so
/// workers merge locals with a handful of relaxed atomic ops.
#[derive(Clone)]
pub struct StageMetrics {
    /// Documents that went through HTML→text conversion.
    pub html_converted: Counter,
    /// Per-document stage durations, nanoseconds.
    pub html_convert_ns: Histogram,
    /// Classification durations, nanoseconds.
    pub classify_ns: Histogram,
    /// Extraction durations, nanoseconds.
    pub extract_ns: Histogram,
}

impl StageMetrics {
    /// Resolve the canonical `pipeline.*` metric names in `registry`.
    pub fn resolve(registry: &Registry) -> Self {
        Self {
            html_converted: registry.counter("pipeline.funnel.html_converted"),
            html_convert_ns: registry.histogram("pipeline.stage.html_convert"),
            classify_ns: registry.histogram("pipeline.stage.classify"),
            extract_ns: registry.histogram("pipeline.stage.extract"),
        }
    }
}

/// Per-worker stage timings: workers accumulate locally and merge once
/// per chunk, so the parallel classify fan-out adds no atomic contention.
#[derive(Default)]
pub struct StageLocal {
    /// HTML conversion durations.
    pub html_convert: LocalHistogram,
    /// Classification durations.
    pub classify: LocalHistogram,
    /// Extraction durations.
    pub extract: LocalHistogram,
    /// Documents converted from HTML.
    pub html_converted: u64,
}

impl StageLocal {
    /// Fold the local timings into the shared stage metrics, leaving
    /// `self` empty.
    pub fn merge_into(&mut self, metrics: &StageMetrics) {
        self.html_convert.merge_into(&metrics.html_convert_ns);
        self.classify.merge_into(&metrics.classify_ns);
        self.extract.merge_into(&metrics.extract_ns);
        metrics.html_converted.add(self.html_converted);
        self.html_converted = 0;
    }
}

/// The pure (parallelizable) per-document work: HTML conversion,
/// classification, and — for classified doxes — extraction. Stage timings
/// land in `timings`; they observe the work without affecting the result.
pub fn classify_and_extract<C: DoxDetector + ?Sized>(
    classifier: &C,
    collected: &CollectedDoc,
    timings: &mut StageLocal,
) -> StagedDoc {
    let doc = &collected.doc;
    let text = if doc.source.is_html() {
        // dox-lint:allow(determinism) HTML-convert timing histogram; observation only
        let start = Instant::now();
        let text = html_to_text(&doc.body);
        timings.html_convert.record_duration(start.elapsed());
        timings.html_converted += 1;
        text
    } else {
        doc.body.clone()
    };
    // dox-lint:allow(determinism) classify timing histogram; observation only
    let start = Instant::now();
    let is_dox = classifier.is_dox(&text);
    timings.classify.record_duration(start.elapsed());
    if !is_dox {
        return None;
    }
    // dox-lint:allow(determinism) extract timing histogram; observation only
    let start = Instant::now();
    let extracted = dox_extract::record::extract(&text);
    timings.extract.record_duration(start.elapsed());
    Some((text, extracted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_osn::clock::SimTime;
    use dox_synth::corpus::{Source, SynthDoc};
    use dox_synth::truth::GroundTruth;

    /// A detector that flags documents containing "dox".
    pub(crate) struct KeywordDetector;

    impl DoxDetector for KeywordDetector {
        fn is_dox(&self, text: &str) -> bool {
            text.contains("dox")
        }
    }

    fn doc(source: Source, body: &str) -> CollectedDoc {
        CollectedDoc {
            doc: SynthDoc {
                id: 1,
                source,
                posted_at: SimTime(0),
                body: body.to_string(),
                deleted_after: None,
                truth: GroundTruth::Paste {
                    kind: dox_synth::truth::PasteKind::Code,
                },
            },
            collected_at: SimTime(5),
        }
    }

    #[test]
    fn html_sources_are_converted_before_classification() {
        let mut timings = StageLocal::default();
        let collected = doc(Source::Chan4B, "full&#039;s dox<br>fb: someone");
        let staged = classify_and_extract(&KeywordDetector, &collected, &mut timings);
        let (text, _) = staged.expect("keyword matches");
        assert!(!text.contains("<br>"), "HTML must be stripped: {text:?}");
        assert_eq!(timings.html_converted, 1);
        assert!(timings.classify.count() == 1);
    }

    #[test]
    fn rejected_documents_skip_extraction() {
        let mut timings = StageLocal::default();
        let collected = doc(Source::Pastebin, "innocuous paste");
        assert!(classify_and_extract(&KeywordDetector, &collected, &mut timings).is_none());
        assert_eq!(timings.extract.count(), 0);
        assert_eq!(timings.html_converted, 0);
    }

    #[test]
    fn arc_and_ref_detectors_delegate() {
        fn via_generic<D: DoxDetector>(detector: D) -> bool {
            detector.is_dox("a dox")
        }
        let arc: std::sync::Arc<dyn DoxDetector> = std::sync::Arc::new(KeywordDetector);
        assert!(arc.is_dox("a dox"));
        assert!(via_generic(&KeywordDetector), "&T blanket impl delegates");
        assert!(!arc.is_dox("nothing"));
    }
}
