//! A live ingest session: the engine's thread topology and the
//! deterministic commit protocol.
//!
//! ```text
//! caller ──ingest()──▶ [work queue] ──▶ stage workers (×W, pure)
//!                                             │
//!                                     [staged queue]
//!                                             │
//!                                      router (reorders by chunk seq,
//!                                       commits doc-level counters,
//!                                       stamps dox_seq, routes by
//!                                       shard_signature)
//!                                        │   …   │
//!                                 [shard queues ×S]
//!                                        │   …   │
//!                               dedup shards (stateful, isolated)
//!                                        │   …   │
//!                                   [verdict queue]
//!                                             │
//!                                      committer (reorders by dox_seq,
//!                                       commits duplicate counters and
//!                                       the detected-dox log)
//! ```
//!
//! Determinism: the stage workers are pure, so only the two stateful
//! commit points matter. The router observes chunks through a
//! [`ReorderBuffer`] keyed on the chunk sequence number, so counters and
//! `dox_seq` assignment happen in exact ingest order; dedup shards each
//! own every document that could ever match each other (see
//! [`crate::dedup::shard_signature`]) and process them in `dox_seq` order
//! because their queues are FIFO and the router feeds them in order; the
//! committer reorders verdicts back into `dox_seq` order before touching
//! the duplicate counters and the detected log. The result is
//! byte-identical to one sequential pass for any `(workers, shards)`.

use crate::dedup::{shard_of, shard_signature, Deduplicator, DuplicateKind};
use crate::output::{DetectedDox, PipelineCounters, PipelineOutput, StagedDoc};
use crate::queue::Queue;
use crate::reorder::ReorderBuffer;
use crate::stage::{classify_and_extract, DoxDetector, StageLocal, StageMetrics};
use crate::{EngineConfig, EngineError};
use dox_obs::{Counter, Gauge, Histogram, Registry};
use dox_osn::clock::SimTime;
use dox_sites::collect::CollectedDoc;
use dox_synth::corpus::Source;
use dox_synth::truth::{DoxTruth, GroundTruth};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A batch of collected documents, stamped with the chunk sequence
/// number the router reorders on. Each document carries its collection
/// period (1 or 2).
struct WorkChunk {
    seq: u64,
    docs: Vec<(u8, CollectedDoc)>,
}

/// A chunk after the pure stage: same sequence number, each document now
/// paired with its classification/extraction outcome.
struct StagedChunk {
    seq: u64,
    items: Vec<(u8, CollectedDoc, StagedDoc)>,
}

/// One classified dox on its way to a dedup shard.
struct DoxJob {
    dox_seq: u64,
    period: u8,
    doc_id: u64,
    source: Source,
    posted_at: SimTime,
    observed_at: SimTime,
    text: String,
    extracted: dox_extract::record::ExtractedDox,
    truth: Option<Box<DoxTruth>>,
}

/// A dedup shard's verdict for one dox.
struct Verdict {
    job: DoxJob,
    duplicate: Option<(DuplicateKind, u64)>,
}

/// A running ingest session.
///
/// Created by [`Engine::session`](crate::Engine::session); feed it with
/// [`ingest`](Session::ingest) and close it with
/// [`finish`](Session::finish). The calling thread is the producer: when
/// the work queue is full, `ingest` blocks — that backpressure is what
/// bounds memory to roughly `queue_depth × chunk` documents regardless of
/// corpus size.
pub struct Session {
    chunk: usize,
    next_chunk_seq: u64,
    buf: Vec<(u8, CollectedDoc)>,
    work: Arc<Queue<WorkChunk>>,
    staged: Arc<Queue<StagedChunk>>,
    shard_queues: Vec<Arc<Queue<DoxJob>>>,
    verdicts: Arc<Queue<Verdict>>,
    stage_workers: Vec<JoinHandle<()>>,
    router: Option<JoinHandle<(PipelineCounters, BTreeSet<u64>)>>,
    shard_workers: Vec<JoinHandle<()>>,
    committer: Option<JoinHandle<(Vec<DetectedDox>, PipelineCounters)>>,
    queue_depth: Gauge,
    stalls: Counter,
    stall_ns: Histogram,
}

impl Session {
    pub(crate) fn spawn(
        config: &EngineConfig,
        classifier: Arc<dyn DoxDetector>,
        registry: &Registry,
    ) -> Self {
        let work: Arc<Queue<WorkChunk>> = Arc::new(Queue::bounded(config.queue_depth));
        let staged: Arc<Queue<StagedChunk>> = Arc::new(Queue::bounded(config.queue_depth));
        let shard_queues: Vec<Arc<Queue<DoxJob>>> = (0..config.shards)
            .map(|_| Arc::new(Queue::bounded(config.queue_depth.max(4) * config.chunk)))
            .collect();
        let verdicts: Arc<Queue<Verdict>> =
            Arc::new(Queue::bounded(config.queue_depth * config.chunk));

        let stage_metrics = StageMetrics::resolve(registry);
        let collected = registry.counter("pipeline.funnel.collected");
        let classified_dox = registry.counter("pipeline.funnel.classified_dox");
        let duplicates = registry.counter("pipeline.funnel.duplicates");
        let unique = registry.counter("pipeline.funnel.unique");
        let dedup_ns = registry.histogram("pipeline.stage.dedup");
        registry.gauge("engine.workers").set(config.workers as i64);
        registry.gauge("engine.shards").set(config.shards as i64);

        let stage_workers = (0..config.workers)
            .map(|_| {
                let work = Arc::clone(&work);
                let staged = Arc::clone(&staged);
                let classifier = Arc::clone(&classifier);
                let stage_metrics = stage_metrics.clone();
                std::thread::spawn(move || {
                    while let Some(chunk) = work.pop() {
                        let mut timings = StageLocal::default();
                        let items = chunk
                            .docs
                            .into_iter()
                            .map(|(period, doc)| {
                                let outcome = classify_and_extract(&classifier, &doc, &mut timings);
                                (period, doc, outcome)
                            })
                            .collect();
                        timings.merge_into(&stage_metrics);
                        if staged
                            .push(StagedChunk {
                                seq: chunk.seq,
                                items,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                })
            })
            .collect();

        let router = {
            let staged = Arc::clone(&staged);
            let shard_queues = shard_queues.clone();
            let shards = config.shards;
            let shard_docs: Vec<Counter> = (0..shards)
                .map(|i| registry.counter(&format!("engine.shard.{i}.docs")))
                .collect();
            std::thread::spawn(move || {
                let mut reorder = ReorderBuffer::new();
                let mut counters = PipelineCounters::default();
                let mut dox_ids = BTreeSet::new();
                let mut dox_seq = 0u64;
                'drain: while let Some(chunk) = staged.pop() {
                    reorder.push(chunk.seq, chunk.items);
                    while let Some(items) = reorder.pop_ready() {
                        for (period, doc, outcome) in items {
                            let CollectedDoc { doc, collected_at } = doc;
                            let slot = usize::from(period - 1);
                            counters.total += 1;
                            counters.per_period[slot] += 1;
                            *counters
                                .per_source
                                .entry(doc.source.name().to_string())
                                .or_insert(0) += 1;
                            collected.inc();
                            let Some((text, extracted)) = outcome else {
                                continue;
                            };
                            counters.classified_dox += 1;
                            counters.dox_per_period[slot] += 1;
                            classified_dox.inc();
                            dox_ids.insert(doc.id);
                            let shard = shard_of(shard_signature(&text, &extracted), shards);
                            shard_docs[shard].inc();
                            let truth = match doc.truth {
                                GroundTruth::Dox(t) => Some(t),
                                GroundTruth::Paste { .. } => None,
                            };
                            let job = DoxJob {
                                dox_seq,
                                period,
                                doc_id: doc.id,
                                source: doc.source,
                                posted_at: doc.posted_at,
                                observed_at: collected_at,
                                text,
                                extracted,
                                truth,
                            };
                            dox_seq += 1;
                            if shard_queues[shard].push(job).is_err() {
                                break 'drain;
                            }
                        }
                    }
                }
                (counters, dox_ids)
            })
        };

        let shard_workers = shard_queues
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let q = Arc::clone(q);
                let verdicts = Arc::clone(&verdicts);
                let dedup_ns = dedup_ns.clone();
                let shard_ns = registry.histogram(&format!("engine.shard.{i}.dedup_ns"));
                std::thread::spawn(move || {
                    let mut dedup = Deduplicator::new();
                    while let Some(job) = q.pop() {
                        // dox-lint:allow(determinism) per-shard dedup latency histogram; never enters the report
                        let start = Instant::now();
                        let duplicate = dedup.check(job.doc_id, &job.text, &job.extracted);
                        let elapsed = start.elapsed();
                        dedup_ns.observe_duration(elapsed);
                        shard_ns.observe_duration(elapsed);
                        if verdicts.push(Verdict { job, duplicate }).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();

        let committer = {
            let verdicts = Arc::clone(&verdicts);
            std::thread::spawn(move || {
                let mut reorder = ReorderBuffer::new();
                let mut counters = PipelineCounters::default();
                let mut detected = Vec::new();
                while let Some(verdict) = verdicts.pop() {
                    reorder.push(verdict.job.dox_seq, verdict);
                    while let Some(Verdict { job, duplicate }) = reorder.pop_ready() {
                        match duplicate {
                            Some((kind, _)) => {
                                counters.duplicates_per_period[usize::from(job.period - 1)] += 1;
                                duplicates.inc();
                                match kind {
                                    DuplicateKind::ExactBody => counters.exact_duplicates += 1,
                                    DuplicateKind::AccountSet => {
                                        counters.account_set_duplicates += 1
                                    }
                                    DuplicateKind::Fuzzy => {}
                                }
                            }
                            None => unique.inc(),
                        }
                        detected.push(DetectedDox {
                            doc_id: job.doc_id,
                            source: job.source,
                            period: job.period,
                            posted_at: job.posted_at,
                            observed_at: job.observed_at,
                            text: job.text,
                            extracted: job.extracted,
                            duplicate,
                            truth: job.truth,
                        });
                    }
                }
                (detected, counters)
            })
        };

        Self {
            chunk: config.chunk,
            next_chunk_seq: 0,
            buf: Vec::with_capacity(config.chunk),
            work,
            staged,
            shard_queues,
            verdicts,
            stage_workers,
            router: Some(router),
            shard_workers,
            committer: Some(committer),
            queue_depth: registry.gauge("engine.queue.depth"),
            stalls: registry.counter("engine.queue.stalls"),
            stall_ns: registry.histogram("engine.queue.stall_ns"),
        }
    }

    /// Feed one collected document from the given period (1 or 2) into
    /// the engine. Blocks when the work queue is full (backpressure).
    pub fn ingest(&mut self, period: u8, doc: CollectedDoc) -> Result<(), EngineError> {
        if !(1..=2).contains(&period) {
            return Err(EngineError::InvalidPeriod(period));
        }
        self.buf.push((period, doc));
        if self.buf.len() >= self.chunk {
            self.dispatch()?;
        }
        Ok(())
    }

    /// Flush any buffered partial chunk into the work queue.
    fn dispatch(&mut self) -> Result<(), EngineError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let docs = std::mem::replace(&mut self.buf, Vec::with_capacity(self.chunk));
        let seq = self.next_chunk_seq;
        self.next_chunk_seq += 1;
        match self.work.push(WorkChunk { seq, docs }) {
            Ok(pushed) => {
                self.queue_depth.set(pushed.depth as i64);
                if pushed.stalled_for > Duration::ZERO {
                    self.stalls.inc();
                    self.stall_ns.observe_duration(pushed.stalled_for);
                }
                Ok(())
            }
            Err(_) => Err(EngineError::Disconnected),
        }
    }

    /// Close the stream and wait for every stage to drain, returning the
    /// combined output. The result is byte-identical to a sequential pass
    /// over the same documents in the same order.
    pub fn finish(mut self) -> Result<PipelineOutput, EngineError> {
        self.dispatch()?;
        self.work.close();
        for worker in self.stage_workers.drain(..) {
            worker
                .join()
                .map_err(|_| EngineError::StageFailed("stage worker"))?;
        }
        self.staged.close();
        let (mut counters, dox_ids) = self
            .router
            .take()
            .ok_or(EngineError::StageFailed("router"))?
            .join()
            .map_err(|_| EngineError::StageFailed("router"))?;
        for q in &self.shard_queues {
            q.close();
        }
        for worker in self.shard_workers.drain(..) {
            worker
                .join()
                .map_err(|_| EngineError::StageFailed("dedup shard"))?;
        }
        self.verdicts.close();
        let (detected, dedup_counters) = self
            .committer
            .take()
            .ok_or(EngineError::StageFailed("committer"))?
            .join()
            .map_err(|_| EngineError::StageFailed("committer"))?;
        counters.absorb(&dedup_counters);
        self.queue_depth.set(0);
        Ok(PipelineOutput {
            detected,
            counters,
            dox_ids,
        })
    }
}

impl Drop for Session {
    /// Closing every queue lets the worker threads exit if the session is
    /// dropped without [`finish`](Session::finish); the threads are then
    /// detached, not joined.
    fn drop(&mut self) {
        self.work.close();
        self.staged.close();
        for q in &self.shard_queues {
            q.close();
        }
        self.verdicts.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use dox_synth::corpus::SynthDoc;
    use dox_synth::truth::PasteKind;

    /// A detector that flags documents containing "dox".
    struct KeywordDetector;

    impl DoxDetector for KeywordDetector {
        fn is_dox(&self, text: &str) -> bool {
            text.contains("dox")
        }
    }

    fn doc(id: u64, body: &str) -> CollectedDoc {
        CollectedDoc {
            doc: SynthDoc {
                id,
                source: Source::Pastebin,
                posted_at: SimTime(id),
                body: body.to_string(),
                deleted_after: None,
                truth: GroundTruth::Paste {
                    kind: PasteKind::Code,
                },
            },
            collected_at: SimTime(id + 5),
        }
    }

    /// A sequential reference: the same commit semantics, single thread.
    fn sequential(docs: &[(u8, CollectedDoc)]) -> PipelineOutput {
        let mut out = PipelineOutput::default();
        let mut dedup = Deduplicator::new();
        let mut timings = StageLocal::default();
        for (period, collected) in docs {
            let slot = usize::from(period - 1);
            out.counters.total += 1;
            out.counters.per_period[slot] += 1;
            *out.counters
                .per_source
                .entry(collected.doc.source.name().to_string())
                .or_insert(0) += 1;
            let Some((text, extracted)) =
                classify_and_extract(&KeywordDetector, collected, &mut timings)
            else {
                continue;
            };
            out.counters.classified_dox += 1;
            out.counters.dox_per_period[slot] += 1;
            out.dox_ids.insert(collected.doc.id);
            let duplicate = dedup.check(collected.doc.id, &text, &extracted);
            if let Some((kind, _)) = duplicate {
                out.counters.duplicates_per_period[slot] += 1;
                match kind {
                    DuplicateKind::ExactBody => out.counters.exact_duplicates += 1,
                    DuplicateKind::AccountSet => out.counters.account_set_duplicates += 1,
                    DuplicateKind::Fuzzy => {}
                }
            }
            out.detected.push(DetectedDox {
                doc_id: collected.doc.id,
                source: collected.doc.source,
                period: *period,
                posted_at: collected.doc.posted_at,
                observed_at: collected.collected_at,
                text,
                extracted,
                duplicate,
                truth: collected.doc.truth.as_dox().map(|t| Box::new(t.clone())),
            });
        }
        out
    }

    fn corpus() -> Vec<(u8, CollectedDoc)> {
        let mut docs = Vec::new();
        for i in 0..200u64 {
            let body = match i % 5 {
                0 => format!("dox of victim{} fb: victim{}", i % 7, i % 7),
                1 => format!("dox drop fb: victim{} tw: alt{}", i % 7, i % 7),
                2 => "dox of victim3 fb: victim3".to_string(),
                _ => format!("innocuous paste number {i}"),
            };
            let period = if i < 120 { 1 } else { 2 };
            docs.push((period, doc(i, &body)));
        }
        docs
    }

    fn run_engine(workers: usize, shards: usize, chunk: usize) -> PipelineOutput {
        let engine = Engine::builder()
            .workers(workers)
            .shards(shards)
            .queue_depth(2)
            .chunk(chunk)
            .build()
            .expect("valid config");
        let registry = Registry::new();
        let mut session = engine.session_with_registry(Arc::new(KeywordDetector), &registry);
        for (period, doc) in corpus() {
            session.ingest(period, doc).expect("period is valid");
        }
        session.finish().expect("engine drains cleanly")
    }

    fn assert_same(a: &PipelineOutput, b: &PipelineOutput) {
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.dox_ids, b.dox_ids);
        assert_eq!(a.detected.len(), b.detected.len());
        for (x, y) in a.detected.iter().zip(&b.detected) {
            assert_eq!(x.doc_id, y.doc_id);
            assert_eq!(x.duplicate, y.duplicate);
            assert_eq!(x.text, y.text);
            assert_eq!(x.period, y.period);
        }
    }

    #[test]
    fn engine_matches_sequential_for_any_topology() {
        let reference = sequential(&corpus());
        for (workers, shards, chunk) in [(1, 1, 16), (4, 8, 16), (2, 3, 7), (4, 1, 1)] {
            let out = run_engine(workers, shards, chunk);
            assert_same(&out, &reference);
        }
    }

    #[test]
    fn invalid_period_is_rejected_without_killing_the_session() {
        let engine = Engine::builder().build().expect("default config");
        let registry = Registry::new();
        let mut session = engine.session_with_registry(Arc::new(KeywordDetector), &registry);
        assert_eq!(
            session.ingest(3, doc(1, "x")),
            Err(EngineError::InvalidPeriod(3))
        );
        session
            .ingest(1, doc(2, "a dox fb: someone"))
            .expect("valid");
        let out = session.finish().expect("drains");
        assert_eq!(out.counters.total, 1, "rejected doc never entered");
    }

    #[test]
    fn funnel_metrics_are_recorded() {
        let engine = Engine::builder().workers(2).shards(2).build().unwrap();
        let registry = Registry::new();
        let mut session = engine.session_with_registry(Arc::new(KeywordDetector), &registry);
        for (period, doc) in corpus() {
            session.ingest(period, doc).unwrap();
        }
        let out = session.finish().unwrap();
        assert_eq!(
            registry.counter("pipeline.funnel.collected").get(),
            out.counters.total
        );
        assert_eq!(
            registry.counter("pipeline.funnel.classified_dox").get(),
            out.counters.classified_dox
        );
        assert_eq!(
            registry.counter("pipeline.funnel.unique").get(),
            out.unique_doxes().count() as u64
        );
        let snapshot = registry.snapshot();
        assert!(snapshot.spans.contains_key("pipeline.stage.classify"));
        assert!(snapshot.spans.contains_key("pipeline.stage.dedup"));
    }

    #[test]
    fn dropping_a_session_does_not_hang() {
        let engine = Engine::builder().workers(2).build().unwrap();
        let registry = Registry::new();
        let mut session = engine.session_with_registry(Arc::new(KeywordDetector), &registry);
        session.ingest(1, doc(1, "a dox fb: someone")).unwrap();
        drop(session);
    }
}
