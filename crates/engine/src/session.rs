//! A live ingest session: the engine's thread topology and the
//! deterministic commit protocol.
//!
//! ```text
//! caller ──ingest()──▶ [work queue] ──▶ stage workers (×W, pure)
//!                                             │
//!                                     [staged queue]
//!                                             │
//!                                      router (reorders by chunk seq,
//!                                       commits doc-level counters,
//!                                       stamps dox_seq, routes by
//!                                       shard_signature)
//!                                        │   …   │
//!                                 [shard queues ×S]
//!                                        │   …   │
//!                               dedup shards (stateful, isolated)
//!                                        │   …   │
//!                                   [verdict queue]
//!                                             │
//!                                      committer (reorders by dox_seq,
//!                                       commits duplicate counters and
//!                                       the detected-dox log)
//! ```
//!
//! Determinism: the stage workers are pure, so only the two stateful
//! commit points matter. The router observes chunks through a
//! [`ReorderBuffer`] keyed on the chunk sequence number, so counters and
//! `dox_seq` assignment happen in exact ingest order; dedup shards each
//! own every document that could ever match each other (see
//! [`crate::dedup::shard_signature`]) and process them in `dox_seq` order
//! because their queues are FIFO and the router feeds them in order; the
//! committer reorders verdicts back into `dox_seq` order before touching
//! the duplicate counters and the detected log. The result is
//! byte-identical to one sequential pass for any `(workers, shards)`.
//!
//! ## Shared state and checkpoints
//!
//! The stateful stages keep their accumulations in a `Shared` block of
//! mutexes rather than thread-local state so the session can observe them
//! mid-run. [`Session::checkpoint`] flushes the partial chunk, waits for
//! **quiescence** (every dispatched chunk routed, every routed dox
//! committed — tracked by the `Progress` ledger and its condvar), then
//! snapshots everything while the pipeline is momentarily idle. Both
//! reorder buffers are provably empty at quiescence, so only their
//! cursors are persisted. The mutexes are uncontended in steady state —
//! each is locked by exactly one thread except during a checkpoint.
//!
//! ## Fault injection
//!
//! When the engine config carries [`EngineFaults`](crate::EngineFaults),
//! stage workers consult the plan's
//! [`stage_directive`](dox_fault::FaultPlan::stage_directive) per chunk:
//! slow chunks insert cooperative yields (scheduling pressure only —
//! results are unaffected, which the determinism tests verify), poisoned
//! chunks simulate a worker that panics on the chunk some number of times.
//! A poisoned chunk whose failure count exceeds the retry budget marks
//! every document in it as a **stage coverage gap** — counted explicitly
//! in [`PipelineOutput::stage_gap_docs`], never silently dropped.

use crate::checkpoint::{SessionCheckpoint, CHECKPOINT_VERSION};
use crate::dedup::{
    shard_of, shard_signature, DedupSpill, DedupSpillConfig, Deduplicator, DuplicateKind,
};
use crate::output::{DetectedDox, PipelineCounters, PipelineOutput, StagedDoc};
use crate::queue::Queue;
use crate::reorder::ReorderBuffer;
use crate::stage::{classify_and_extract, DoxDetector, StageLocal, StageMetrics};
use crate::{EngineConfig, EngineError, StagePanic};
use dox_fault::{FaultPlan, StageDirective};
use dox_obs::trace::{fault_hop, hop};
use dox_obs::{Counter, Gauge, Histogram, Registry, Tracer};
use dox_osn::clock::SimTime;
use dox_sites::collect::CollectedDoc;
use dox_synth::corpus::Source;
use dox_synth::truth::{DoxTruth, GroundTruth};
use std::collections::BTreeSet;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`Session::checkpoint`] waits for the pipeline to quiesce
/// before giving up with [`EngineError::CheckpointStalled`].
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(60);

/// A batch of collected documents, stamped with the chunk sequence
/// number the router reorders on. Each document carries its collection
/// period (1 or 2).
struct WorkChunk {
    seq: u64,
    docs: Vec<(u8, CollectedDoc)>,
}

/// What the stage produced for one document: the pure outcome, or a
/// marker that a poisoned worker exhausted its retries on the chunk.
// `Failed` is the rare case; boxing `Done` to shrink the enum would buy
// an allocation per document on the hot path.
#[allow(clippy::large_enum_variant)]
enum StageOutcome {
    Done(StagedDoc),
    Failed,
}

/// A chunk after the stage: same sequence number, each document now
/// paired with its outcome.
struct StagedChunk {
    seq: u64,
    items: Vec<(u8, CollectedDoc, StageOutcome)>,
}

/// One classified dox on its way to a dedup shard.
struct DoxJob {
    dox_seq: u64,
    period: u8,
    doc_id: u64,
    source: Source,
    posted_at: SimTime,
    observed_at: SimTime,
    text: String,
    extracted: dox_extract::record::ExtractedDox,
    truth: Option<Box<DoxTruth>>,
}

/// A dedup shard's verdict for one dox.
struct Verdict {
    job: DoxJob,
    duplicate: Option<(DuplicateKind, u64)>,
}

/// The router's accumulated state (document-level commit point).
#[derive(Default)]
struct RouterState {
    reorder: ReorderBuffer<Vec<(u8, CollectedDoc, StageOutcome)>>,
    counters: PipelineCounters,
    dox_ids: BTreeSet<u64>,
    dox_seq: u64,
    stage_gap_docs: u64,
}

/// The committer's accumulated state (dedup-level commit point).
#[derive(Default)]
struct CommitterState {
    reorder: ReorderBuffer<Verdict>,
    counters: PipelineCounters,
    detected: Vec<DetectedDox>,
}

/// Completion ledger backing the quiesce protocol: the session is
/// quiescent exactly when `chunks_routed` equals the number of chunks
/// dispatched and every routed dox has been committed.
#[derive(Default)]
struct Progress {
    chunks_routed: u64,
    doxes_routed: u64,
    doxes_committed: u64,
}

/// State shared between the session handle and its worker threads so
/// checkpoints can observe it at quiescence.
struct Shared {
    router: Mutex<RouterState>,
    committer: Mutex<CommitterState>,
    dedups: Vec<Mutex<Deduplicator>>,
    progress: Mutex<Progress>,
    quiesced: Condvar,
}

/// Lock a mutex, recovering the guard if a panicking thread poisoned it —
/// same policy as [`crate::queue`]: state mutations are single-assignment
/// per document, so observers prefer the last consistent state over
/// propagating a panic.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Map a thread panic payload into the chained cause on
/// [`EngineError::StageFailed`].
fn stage_failed(stage: &'static str) -> impl FnOnce(Box<dyn std::any::Any + Send>) -> EngineError {
    move |payload| {
        let message = payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic payload was not a string".to_string());
        EngineError::StageFailed {
            stage,
            cause: StagePanic(message),
        }
    }
}

/// A running ingest session.
///
/// Created by [`Engine::session_builder`](crate::Engine::session_builder);
/// feed it with [`ingest`](Session::ingest) and close it with
/// [`finish`](Session::finish). The calling thread is the producer: when
/// the work queue is full, `ingest` blocks — that backpressure is what
/// bounds memory to roughly `queue_depth × chunk` documents regardless of
/// corpus size. [`checkpoint`](Session::checkpoint) captures a resumable
/// snapshot mid-stream.
///
/// For resident (service-mode) sessions that never `finish`,
/// [`flush`](Session::flush) forces everything ingested so far through
/// the pipeline, and [`committed_len`](Session::committed_len) /
/// [`detected_since`](Session::detected_since) /
/// [`output_snapshot`](Session::output_snapshot) observe the committed
/// state without closing the stream.
pub struct Session {
    chunk: usize,
    shards: usize,
    next_chunk_seq: u64,
    buf: Vec<(u8, CollectedDoc)>,
    shared: Arc<Shared>,
    work: Arc<Queue<WorkChunk>>,
    staged: Arc<Queue<StagedChunk>>,
    shard_queues: Vec<Arc<Queue<DoxJob>>>,
    verdicts: Arc<Queue<Verdict>>,
    stage_workers: Vec<JoinHandle<()>>,
    router: Option<JoinHandle<()>>,
    shard_workers: Vec<JoinHandle<()>>,
    committer: Option<JoinHandle<()>>,
    queue_depth: Gauge,
    stalls: Counter,
    stall_ns: Histogram,
    tracer: Tracer,
}

impl Session {
    pub(crate) fn spawn(
        config: &EngineConfig,
        classifier: Arc<dyn DoxDetector>,
        registry: &Registry,
        tracer: &Tracer,
        restore: Option<SessionCheckpoint>,
        spill: Option<DedupSpillConfig>,
    ) -> Self {
        // Each shard gets its own store tables; lookups union memory with
        // the store, so attaching the spill after a restore is sound.
        let attach = |shard: usize, mut dedup: Deduplicator| {
            if let Some(cfg) = &spill {
                dedup.attach_spill(DedupSpill::new(
                    Arc::clone(&cfg.store),
                    shard,
                    cfg.cap_entries,
                ));
            }
            Mutex::new(dedup)
        };
        let work: Arc<Queue<WorkChunk>> = Arc::new(Queue::bounded(config.queue_depth));
        let staged: Arc<Queue<StagedChunk>> = Arc::new(Queue::bounded(config.queue_depth));
        let shard_queues: Vec<Arc<Queue<DoxJob>>> = (0..config.shards)
            .map(|_| Arc::new(Queue::bounded(config.queue_depth.max(4) * config.chunk)))
            .collect();
        let verdicts: Arc<Queue<Verdict>> =
            Arc::new(Queue::bounded(config.queue_depth * config.chunk));

        let next_chunk_seq = restore.as_ref().map_or(0, |cp| cp.next_chunk_seq);
        let shared = Arc::new(match restore {
            None => Shared {
                router: Mutex::new(RouterState::default()),
                committer: Mutex::new(CommitterState::default()),
                dedups: (0..config.shards)
                    .map(|shard| attach(shard, Deduplicator::new()))
                    .collect(),
                progress: Mutex::new(Progress::default()),
                quiesced: Condvar::new(),
            },
            Some(cp) => Shared {
                router: Mutex::new(RouterState {
                    reorder: ReorderBuffer::with_next(cp.next_chunk_seq),
                    counters: cp.router_counters,
                    dox_ids: cp.dox_ids,
                    dox_seq: cp.dox_seq,
                    stage_gap_docs: cp.stage_gap_docs,
                }),
                committer: Mutex::new(CommitterState {
                    reorder: ReorderBuffer::with_next(cp.dox_seq),
                    counters: cp.committer_counters,
                    detected: cp.detected,
                }),
                dedups: cp
                    .dedups
                    .into_iter()
                    .enumerate()
                    .map(|(shard, s)| attach(shard, Deduplicator::restore(s)))
                    .collect(),
                // A checkpoint is taken at quiescence: everything dispatched
                // was routed and committed.
                progress: Mutex::new(Progress {
                    chunks_routed: cp.next_chunk_seq,
                    doxes_routed: cp.dox_seq,
                    doxes_committed: cp.dox_seq,
                }),
                quiesced: Condvar::new(),
            },
        });

        let stage_metrics = StageMetrics::resolve(registry);
        let collected = registry.counter("pipeline.funnel.collected");
        let classified_dox = registry.counter("pipeline.funnel.classified_dox");
        let duplicates = registry.counter("pipeline.funnel.duplicates");
        let unique = registry.counter("pipeline.funnel.unique");
        let stage_gaps = registry.counter("engine.fault.stage_exhausted_docs");
        let dedup_ns = registry.histogram("pipeline.stage.dedup");
        registry.gauge("engine.workers").set(config.workers as i64);
        registry.gauge("engine.shards").set(config.shards as i64);

        // Per-queue depth gauges plus a shared backpressure ledger: every
        // blocking push past the ingest boundary lands its stall here, so
        // `GET /metrics` can show where the pipe is tight right now.
        let staged_depth = registry.gauge("engine.queue.staged.depth");
        let verdicts_depth = registry.gauge("engine.queue.verdicts.depth");
        let bp_stalls = registry.counter("engine.queue.backpressure.stalls");
        let bp_ns = registry.histogram("engine.queue.backpressure_ns");

        let fault_ctx: Option<(FaultPlan, u32)> = config
            .faults
            .as_ref()
            .map(|f| (FaultPlan::new(f.plan.clone()), f.policy.max_retries));

        let stage_workers = (0..config.workers)
            .map(|_| {
                let work = Arc::clone(&work);
                let staged = Arc::clone(&staged);
                let classifier = Arc::clone(&classifier);
                let stage_metrics = stage_metrics.clone();
                let fault_ctx = fault_ctx.clone();
                let tracer = tracer.clone();
                let slow_chunks = registry.counter("engine.fault.slow_chunks");
                let poisoned_chunks = registry.counter("engine.fault.poisoned_chunks");
                let stage_retries = registry.counter("engine.fault.stage_retries");
                let exhausted_docs = registry.counter("engine.fault.stage_exhausted_docs");
                let staged_depth = staged_depth.clone();
                let bp_stalls = bp_stalls.clone();
                let bp_ns = bp_ns.clone();
                std::thread::spawn(move || {
                    while let Some(chunk) = work.pop() {
                        let mut exhausted = false;
                        // The chunk's fault weather, kept so sampled
                        // documents can carry a `stage_fault` hop:
                        // (attempts the simulated supervisor made, note).
                        let mut fault_event: Option<(u32, String)> = None;
                        if let Some((plan, max_retries)) = &fault_ctx {
                            match plan.stage_directive(chunk.seq) {
                                StageDirective::Healthy => {}
                                StageDirective::Slow { yields } => {
                                    slow_chunks.inc();
                                    if tracer.enabled() {
                                        fault_event = Some((1, format!("slow yields={yields}")));
                                    }
                                    for _ in 0..yields {
                                        std::thread::yield_now();
                                    }
                                }
                                StageDirective::Poison { failures } => {
                                    poisoned_chunks.inc();
                                    if failures > *max_retries {
                                        exhausted = true;
                                        exhausted_docs.add(chunk.docs.len() as u64);
                                        if tracer.enabled() {
                                            fault_event = Some((
                                                failures + 1,
                                                format!("poison exhausted failures={failures}"),
                                            ));
                                        }
                                    } else {
                                        // A retrying supervisor re-runs the
                                        // pure stage; only the attempt count
                                        // is observable.
                                        stage_retries.add(u64::from(failures));
                                        if tracer.enabled() {
                                            fault_event = Some((
                                                failures + 1,
                                                format!("poison retried failures={failures}"),
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                        let mut timings = StageLocal::default();
                        let items = chunk
                            .docs
                            .into_iter()
                            .map(|(period, doc)| {
                                let outcome = if exhausted {
                                    StageOutcome::Failed
                                } else {
                                    StageOutcome::Done(classify_and_extract(
                                        &classifier,
                                        &doc,
                                        &mut timings,
                                    ))
                                };
                                if tracer.sampled(doc.doc.id) {
                                    let at = doc.collected_at.0;
                                    if let Some((attempts, note)) = &fault_event {
                                        tracer.hop(
                                            doc.doc.id,
                                            fault_hop("stage_fault", at, *attempts, 0, 0, note),
                                        );
                                    }
                                    let verdict = match &outcome {
                                        StageOutcome::Done(Some(_)) => "dox",
                                        StageOutcome::Done(None) => "paste",
                                        StageOutcome::Failed => "failed",
                                    };
                                    tracer.hop(doc.doc.id, hop("classify", at, verdict));
                                }
                                (period, doc, outcome)
                            })
                            .collect();
                        timings.merge_into(&stage_metrics);
                        match staged.push(StagedChunk {
                            seq: chunk.seq,
                            items,
                        }) {
                            Ok(pushed) => {
                                staged_depth.set(pushed.depth as i64);
                                if pushed.stalled_for > Duration::ZERO {
                                    bp_stalls.inc();
                                    bp_ns.observe_duration(pushed.stalled_for);
                                }
                            }
                            Err(_) => break,
                        }
                    }
                })
            })
            .collect();

        let router = {
            let staged = Arc::clone(&staged);
            let shared = Arc::clone(&shared);
            let shard_queues = shard_queues.clone();
            let shards = config.shards;
            let shard_docs: Vec<Counter> = (0..shards)
                .map(|i| registry.counter(&format!("engine.shard.{i}.docs")))
                .collect();
            let shard_depths: Vec<Gauge> = (0..shards)
                .map(|i| registry.gauge(&format!("engine.shard.{i}.queue_depth")))
                .collect();
            let collected = collected.clone();
            let classified_dox = classified_dox.clone();
            let stage_gaps = stage_gaps.clone();
            let tracer = tracer.clone();
            let route_ns = registry.histogram("pipeline.stage.route");
            let bp_stalls = bp_stalls.clone();
            let bp_ns = bp_ns.clone();
            std::thread::spawn(move || {
                'drain: while let Some(chunk) = staged.pop() {
                    // Commit under the router lock, collect the routable
                    // jobs, then release before the (blocking) queue pushes.
                    let mut jobs: Vec<(usize, DoxJob)> = Vec::new();
                    let mut chunks_ready = 0u64;
                    // dox-lint:allow(determinism) route-stage timing histogram; observation only
                    let route_start = Instant::now();
                    {
                        let mut state = lock(&shared.router);
                        state.reorder.push(chunk.seq, chunk.items);
                        while let Some(items) = state.reorder.pop_ready() {
                            chunks_ready += 1;
                            for (period, doc, outcome) in items {
                                let CollectedDoc { doc, collected_at } = doc;
                                let slot = usize::from(period - 1);
                                state.counters.total += 1;
                                state.counters.per_period[slot] += 1;
                                *state
                                    .counters
                                    .per_source
                                    .entry(doc.source.name().to_string())
                                    .or_insert(0) += 1;
                                collected.inc();
                                let staged_doc = match outcome {
                                    StageOutcome::Done(staged_doc) => staged_doc,
                                    StageOutcome::Failed => {
                                        state.stage_gap_docs += 1;
                                        stage_gaps.inc();
                                        if tracer.sampled(doc.id) {
                                            tracer.hop(
                                                doc.id,
                                                hop(
                                                    "stage_gap",
                                                    collected_at.0,
                                                    "document lost to exhausted poison",
                                                ),
                                            );
                                        }
                                        continue;
                                    }
                                };
                                let Some((text, extracted)) = staged_doc else {
                                    continue;
                                };
                                state.counters.classified_dox += 1;
                                state.counters.dox_per_period[slot] += 1;
                                classified_dox.inc();
                                state.dox_ids.insert(doc.id);
                                let sig = shard_signature(&text, &extracted);
                                let shard = shard_of(sig, shards);
                                let truth = match doc.truth {
                                    GroundTruth::Dox(t) => Some(t),
                                    GroundTruth::Paste { .. } => None,
                                };
                                if tracer.sampled(doc.id) {
                                    // The hop carries the shard *signature*,
                                    // not the shard index: the signature is a
                                    // pure function of content, so traces stay
                                    // byte-identical across shard counts.
                                    tracer.hop(
                                        doc.id,
                                        hop(
                                            "route",
                                            collected_at.0,
                                            format!("sig={sig:016x} dox_seq={}", state.dox_seq),
                                        ),
                                    );
                                }
                                let job = DoxJob {
                                    dox_seq: state.dox_seq,
                                    period,
                                    doc_id: doc.id,
                                    source: doc.source,
                                    posted_at: doc.posted_at,
                                    observed_at: collected_at,
                                    text,
                                    extracted,
                                    truth,
                                };
                                state.dox_seq += 1;
                                jobs.push((shard, job));
                            }
                        }
                    }
                    route_ns.observe_duration(route_start.elapsed());
                    let routed = jobs.len() as u64;
                    for (shard, job) in jobs {
                        shard_docs[shard].inc();
                        match shard_queues[shard].push(job) {
                            Ok(pushed) => {
                                shard_depths[shard].set(pushed.depth as i64);
                                if pushed.stalled_for > Duration::ZERO {
                                    bp_stalls.inc();
                                    bp_ns.observe_duration(pushed.stalled_for);
                                }
                            }
                            Err(_) => break 'drain,
                        }
                    }
                    // One progress update per staged chunk, *after* the
                    // pushes: a checkpoint observing `chunks_routed` caught
                    // up is guaranteed every routed job already sits in a
                    // shard queue, so `doxes_committed == doxes_routed`
                    // really means the pipe is empty.
                    let mut progress = lock(&shared.progress);
                    progress.chunks_routed += chunks_ready;
                    progress.doxes_routed += routed;
                    shared.quiesced.notify_all();
                }
            })
        };

        let shard_workers = shard_queues
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let q = Arc::clone(q);
                let verdicts = Arc::clone(&verdicts);
                let shared = Arc::clone(&shared);
                let dedup_ns = dedup_ns.clone();
                let shard_ns = registry.histogram(&format!("engine.shard.{i}.dedup_ns"));
                let tracer = tracer.clone();
                let verdicts_depth = verdicts_depth.clone();
                let bp_stalls = bp_stalls.clone();
                let bp_ns = bp_ns.clone();
                std::thread::spawn(move || {
                    while let Some(job) = q.pop() {
                        // dox-lint:allow(determinism) per-shard dedup latency histogram; never enters the report
                        let start = Instant::now();
                        let duplicate =
                            lock(&shared.dedups[i]).check(job.doc_id, &job.text, &job.extracted);
                        let elapsed = start.elapsed();
                        dedup_ns.observe_duration(elapsed);
                        shard_ns.observe_duration(elapsed);
                        if tracer.sampled(job.doc_id) {
                            let note = match &duplicate {
                                None => "unique".to_string(),
                                Some((kind, of)) => format!("duplicate kind={kind:?} of={of}"),
                            };
                            tracer.hop(job.doc_id, hop("dedup", job.observed_at.0, note));
                        }
                        match verdicts.push(Verdict { job, duplicate }) {
                            Ok(pushed) => {
                                verdicts_depth.set(pushed.depth as i64);
                                if pushed.stalled_for > Duration::ZERO {
                                    bp_stalls.inc();
                                    bp_ns.observe_duration(pushed.stalled_for);
                                }
                            }
                            Err(_) => break,
                        }
                    }
                })
            })
            .collect();

        let committer = {
            let verdicts = Arc::clone(&verdicts);
            let shared = Arc::clone(&shared);
            let tracer = tracer.clone();
            let commit_ns = registry.histogram("pipeline.stage.commit");
            std::thread::spawn(move || {
                while let Some(verdict) = verdicts.pop() {
                    let mut committed = 0u64;
                    // dox-lint:allow(determinism) commit-stage timing histogram; observation only
                    let commit_start = Instant::now();
                    {
                        let mut state = lock(&shared.committer);
                        state.reorder.push(verdict.job.dox_seq, verdict);
                        while let Some(Verdict { job, duplicate }) = state.reorder.pop_ready() {
                            committed += 1;
                            if tracer.sampled(job.doc_id) {
                                let fate = if duplicate.is_some() {
                                    "duplicate"
                                } else {
                                    "unique"
                                };
                                tracer.hop(
                                    job.doc_id,
                                    hop(
                                        "commit",
                                        job.observed_at.0,
                                        format!("dox_seq={} {fate}", job.dox_seq),
                                    ),
                                );
                            }
                            match duplicate {
                                Some((kind, _)) => {
                                    state.counters.duplicates_per_period
                                        [usize::from(job.period - 1)] += 1;
                                    duplicates.inc();
                                    match kind {
                                        DuplicateKind::ExactBody => {
                                            state.counters.exact_duplicates += 1
                                        }
                                        DuplicateKind::AccountSet => {
                                            state.counters.account_set_duplicates += 1
                                        }
                                        DuplicateKind::Fuzzy => {}
                                    }
                                }
                                None => unique.inc(),
                            }
                            state.detected.push(DetectedDox {
                                doc_id: job.doc_id,
                                source: job.source,
                                period: job.period,
                                posted_at: job.posted_at,
                                observed_at: job.observed_at,
                                text: job.text,
                                extracted: job.extracted,
                                duplicate,
                                truth: job.truth,
                            });
                        }
                    }
                    commit_ns.observe_duration(commit_start.elapsed());
                    if committed > 0 {
                        let mut progress = lock(&shared.progress);
                        progress.doxes_committed += committed;
                        shared.quiesced.notify_all();
                    }
                }
            })
        };

        Self {
            chunk: config.chunk,
            shards: config.shards,
            next_chunk_seq,
            buf: Vec::with_capacity(config.chunk),
            shared,
            work,
            staged,
            shard_queues,
            verdicts,
            stage_workers,
            router: Some(router),
            shard_workers,
            committer: Some(committer),
            queue_depth: registry.gauge("engine.queue.depth"),
            stalls: registry.counter("engine.queue.stalls"),
            stall_ns: registry.histogram("engine.queue.stall_ns"),
            tracer: tracer.clone(),
        }
    }

    /// Feed one collected document from the given period (1 or 2) into
    /// the engine. Blocks when the work queue is full (backpressure).
    pub fn ingest(&mut self, period: u8, doc: CollectedDoc) -> Result<(), EngineError> {
        if !(1..=2).contains(&period) {
            return Err(EngineError::InvalidPeriod(period));
        }
        if self.tracer.sampled(doc.doc.id) {
            // Admission happens here, on the single producer thread, so
            // which documents occupy the bounded trace buffer is a pure
            // function of ingest order. A no-op when the collector already
            // began this trace (insert-if-absent).
            self.tracer
                .begin(doc.doc.id, hop("ingest", doc.collected_at.0, ""));
        }
        self.buf.push((period, doc));
        if self.buf.len() >= self.chunk {
            self.dispatch()?;
        }
        Ok(())
    }

    /// Flush any buffered partial chunk into the work queue.
    fn dispatch(&mut self) -> Result<(), EngineError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let docs = std::mem::replace(&mut self.buf, Vec::with_capacity(self.chunk));
        let seq = self.next_chunk_seq;
        self.next_chunk_seq += 1;
        match self.work.push(WorkChunk { seq, docs }) {
            Ok(pushed) => {
                self.queue_depth.set(pushed.depth as i64);
                if pushed.stalled_for > Duration::ZERO {
                    self.stalls.inc();
                    self.stall_ns.observe_duration(pushed.stalled_for);
                }
                Ok(())
            }
            Err(_) => Err(EngineError::Disconnected),
        }
    }

    /// True when some engine thread has exited while the session is still
    /// open — it can never quiesce.
    fn any_thread_dead(&self) -> bool {
        self.stage_workers.iter().any(JoinHandle::is_finished)
            || self.router.as_ref().is_some_and(JoinHandle::is_finished)
            || self.shard_workers.iter().any(JoinHandle::is_finished)
            || self.committer.as_ref().is_some_and(JoinHandle::is_finished)
    }

    /// Block until the pipeline is quiescent: every dispatched chunk
    /// routed, every routed dox committed. Both reorder buffers are
    /// provably empty at that point.
    fn wait_quiescent(&self) -> Result<(), EngineError> {
        let target_chunks = self.next_chunk_seq;
        // dox-lint:allow(determinism) wall-clock deadline guards liveness of the wait only; it never shapes results
        let deadline = Instant::now() + QUIESCE_TIMEOUT;
        let mut progress = lock(&self.shared.progress);
        loop {
            if progress.chunks_routed == target_chunks
                && progress.doxes_committed == progress.doxes_routed
            {
                return Ok(());
            }
            if self.any_thread_dead() {
                return Err(EngineError::Disconnected);
            }
            // dox-lint:allow(determinism) liveness deadline, see above
            if Instant::now() >= deadline {
                return Err(EngineError::CheckpointStalled);
            }
            let (guard, _) = self
                .shared
                .quiesced
                .wait_timeout(progress, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            progress = guard;
        }
    }

    /// Push everything ingested so far through the pipeline and wait for
    /// it to commit. On return, [`committed_len`](Session::committed_len)
    /// and [`detected_since`](Session::detected_since) reflect every
    /// document handed to [`ingest`](Session::ingest) before this call.
    ///
    /// This is the service-mode heartbeat: a daemon answering "what did
    /// that batch contain?" flushes, then reads the committed log. The
    /// flush dispatches a partial chunk, which never affects results —
    /// chunk boundaries are invisible to the commit protocol.
    ///
    /// # Errors
    /// [`EngineError::Disconnected`] if an engine thread died, or
    /// [`EngineError::CheckpointStalled`] if the pipeline failed to
    /// drain within the quiesce deadline.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        self.dispatch()?;
        self.wait_quiescent()
    }

    /// How many classified doxes have been committed so far (unique and
    /// duplicate alike). Use as the cursor for
    /// [`detected_since`](Session::detected_since). Monotonic; resumed
    /// sessions count their restored log too.
    pub fn committed_len(&self) -> usize {
        lock(&self.shared.committer).detected.len()
    }

    /// Clone the committed detected-dox log from `since` (a previous
    /// [`committed_len`](Session::committed_len) reading) onward. Call
    /// after [`flush`](Session::flush) for a stable read; between flushes
    /// the log only ever grows, so a cursor never skips entries.
    pub fn detected_since(&self, since: usize) -> Vec<DetectedDox> {
        let committer = lock(&self.shared.committer);
        committer.detected.get(since..).unwrap_or_default().to_vec()
    }

    /// Flush, then clone the full [`PipelineOutput`] as of everything
    /// ingested so far — the live-session counterpart of
    /// [`finish`](Session::finish), leaving the stream open. The clone is
    /// byte-identical to what `finish` would return right now.
    ///
    /// # Errors
    /// Propagates [`flush`](Session::flush) errors.
    pub fn output_snapshot(&mut self) -> Result<PipelineOutput, EngineError> {
        self.flush()?;
        let router = lock(&self.shared.router);
        let committer = lock(&self.shared.committer);
        let mut counters = router.counters.clone();
        counters.absorb(&committer.counters);
        Ok(PipelineOutput {
            detected: committer.detected.clone(),
            counters,
            dox_ids: router.dox_ids.clone(),
            stage_gap_docs: router.stage_gap_docs,
        })
    }

    /// Capture a resumable snapshot of the session without closing it.
    ///
    /// Flushes the buffered partial chunk (chunk boundaries never affect
    /// results), waits for the pipeline to quiesce, then snapshots every
    /// stateful stage. Feed the snapshot to
    /// [`SessionBuilder::resume_from`](crate::SessionBuilder::resume_from)
    /// to continue the stream in a later process; replaying the remaining
    /// documents yields output byte-identical to the uninterrupted run.
    pub fn checkpoint(&mut self) -> Result<SessionCheckpoint, EngineError> {
        self.dispatch()?;
        let target_chunks = self.next_chunk_seq;
        self.wait_quiescent()?;
        let router = lock(&self.shared.router);
        let committer = lock(&self.shared.committer);
        Ok(SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            shards: self.shards,
            next_chunk_seq: target_chunks,
            dox_seq: router.dox_seq,
            router_counters: router.counters.clone(),
            dox_ids: router.dox_ids.clone(),
            stage_gap_docs: router.stage_gap_docs,
            committer_counters: committer.counters.clone(),
            detected: committer.detected.clone(),
            dedups: self
                .shared
                .dedups
                .iter()
                .map(|d| lock(d).snapshot())
                .collect(),
        })
    }

    /// Close the stream and wait for every stage to drain, returning the
    /// combined output. The result is byte-identical to a sequential pass
    /// over the same documents in the same order.
    pub fn finish(mut self) -> Result<PipelineOutput, EngineError> {
        self.dispatch()?;
        self.work.close();
        for worker in self.stage_workers.drain(..) {
            worker.join().map_err(stage_failed("stage worker"))?;
        }
        self.staged.close();
        if let Some(router) = self.router.take() {
            router.join().map_err(stage_failed("router"))?;
        }
        for q in &self.shard_queues {
            q.close();
        }
        for worker in self.shard_workers.drain(..) {
            worker.join().map_err(stage_failed("dedup shard"))?;
        }
        self.verdicts.close();
        if let Some(committer) = self.committer.take() {
            committer.join().map_err(stage_failed("committer"))?;
        }
        let router = std::mem::take(&mut *lock(&self.shared.router));
        let committer = std::mem::take(&mut *lock(&self.shared.committer));
        let mut counters = router.counters;
        counters.absorb(&committer.counters);
        self.queue_depth.set(0);
        Ok(PipelineOutput {
            detected: committer.detected,
            counters,
            dox_ids: router.dox_ids,
            stage_gap_docs: router.stage_gap_docs,
        })
    }
}

impl Drop for Session {
    /// Closing every queue lets the worker threads exit if the session is
    /// dropped without [`finish`](Session::finish); the threads are then
    /// detached, not joined.
    fn drop(&mut self) {
        self.work.close();
        self.staged.close();
        for q in &self.shard_queues {
            q.close();
        }
        self.verdicts.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineFaults};
    use dox_fault::{FaultPlanConfig, RetryPolicy};
    use dox_synth::corpus::SynthDoc;
    use dox_synth::truth::PasteKind;

    /// A detector that flags documents containing "dox".
    struct KeywordDetector;

    impl DoxDetector for KeywordDetector {
        fn is_dox(&self, text: &str) -> bool {
            text.contains("dox")
        }
    }

    /// Start a keyword-detector session on an isolated registry.
    fn start(engine: &Engine, registry: &Registry) -> Session {
        engine
            .session_builder()
            .detector(Arc::new(KeywordDetector))
            .registry(registry)
            .start()
            .expect("detector set")
    }

    fn doc(id: u64, body: &str) -> CollectedDoc {
        CollectedDoc {
            doc: SynthDoc {
                id,
                source: Source::Pastebin,
                posted_at: SimTime(id),
                body: body.to_string(),
                deleted_after: None,
                truth: GroundTruth::Paste {
                    kind: PasteKind::Code,
                },
            },
            collected_at: SimTime(id + 5),
        }
    }

    /// A sequential reference: the same commit semantics, single thread.
    fn sequential(docs: &[(u8, CollectedDoc)]) -> PipelineOutput {
        let mut out = PipelineOutput::default();
        let mut dedup = Deduplicator::new();
        let mut timings = StageLocal::default();
        for (period, collected) in docs {
            let slot = usize::from(period - 1);
            out.counters.total += 1;
            out.counters.per_period[slot] += 1;
            *out.counters
                .per_source
                .entry(collected.doc.source.name().to_string())
                .or_insert(0) += 1;
            let Some((text, extracted)) =
                classify_and_extract(&KeywordDetector, collected, &mut timings)
            else {
                continue;
            };
            out.counters.classified_dox += 1;
            out.counters.dox_per_period[slot] += 1;
            out.dox_ids.insert(collected.doc.id);
            let duplicate = dedup.check(collected.doc.id, &text, &extracted);
            if let Some((kind, _)) = duplicate {
                out.counters.duplicates_per_period[slot] += 1;
                match kind {
                    DuplicateKind::ExactBody => out.counters.exact_duplicates += 1,
                    DuplicateKind::AccountSet => out.counters.account_set_duplicates += 1,
                    DuplicateKind::Fuzzy => {}
                }
            }
            out.detected.push(DetectedDox {
                doc_id: collected.doc.id,
                source: collected.doc.source,
                period: *period,
                posted_at: collected.doc.posted_at,
                observed_at: collected.collected_at,
                text,
                extracted,
                duplicate,
                truth: collected.doc.truth.as_dox().map(|t| Box::new(t.clone())),
            });
        }
        out
    }

    fn corpus() -> Vec<(u8, CollectedDoc)> {
        let mut docs = Vec::new();
        for i in 0..200u64 {
            let body = match i % 5 {
                0 => format!("dox of victim{} fb: victim{}", i % 7, i % 7),
                1 => format!("dox drop fb: victim{} tw: alt{}", i % 7, i % 7),
                2 => "dox of victim3 fb: victim3".to_string(),
                _ => format!("innocuous paste number {i}"),
            };
            let period = if i < 120 { 1 } else { 2 };
            docs.push((period, doc(i, &body)));
        }
        docs
    }

    fn run_engine(workers: usize, shards: usize, chunk: usize) -> PipelineOutput {
        let engine = Engine::builder()
            .workers(workers)
            .shards(shards)
            .queue_depth(2)
            .chunk(chunk)
            .build()
            .expect("valid config");
        let registry = Registry::new();
        let mut session = start(&engine, &registry);
        for (period, doc) in corpus() {
            session.ingest(period, doc).expect("period is valid");
        }
        session.finish().expect("engine drains cleanly")
    }

    fn assert_same(a: &PipelineOutput, b: &PipelineOutput) {
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.dox_ids, b.dox_ids);
        assert_eq!(a.stage_gap_docs, b.stage_gap_docs);
        assert_eq!(a.detected.len(), b.detected.len());
        for (x, y) in a.detected.iter().zip(&b.detected) {
            assert_eq!(x.doc_id, y.doc_id);
            assert_eq!(x.duplicate, y.duplicate);
            assert_eq!(x.text, y.text);
            assert_eq!(x.period, y.period);
        }
    }

    #[test]
    fn engine_matches_sequential_for_any_topology() {
        let reference = sequential(&corpus());
        for (workers, shards, chunk) in [(1, 1, 16), (4, 8, 16), (2, 3, 7), (4, 1, 1)] {
            let out = run_engine(workers, shards, chunk);
            assert_same(&out, &reference);
        }
    }

    #[test]
    fn invalid_period_is_rejected_without_killing_the_session() {
        let engine = Engine::builder().build().expect("default config");
        let registry = Registry::new();
        let mut session = start(&engine, &registry);
        assert_eq!(
            session.ingest(3, doc(1, "x")),
            Err(EngineError::InvalidPeriod(3))
        );
        session
            .ingest(1, doc(2, "a dox fb: someone"))
            .expect("valid");
        let out = session.finish().expect("drains");
        assert_eq!(out.counters.total, 1, "rejected doc never entered");
    }

    #[test]
    fn funnel_metrics_are_recorded() {
        let engine = Engine::builder().workers(2).shards(2).build().unwrap();
        let registry = Registry::new();
        let mut session = start(&engine, &registry);
        for (period, doc) in corpus() {
            session.ingest(period, doc).unwrap();
        }
        let out = session.finish().unwrap();
        assert_eq!(
            registry.counter("pipeline.funnel.collected").get(),
            out.counters.total
        );
        assert_eq!(
            registry.counter("pipeline.funnel.classified_dox").get(),
            out.counters.classified_dox
        );
        assert_eq!(
            registry.counter("pipeline.funnel.unique").get(),
            out.unique_doxes().count() as u64
        );
        let snapshot = registry.snapshot();
        assert!(snapshot.spans.contains_key("pipeline.stage.classify"));
        assert!(snapshot.spans.contains_key("pipeline.stage.dedup"));
    }

    #[test]
    fn dropping_a_session_does_not_hang() {
        let engine = Engine::builder().workers(2).build().unwrap();
        let registry = Registry::new();
        let mut session = start(&engine, &registry);
        session.ingest(1, doc(1, "a dox fb: someone")).unwrap();
        drop(session);
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_to_uninterrupted() {
        let reference = sequential(&corpus());
        for (workers, shards) in [(1usize, 1usize), (4, 8)] {
            let build = || {
                Engine::builder()
                    .workers(workers)
                    .shards(shards)
                    .queue_depth(2)
                    .chunk(16)
                    .build()
                    .expect("valid config")
            };
            let registry = Registry::new();
            let mut first = start(&build(), &registry);
            let docs = corpus();
            let cut = 97; // mid-chunk on purpose
            for (period, doc) in &docs[..cut] {
                first.ingest(*period, doc.clone()).expect("valid");
            }
            let snapshot = first.checkpoint().expect("quiesces");
            // Serialize/parse to prove the on-disk form carries everything.
            let json = serde_json::to_string(&snapshot).expect("serializes");
            drop(first); // the "crash"
            let parsed = serde_json::from_str(&json).expect("parses");
            let registry = Registry::new();
            let mut resumed = build()
                .session_builder()
                .detector(Arc::new(KeywordDetector))
                .registry(&registry)
                .resume_from(parsed)
                .start()
                .expect("shard counts match");
            for (period, doc) in &docs[cut..] {
                resumed.ingest(*period, doc.clone()).expect("valid");
            }
            let out = resumed.finish().expect("drains");
            assert_same(&out, &reference);
        }
    }

    #[test]
    fn checkpoint_then_continue_in_place_is_also_identical() {
        // A checkpoint must be a pure observation: taking one and carrying
        // on in the same session must not perturb the output.
        let reference = sequential(&corpus());
        let engine = Engine::builder()
            .workers(3)
            .shards(4)
            .chunk(16)
            .build()
            .unwrap();
        let registry = Registry::new();
        let mut session = start(&engine, &registry);
        for (i, (period, doc)) in corpus().into_iter().enumerate() {
            session.ingest(period, doc).unwrap();
            if i % 64 == 63 {
                session.checkpoint().expect("quiesces");
            }
        }
        let out = session.finish().unwrap();
        assert_same(&out, &reference);
    }

    #[test]
    fn flush_and_live_observation_match_finish() {
        // Service mode reads the committed log without closing the
        // stream; those reads must agree with what finish() reports.
        let engine = Engine::builder()
            .workers(2)
            .shards(3)
            .chunk(16)
            .build()
            .unwrap();
        let registry = Registry::new();
        let mut session = start(&engine, &registry);
        let docs = corpus();
        let cut = 97; // mid-chunk on purpose
        for (period, doc) in &docs[..cut] {
            session.ingest(*period, doc.clone()).unwrap();
        }
        session.flush().expect("quiesces");
        let cursor = session.committed_len();
        let mid = session.output_snapshot().expect("snapshot");
        assert_eq!(mid.detected.len(), cursor);
        assert_eq!(mid.counters.total, cut as u64);

        for (period, doc) in &docs[cut..] {
            session.ingest(*period, doc.clone()).unwrap();
        }
        session.flush().expect("quiesces");
        let tail = session.detected_since(cursor);
        let snapshot = session.output_snapshot().expect("snapshot");
        assert_eq!(snapshot.detected.len(), cursor + tail.len());

        let out = session.finish().expect("drains");
        assert_same(&out, &sequential(&corpus()));
        assert_same(&out, &snapshot);
    }

    #[test]
    fn resume_rejects_mismatched_shard_count() {
        let engine = Engine::builder()
            .workers(1)
            .shards(2)
            .chunk(8)
            .build()
            .unwrap();
        let registry = Registry::new();
        let mut session = start(&engine, &registry);
        session.ingest(1, doc(1, "a dox fb: someone")).unwrap();
        let snapshot = session.checkpoint().expect("quiesces");
        drop(session);
        let other = Engine::builder()
            .workers(1)
            .shards(3)
            .chunk(8)
            .build()
            .unwrap();
        let registry = Registry::new();
        assert_eq!(
            other
                .session_builder()
                .detector(Arc::new(KeywordDetector))
                .registry(&registry)
                .resume_from(snapshot)
                .start()
                .err(),
            Some(EngineError::CheckpointShardMismatch {
                expected: 3,
                found: 2
            })
        );
    }

    fn run_engine_with_faults(
        workers: usize,
        shards: usize,
        plan: FaultPlanConfig,
        policy: RetryPolicy,
    ) -> PipelineOutput {
        let engine = Engine::builder()
            .workers(workers)
            .shards(shards)
            .queue_depth(2)
            .chunk(16)
            .faults(EngineFaults { plan, policy })
            .build()
            .expect("valid config");
        let registry = Registry::new();
        let mut session = start(&engine, &registry);
        for (period, doc) in corpus() {
            session.ingest(period, doc).expect("valid");
        }
        session.finish().expect("drains")
    }

    #[test]
    fn recovered_stage_faults_leave_output_untouched() {
        // Slow chunks and sub-budget poison are pure scheduling weather.
        let reference = sequential(&corpus());
        let plan = FaultPlanConfig {
            slow_chunk_ppm: 400_000,
            poison_chunk_ppm: 300_000,
            max_transient_failures: 2,
            ..FaultPlanConfig::default()
        };
        for (workers, shards) in [(1usize, 1usize), (4, 8)] {
            let out = run_engine_with_faults(workers, shards, plan.clone(), RetryPolicy::default());
            assert_same(&out, &reference);
            assert_eq!(out.stage_gap_docs, 0);
        }
    }

    #[test]
    fn exhausted_poison_becomes_explicit_stage_gaps() {
        let plan = FaultPlanConfig {
            poison_chunk_ppm: 500_000,
            max_transient_failures: 3,
            ..FaultPlanConfig::default()
        };
        // Zero retries: every poisoned chunk exhausts.
        let policy = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        let out = run_engine_with_faults(2, 2, plan, policy);
        assert!(out.stage_gap_docs > 0, "poison must surface as gaps");
        let reference = sequential(&corpus());
        assert_eq!(
            out.counters.total, reference.counters.total,
            "failed docs still count as collected"
        );
        assert!(out.counters.classified_dox < reference.counters.classified_dox);
    }
}
